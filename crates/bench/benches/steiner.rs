//! Steiner-tree relaxation benchmarks (Algorithm 3): expansion cost on the
//! Figure 6 workload as the query budget and seed-group size vary, plus the
//! cross-request `NeighborhoodCache` win (cold fill vs. warm reuse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;

use sapphire_core::qsm::{NeighborhoodCache, StructureRelaxer};
use sapphire_core::SteinerConfig;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
use sapphire_rdf::Term;

fn bench_relax(c: &mut Criterion) {
    let graph = generate(DatasetConfig::tiny(42));
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let fed = FederatedProcessor::single(endpoint);
    let preferred: HashSet<String> = ["author", "publisher", "writer"]
        .iter()
        .map(|p| format!("http://dbpedia.org/ontology/{p}"))
        .collect();
    let groups = vec![
        vec![Term::en("Jack Kerouac")],
        vec![Term::en("Viking Press")],
    ];

    let mut group = c.benchmark_group("steiner_relax");
    group.sample_size(10);
    for budget in [10usize, 50, 100] {
        let config = SteinerConfig {
            query_budget: budget,
            ..SteinerConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(budget), &config, |b, config| {
            let relaxer = StructureRelaxer::new(&fed, *config, preferred.clone());
            b.iter(|| black_box(relaxer.relax(black_box(&groups))))
        });
    }
    group.finish();

    // The expansion-cache win: the same relaxation with every neighbor list
    // already published (warm) vs. paying the SPARQL round trips and
    // publishing them (cold — a fresh cache every iteration) vs. no cache
    // at all (the pre-cache baseline the budget sweeps above measure).
    let mut group = c.benchmark_group("steiner_relax_neighborhood_cache");
    group.sample_size(10);
    let config = SteinerConfig::default();
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = Arc::new(NeighborhoodCache::new(4, 4096));
            let relaxer = StructureRelaxer::new(&fed, config, preferred.clone()).with_cache(cache);
            black_box(relaxer.relax(black_box(&groups)))
        })
    });
    let warm = Arc::new(NeighborhoodCache::new(4, 4096));
    StructureRelaxer::new(&fed, config, preferred.clone())
        .with_cache(warm.clone())
        .relax(&groups)
        .expect("warmup relaxation connects");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let relaxer =
                StructureRelaxer::new(&fed, config, preferred.clone()).with_cache(warm.clone());
            black_box(relaxer.relax(black_box(&groups)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_relax);
criterion_main!(benches);
