//! The answer table (§4, Figure 4).
//!
//! After a query executes, the user manipulates its answers directly:
//! keyword search over all columns, ordering by any column, showing/hiding
//! columns, and dragging a cell value back into the query boxes.

use sapphire_rdf::Term;
use sapphire_sparql::Solutions;

/// An interactive view over query answers.
#[derive(Debug, Clone, Default)]
pub struct AnswerTable {
    solutions: Solutions,
    hidden: Vec<String>,
    filter: Option<String>,
    sort: Option<(String, bool)>,
}

impl AnswerTable {
    /// Wrap a solution set.
    pub fn new(solutions: Solutions) -> Self {
        AnswerTable {
            solutions,
            hidden: Vec::new(),
            filter: None,
            sort: None,
        }
    }

    /// The raw underlying solutions (unfiltered).
    pub fn solutions(&self) -> &Solutions {
        &self.solutions
    }

    /// Total rows before filtering.
    pub fn total_rows(&self) -> usize {
        self.solutions.len()
    }

    /// Apply a keyword filter: only rows where some visible cell contains the
    /// keyword (case-insensitive) remain visible.
    pub fn set_filter(&mut self, keyword: impl Into<String>) {
        let k = keyword.into();
        self.filter = if k.trim().is_empty() {
            None
        } else {
            Some(k.to_lowercase())
        };
    }

    /// Clear the keyword filter.
    pub fn clear_filter(&mut self) {
        self.filter = None;
    }

    /// Sort by a column; `descending` flips the order. Unknown columns are
    /// ignored (the UI cannot produce them).
    pub fn sort_by(&mut self, column: impl Into<String>, descending: bool) {
        let c = column.into();
        if self.solutions.column(&c).is_some() {
            self.sort = Some((c, descending));
        }
    }

    /// Hide a column.
    pub fn hide_column(&mut self, column: impl Into<String>) {
        let c = column.into();
        if !self.hidden.contains(&c) {
            self.hidden.push(c);
        }
    }

    /// Show a previously hidden column.
    pub fn show_column(&mut self, column: &str) {
        self.hidden.retain(|c| c != column);
    }

    /// Visible column names, in projection order.
    pub fn visible_columns(&self) -> Vec<&str> {
        self.solutions
            .vars
            .iter()
            .map(String::as_str)
            .filter(|v| !self.hidden.iter().any(|h| h == v))
            .collect()
    }

    /// The visible view: filtered, sorted, hidden columns removed.
    pub fn view(&self) -> Solutions {
        let cols: Vec<usize> = self
            .solutions
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.hidden.iter().any(|h| &h == v))
            .map(|(i, _)| i)
            .collect();
        let mut rows: Vec<Vec<Option<Term>>> = self
            .solutions
            .rows
            .iter()
            .filter(|row| match &self.filter {
                None => true,
                Some(k) => cols.iter().any(|&c| {
                    row[c]
                        .as_ref()
                        .is_some_and(|t| t.lexical().to_lowercase().contains(k))
                }),
            })
            .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
            .collect();
        let vars: Vec<String> = cols
            .iter()
            .map(|&c| self.solutions.vars[c].clone())
            .collect();
        if let Some((col, desc)) = &self.sort {
            if let Some(idx) = vars.iter().position(|v| v == col) {
                rows.sort_by(|a, b| {
                    let ord = cmp_cells(&a[idx], &b[idx]);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
            }
        }
        Solutions { vars, rows }
    }

    /// "Drag" a cell value out of the table (§4): the text of the cell at
    /// (visible row, column name), for dropping into a query box.
    pub fn drag_value(&self, row: usize, column: &str) -> Option<String> {
        let view = self.view();
        view.get(row, column).map(|t| t.lexical().to_string())
    }
}

fn cmp_cells(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let nx = x.as_literal().and_then(|l| l.as_f64());
            let ny = y.as_literal().and_then(|l| l.as_f64());
            match (nx, ny) {
                (Some(p), Some(q)) => p.partial_cmp(&q).unwrap_or(Ordering::Equal),
                _ => x.lexical().cmp(y.lexical()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AnswerTable {
        AnswerTable::new(Solutions {
            vars: vec!["person".into(), "name".into()],
            rows: vec![
                vec![
                    Some(Term::iri("http://x/John_Kennedy")),
                    Some(Term::en("John F. Kennedy")),
                ],
                vec![
                    Some(Term::iri("http://x/Robert_Kennedy")),
                    Some(Term::en("Robert Kennedy")),
                ],
                vec![
                    Some(Term::iri("http://x/John_Kerry")),
                    Some(Term::en("John Kerry")),
                ],
            ],
        })
    }

    #[test]
    fn keyword_filter_matches_any_column() {
        // The Figure 4 interaction: filter 1,051 Kennedys down to the johns.
        let mut t = table();
        t.set_filter("john");
        let v = t.view();
        assert_eq!(v.len(), 2);
        t.clear_filter();
        assert_eq!(t.view().len(), 3);
    }

    #[test]
    fn sort_by_column() {
        let mut t = table();
        t.sort_by("name", false);
        let v = t.view();
        assert_eq!(v.rows[0][1].as_ref().unwrap().lexical(), "John F. Kennedy");
        t.sort_by("name", true);
        let v = t.view();
        assert_eq!(v.rows[0][1].as_ref().unwrap().lexical(), "Robert Kennedy");
    }

    #[test]
    fn hide_and_show_columns() {
        let mut t = table();
        t.hide_column("person");
        assert_eq!(t.visible_columns(), vec!["name"]);
        assert_eq!(t.view().vars, vec!["name"]);
        t.show_column("person");
        assert_eq!(t.visible_columns().len(), 2);
    }

    #[test]
    fn filter_ignores_hidden_columns() {
        let mut t = table();
        t.hide_column("person");
        t.set_filter("kerry"); // matches the name column, fine
        assert_eq!(t.view().len(), 1);
        t.set_filter("http"); // only present in the hidden column
        assert_eq!(t.view().len(), 0);
    }

    #[test]
    fn drag_value_reads_the_visible_view() {
        let mut t = table();
        t.set_filter("john");
        t.sort_by("name", true);
        assert_eq!(t.drag_value(0, "name").as_deref(), Some("John Kerry"));
        assert_eq!(t.drag_value(9, "name"), None);
    }

    #[test]
    fn numeric_sort_is_numeric() {
        let mut t = AnswerTable::new(Solutions {
            vars: vec!["n".into()],
            rows: vec![
                vec![Some(Term::literal("10"))],
                vec![Some(Term::literal("9"))],
                vec![Some(Term::literal("100"))],
            ],
        });
        t.sort_by("n", false);
        let v = t.view();
        let vals: Vec<&str> = v
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().lexical())
            .collect();
        assert_eq!(vals, vec!["9", "10", "100"]);
    }
}
