//! S4 \[31\] — approximate query matching via a type-level summary graph.
//!
//! S4 "summarizes the queried dataset by maintaining a graph of the
//! relationships between RDF entity types" and rewrites queries whose
//! *structure* mismatches the data while their predicates and terms are
//! correct. Our reimplementation builds the summary offline through SPARQL
//! (domain/range types per predicate, plus which predicates carry literals)
//! and performs the rewrite that matters for this workload: a triple that
//! attaches a literal directly to an entity-valued predicate
//! (`?b dbo:author "Jack Kerouac"`) is expanded through an intermediate
//! entity variable and a label predicate
//! (`?b dbo:author ?x . ?x dbo:name "Jack Kerouac"`).

use std::collections::{HashMap, HashSet};

use sapphire_endpoint::{Endpoint, FederatedProcessor};
use sapphire_rdf::Term;
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, TermPattern, TriplePattern};

/// Per-predicate summary: domain types, range types, literal-range flag.
#[derive(Debug, Default, Clone)]
struct PredicateSummary {
    domains: HashSet<String>,
    ranges: HashSet<String>,
    has_literal_range: bool,
}

/// The S4 reimplementation.
pub struct S4 {
    fed: FederatedProcessor,
    summary: HashMap<String, PredicateSummary>,
    /// Literal-bearing predicates usable as entity labels, most frequent
    /// first.
    label_predicates: Vec<String>,
}

impl S4 {
    /// Build the summary graph from an endpoint (S4's offline step).
    pub fn build(endpoint: std::sync::Arc<dyn Endpoint>) -> Self {
        let mut summary: HashMap<String, PredicateSummary> = HashMap::new();
        let preds: Vec<String> = endpoint
            .select("SELECT DISTINCT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?frequency)")
            .map(|s| s.values("p").map(|t| t.lexical().to_string()).collect())
            .unwrap_or_default();
        for p in &preds {
            let mut entry = PredicateSummary::default();
            if let Ok(s) = endpoint.select(&format!(
                "SELECT DISTINCT ?st WHERE {{ ?s <{p}> ?o . ?s a ?st }}"
            )) {
                entry.domains = s.values("st").map(|t| t.lexical().to_string()).collect();
            }
            if let Ok(s) = endpoint.select(&format!(
                "SELECT DISTINCT ?ot WHERE {{ ?s <{p}> ?o . ?o a ?ot }}"
            )) {
                entry.ranges = s.values("ot").map(|t| t.lexical().to_string()).collect();
            }
            if let Ok(s) = endpoint.select(&format!(
                "SELECT ?o WHERE {{ ?s <{p}> ?o . FILTER(isliteral(?o)) }} LIMIT 1"
            )) {
                entry.has_literal_range = !s.is_empty();
            }
            summary.insert(p.clone(), entry);
        }
        // Label predicates, by harvest priority.
        let mut label_predicates: Vec<String> = Vec::new();
        for preferred in crate::entity_index::LABEL_PREDICATES {
            if summary.get(*preferred).is_some_and(|s| s.has_literal_range) {
                label_predicates.push((*preferred).to_string());
            }
        }
        for (p, s) in &summary {
            if s.has_literal_range && !label_predicates.contains(p) {
                label_predicates.push(p.clone());
            }
        }
        S4 {
            fed: FederatedProcessor::single(endpoint),
            summary,
            label_predicates,
        }
    }

    /// Rewrite a query whose structure may not match the data. Returns `None`
    /// if a predicate is unknown (S4 "assumes that the user can issue queries
    /// using correct predicates").
    pub fn rewrite(&self, query: &SelectQuery) -> Option<SelectQuery> {
        let mut out = query.clone();
        let mut fresh = 0usize;
        let mut new_triples: Vec<TriplePattern> = Vec::new();
        for tp in &mut out.pattern.triples {
            let TermPattern::Term(Term::Iri(p_iri)) = &tp.predicate else {
                continue;
            };
            let info = self.summary.get(p_iri)?;
            let literal_object = matches!(&tp.object, TermPattern::Term(Term::Literal(_)));
            if literal_object && !info.has_literal_range {
                // Entity-valued predicate with a literal object: route the
                // literal through an intermediate entity + label predicate
                // whose domain intersects this predicate's range.
                let label = self
                    .label_predicates
                    .iter()
                    .find(|lp| {
                        let ls = &self.summary[*lp];
                        info.ranges.is_empty()
                            || ls.domains.is_empty()
                            || ls.domains.intersection(&info.ranges).next().is_some()
                    })?
                    .clone();
                let var = format!("s4_{fresh}");
                fresh += 1;
                let literal = tp.object.clone();
                tp.object = TermPattern::var(&var);
                new_triples.push(TriplePattern::new(
                    TermPattern::var(&var),
                    TermPattern::iri(label),
                    literal,
                ));
            }
        }
        out.pattern.triples.extend(new_triples);
        Some(out)
    }

    /// Rewrite and execute.
    pub fn answer(&self, query: &SelectQuery) -> Solutions {
        let Some(rewritten) = self.rewrite(query) else {
            return Solutions::default();
        };
        match self.fed.execute_parsed(&Query::Select(rewritten)) {
            Ok(QueryResult::Solutions(s)) => s,
            _ => Solutions::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_datagen::{generate, DatasetConfig};
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use sapphire_sparql::parse_select;
    use std::sync::Arc;

    fn s4() -> S4 {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
        ));
        S4::build(ep)
    }

    #[test]
    fn rewrites_figure_6_query() {
        let s = s4();
        let q = parse_select(
            r#"SELECT ?b WHERE { ?b dbo:author "Jack Kerouac"@en . ?b dbo:publisher "Viking Press"@en }"#,
        )
        .unwrap();
        let rewritten = s.rewrite(&q).expect("rewrite succeeds");
        assert_eq!(rewritten.pattern.triples.len(), 4, "two expansions added");
        let answers = s.answer(&q);
        let books: Vec<&str> = answers
            .rows
            .iter()
            .flatten()
            .flatten()
            .map(|t| t.lexical())
            .filter(|l| l.contains("resource"))
            .collect();
        assert!(
            books.iter().any(|b| b.ends_with("On_The_Road")),
            "answers: {answers}"
        );
        assert!(books.iter().any(|b| b.ends_with("Door_Wide_Open")));
    }

    #[test]
    fn leaves_well_formed_queries_alone() {
        let s = s4();
        let q = parse_select(
            r#"SELECT ?tz WHERE { ?c dbo:name "Salt Lake City"@en . ?c dbo:timeZone ?tz }"#,
        )
        .unwrap();
        let rewritten = s.rewrite(&q).unwrap();
        assert_eq!(
            rewritten.pattern.triples.len(),
            2,
            "literal-ranged predicates untouched"
        );
        assert_eq!(s.answer(&q).len(), 1);
    }

    #[test]
    fn unknown_predicate_fails() {
        let s = s4();
        let q = parse_select("SELECT ?x WHERE { ?x dbo:zorbleness ?y }").unwrap();
        assert!(s.rewrite(&q).is_none());
    }
}
