//! Cluster-vs-oracle contracts: a sharded, replicated deployment must be
//! *indistinguishable in content* from one big server over the same data.
//!
//! The comparison contract: the cluster defines a canonical answer order
//! (the deterministic score-then-key merges of `sapphire_cluster::merge`),
//! and the single-box oracle's answers are passed through the *same public
//! merge functions* (a merge of one list canonicalizes order without
//! touching content) before the byte-for-byte equality check. Slices
//! (LIMIT/OFFSET) are owned by the edge on both sides — the oracle runs the
//! slice-stripped query and the canonical merge applies the cut — because a
//! pre-merge cut is exactly the bug a sharded top-k must not have.

use std::sync::Arc;

use sapphire_cluster::merge::{
    dedup_alternatives, merge_completions, merge_solutions, rank_alternatives, strip_slice,
};
use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_core::qsm::TermAlternative;
use sapphire_core::session::{Modifiers, Session};
use sapphire_core::{InitMode, PredictiveUserModel, SapphireConfig};
use sapphire_datagen::workload::appendix_b;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{Backoff, EndpointLimits};
use sapphire_server::{SapphireServer, ServerConfig};
use sapphire_sparql::{SelectQuery, Solutions};
use sapphire_text::Lexicon;

fn sapphire_config() -> SapphireConfig {
    // Paper constants, two workers. The default 40k-string suffix tree
    // swallows the whole tiny corpus, so "significant literal" membership
    // cannot differ between the global cache and any shard-local cache.
    SapphireConfig {
        processes: 2,
        ..SapphireConfig::default()
    }
}

fn oracle() -> (Arc<PredictiveUserModel>, Arc<SapphireServer>) {
    let pum = Arc::new(
        PredictiveUserModel::initialize_local(
            "oracle",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            sapphire_config(),
            InitMode::Federated,
        )
        .unwrap(),
    );
    let server = Arc::new(SapphireServer::new(pum.clone(), ServerConfig::for_tests()));
    (pum, server)
}

fn router(shards: usize, replicas: usize) -> ClusterRouter {
    let graph = generate(DatasetConfig::tiny(42));
    let cluster = Cluster::build(
        "edge",
        &graph,
        shards,
        replicas,
        &Lexicon::dbpedia_default(),
        &sapphire_config(),
        &ServerConfig::for_tests(),
    )
    .unwrap();
    ClusterRouter::new(
        cluster,
        ClusterConfig {
            // Hedging off for the oracle comparison: the answers must be
            // identical either way (the saturation test proves that); this
            // keeps the comparison runs cheap.
            hedge_after: None,
            ..ClusterConfig::for_tests()
        },
    )
}

/// The workload queries, built once against the oracle's cache (keyword
/// predicates resolve identically on every shard: the predicate vocabulary
/// is dataset-wide).
fn workload_queries(pum: &PredictiveUserModel) -> Vec<SelectQuery> {
    appendix_b()
        .iter()
        .map(|q| {
            let modifiers = Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            };
            Session::resume(pum, q.script.rows.clone(), modifiers, 0)
                .build_query()
                .expect("workload scripts build")
        })
        .collect()
}

/// Canonicalize the oracle's answers for one query: run it slice-stripped,
/// then let the cluster's own merge apply ordering and the cut.
fn oracle_answers(server: &SapphireServer, query: &SelectQuery) -> Solutions {
    let run = server
        .run_select("oracle", &strip_slice(query))
        .expect("oracle run");
    merge_solutions(query, vec![run.payload.answers.clone()])
}

/// Canonicalize the oracle's "did you mean" list the same way the router
/// builds the cluster's: dedup, re-prefetch canonically, rank.
fn oracle_alternatives(server: &SapphireServer, query: &SelectQuery) -> Vec<TermAlternative> {
    let run = server
        .run_select("oracle", &strip_slice(query))
        .expect("oracle run");
    let kept: Vec<TermAlternative> =
        dedup_alternatives(vec![(*run.payload.suggestions.candidates).clone()])
            .into_iter()
            .filter_map(|mut cand| {
                let mut rebuilt = query.clone();
                let altered = &cand.query.pattern.triples[cand.triple_index];
                match cand.position {
                    sapphire_core::qsm::AlteredPosition::Predicate => {
                        rebuilt.pattern.triples[cand.triple_index].predicate =
                            altered.predicate.clone();
                    }
                    sapphire_core::qsm::AlteredPosition::Object => {
                        rebuilt.pattern.triples[cand.triple_index].object = altered.object.clone();
                    }
                }
                let answers = oracle_answers(server, &rebuilt);
                if answers.is_empty() {
                    return None;
                }
                cand.query = rebuilt;
                cand.answers = answers;
                Some(cand)
            })
            .collect();
    rank_alternatives(kept, server.model().config().k)
}

fn assert_alternatives_equal(cluster: &[TermAlternative], oracle: &[TermAlternative], ctx: &str) {
    assert_eq!(cluster.len(), oracle.len(), "{ctx}: alternative count");
    for (c, o) in cluster.iter().zip(oracle) {
        assert_eq!(c.position, o.position, "{ctx}");
        assert_eq!(c.replacement, o.replacement, "{ctx}");
        assert_eq!(c.original, o.original, "{ctx}");
        assert_eq!(c.triple_index, o.triple_index, "{ctx}");
        assert!((c.similarity - o.similarity).abs() < f64::EPSILON, "{ctx}");
        assert_eq!(c.query, o.query, "{ctx}");
        assert_eq!(c.answers, o.answers, "{ctx}: prefetched answers");
    }
}

/// The acceptance contract: a 4-shard / 2-replica cluster answers the whole
/// Appendix-B workload — QCM completions and QSM runs — byte-identically to
/// a single `SapphireServer` over the unpartitioned dataset.
#[test]
fn four_shard_cluster_matches_single_server_oracle() {
    let (pum, oracle_server) = oracle();
    let router = router(4, 2);
    let k = pum.config().k;

    // QCM: per-keystroke prefixes of every scripted object keyword.
    let mut terms = 0;
    for q in appendix_b() {
        for input in &q.script.rows {
            let keyword = input.object.trim_start_matches('?');
            for end in 1..=keyword.chars().count().min(5) {
                let prefix: String = keyword.chars().take(end).collect();
                let cluster = router.complete("alice", &prefix).unwrap();
                // The oracle's *full* match list through the same canonical
                // top-k: the user-facing k-cut is selected by global
                // significance, which is the one thing shard-local caches
                // cannot see — the cluster's contract is the canonical cut.
                let oracle = merge_completions(
                    vec![
                        oracle_server
                            .complete_top("oracle", &prefix, usize::MAX)
                            .unwrap()
                            .suggestions,
                    ],
                    k,
                );
                assert_eq!(cluster.suggestions, oracle, "prefix {prefix:?}");
                terms += 1;
            }
        }
    }
    assert!(terms > 50, "the QCM comparison covered the workload");

    // QSM: every scripted run — answers and "did you mean" rewrites.
    for (i, query) in workload_queries(&pum).iter().enumerate() {
        let cluster = router.run("alice", query).unwrap();
        assert_eq!(
            cluster.answers,
            oracle_answers(&oracle_server, query),
            "question {i}: answers"
        );
        assert!(cluster.executed, "question {i}: executed on every shard");
        assert_alternatives_equal(
            &cluster.alternatives,
            &oracle_alternatives(&oracle_server, query),
            &format!("question {i}"),
        );
    }

    let metrics = router.metrics();
    assert_eq!(metrics.fanout_per_shard.len(), 4);
    assert!(metrics.merges > 0);
    assert_eq!(metrics.merge_depth_max, 4, "full scatter merges 4 lists");
    assert_eq!(metrics.rejected_after_retry, 0);
}

/// Shard-count invariance end to end: 1-, 2-, and 4-shard clusters produce
/// byte-identical payloads for the same requests (the 1-shard cluster *is*
/// a single server behind the same merge).
#[test]
fn cluster_answers_are_shard_count_invariant() {
    let (pum, _) = oracle();
    let queries = workload_queries(&pum);
    let routers: Vec<ClusterRouter> = [1, 2, 4].into_iter().map(|n| router(n, 1)).collect();
    for term in ["Kenn", "New", "a", "pari", "Turing"] {
        let baseline = routers[0].complete("alice", term).unwrap().suggestions;
        for r in &routers[1..] {
            assert_eq!(
                r.complete("alice", term).unwrap().suggestions,
                baseline,
                "term {term:?}"
            );
        }
    }
    for (i, query) in queries.iter().enumerate().take(8) {
        let baseline = routers[0].run("alice", query).unwrap();
        for r in &routers[1..] {
            let run = r.run("alice", query).unwrap();
            assert_eq!(run.answers, baseline.answers, "question {i}");
            assert_eq!(
                run.alternatives.len(),
                baseline.alternatives.len(),
                "question {i}"
            );
            for (a, b) in run.alternatives.iter().zip(&baseline.alternatives) {
                assert_eq!(a.replacement, b.replacement, "question {i}");
                assert_eq!(a.answers, b.answers, "question {i}");
            }
        }
    }
}

/// The resilience contract: with one replica of every shard artificially
/// saturated (its only slot held, empty queue — every request sheds typed),
/// concurrent load over the full workload completes with *zero* unhandled
/// rejections, the answers stay byte-identical to the oracle, and the
/// hedging + typed-retry paths are actually exercised.
#[test]
fn saturated_replica_is_routed_around_under_concurrent_load() {
    let graph = generate(DatasetConfig::tiny(42));
    let (pum, oracle_server) = oracle();
    let queries = Arc::new(workload_queries(&pum));

    // Build 4 shards by hand: replica 0 is a one-slot, no-queue server whose
    // slot we hold for the whole test; replica 1 is healthy.
    let partition = sapphire_rdf::Partitioner::new(4).split(&graph);
    let mut shards = Vec::new();
    let mut saturated = Vec::new();
    let mut healthies = Vec::new();
    for (i, shard_graph) in partition.shards.into_iter().enumerate() {
        let shard_pum = Arc::new(
            PredictiveUserModel::initialize_local(
                format!("s{i}"),
                shard_graph,
                EndpointLimits::warehouse(),
                Lexicon::dbpedia_default(),
                sapphire_config(),
                InitMode::Federated,
            )
            .unwrap(),
        );
        let choked = Arc::new(SapphireServer::new(
            shard_pum.clone(),
            ServerConfig {
                max_in_flight: 1,
                max_queue_depth: 0,
                queue_wait: std::time::Duration::from_millis(1),
                ..ServerConfig::for_tests()
            },
        ));
        let healthy = Arc::new(SapphireServer::new(
            shard_pum,
            ServerConfig {
                max_in_flight: 16,
                max_queue_depth: 64,
                queue_wait: std::time::Duration::from_secs(2),
                ..ServerConfig::for_tests()
            },
        ));
        saturated.push(choked.clone());
        healthies.push(healthy.clone());
        shards.push(vec![choked, healthy]);
    }
    let mut permits: Vec<_> = saturated
        .iter()
        .map(|s| s.hold_slot().expect("empty server grants its one slot"))
        .collect();
    for s in &saturated {
        assert_eq!(s.admission_load(), (1, 0), "replica is saturated");
    }

    // Phase 1 — hedged routing: a zero hedge budget races every shard call
    // against the sibling replica, so the saturated replica's instant typed
    // rejections constantly lose the race instead of failing requests.
    let hedged = Arc::new(ClusterRouter::new(
        Cluster::from_replicas(shards.clone()),
        ClusterConfig {
            hedge_after: Some(std::time::Duration::ZERO),
            backoff: Backoff {
                max_retries: 6,
                base: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(20),
            },
            ..ClusterConfig::for_tests()
        },
    ));
    // Phase 2 — no hedging, permits released: the one-slot/no-queue replica
    // is now *empty*, so the load probe ties at 0 and the index tie-break
    // sends every shard call to it first. Under 8 concurrent clients its
    // single slot is permanently contended, so it sheds typed constantly
    // and requests must recover through the bounded retry path alone.
    let unhedged = Arc::new(ClusterRouter::new(
        Cluster::from_replicas(shards),
        ClusterConfig {
            hedge_after: None,
            backoff: Backoff {
                max_retries: 6,
                base: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(20),
            },
            ..ClusterConfig::for_tests()
        },
    ));

    const THREADS: usize = 8;
    for (phase, router) in [(1, &hedged), (2, &unhedged)] {
        if phase == 2 {
            drop(std::mem::take(&mut permits));
        }
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let router = router.clone();
                let queries = queries.clone();
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        let query = &queries[(i + t) % queries.len()];
                        // Zero unhandled rejections: every request must
                        // succeed through load-aware routing, hedging, or
                        // typed retry.
                        let run = router
                            .run(&format!("tenant-{t}"), query)
                            .unwrap_or_else(|e| panic!("request shed: {e}"));
                        assert!(run.executed);
                    }
                    for term in ["Kenn", "Turing", "New"] {
                        router
                            .complete(&format!("tenant-{t}"), term)
                            .unwrap_or_else(|e| panic!("completion shed: {e}"));
                    }
                });
            }
        });
    }

    // Same bytes as the oracle, even with half the fleet saturated.
    for (i, query) in queries.iter().enumerate().take(6) {
        let run = hedged.run("check", query).unwrap();
        assert_eq!(
            run.answers,
            oracle_answers(&oracle_server, query),
            "question {i}"
        );
    }

    let hedged_metrics = hedged.metrics();
    assert_eq!(hedged_metrics.rejected_after_retry, 0, "no request lost");
    assert!(hedged_metrics.hedges_fired > 0, "hedging path exercised");

    // Deterministic typed-retry exercise: pin shard 0's replicas to *equal*
    // admission load — one held slot each — so the index tie-break routes
    // the next request to the one-slot replica first. It is full, sheds
    // typed instantly, and the unhedged router must recover by failing over
    // to the healthy sibling under the backoff policy.
    let pin_choked = saturated[0].hold_slot().expect("one-slot replica grants");
    let pin_healthy = healthies[0].hold_slot().expect("healthy replica grants");
    assert_eq!(saturated[0].admission_load(), (1, 0));
    assert_eq!(healthies[0].admission_load(), (1, 0));
    let completion = unhedged
        .complete("alice", "Gau")
        .expect("typed retry failed over to the healthy replica");
    assert!(!completion.cached);
    drop((pin_choked, pin_healthy));

    let unhedged_metrics = unhedged.metrics();
    assert_eq!(unhedged_metrics.rejected_after_retry, 0, "no request lost");
    assert!(
        unhedged_metrics.replica_retries > 0,
        "typed retry path exercised (the tied one-slot replica shed typed and was retried)"
    );
}

/// A transiently saturated single-replica shard: typed `Overloaded` is
/// retried under the backoff policy until the slot frees, so the request
/// succeeds instead of surfacing a rejection.
#[test]
fn typed_retry_rides_out_transient_saturation() {
    let pum = Arc::new(
        PredictiveUserModel::initialize_local(
            "solo",
            generate(DatasetConfig::tiny(7)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            sapphire_config(),
            InitMode::Federated,
        )
        .unwrap(),
    );
    let server = Arc::new(SapphireServer::new(
        pum,
        ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 0,
            queue_wait: std::time::Duration::from_millis(1),
            ..ServerConfig::for_tests()
        },
    ));
    let router = Arc::new(ClusterRouter::new(
        Cluster::from_replicas(vec![vec![server.clone()]]),
        ClusterConfig {
            hedge_after: None,
            backoff: Backoff {
                max_retries: 8,
                base: std::time::Duration::from_millis(5),
                max_delay: std::time::Duration::from_millis(40),
            },
            ..ClusterConfig::for_tests()
        },
    ));

    let permit = server.hold_slot().unwrap();
    let request = {
        let router = router.clone();
        std::thread::spawn(move || router.complete("alice", "Kenn"))
    };
    // Let the request burn a few typed rejections, then free the slot.
    std::thread::sleep(std::time::Duration::from_millis(15));
    drop(permit);
    let completion = request.join().unwrap().expect("retry rode out the choke");
    assert!(!completion.cached);
    let metrics = router.metrics();
    assert!(metrics.replica_retries > 0, "typed retries happened");
    assert_eq!(metrics.rejected_after_retry, 0);

    // And when the saturation never clears, the rejection surfaces typed.
    let permit = server.hold_slot().unwrap();
    let err = router
        .complete("alice", "Never")
        .expect_err("saturated shard rejects typed");
    assert!(err.is_rejection(), "{err:?}");
    drop(permit);
}

/// Schema-slice replicas must not duplicate in merged answers: every shard
/// holds a copy of each `rdfs:subClassOf` edge, but the cluster returns it
/// once — and COUNTs over such patterns are not inflated by the shard
/// count. (The merge deduplicates *full bindings* before projecting; over a
/// BGP, duplicate full bindings can only be replica artifacts.)
#[test]
fn schema_replicated_triples_do_not_duplicate_in_merges() {
    use sapphire_sparql::{parse_select, Aggregate, Projection, SelectItem};
    let (_, oracle_server) = oracle();
    let router = router(4, 1);
    let query = parse_select("SELECT ?s ?o WHERE { ?s rdfs:subClassOf ?o }").unwrap();
    let run = router.run("alice", &query).unwrap();
    assert!(!run.answers.is_empty(), "the hierarchy has edges");
    assert_eq!(
        run.answers,
        oracle_answers(&oracle_server, &query),
        "each replicated edge appears exactly once"
    );
    // The same pattern under the session COUNT shape: the edge recount must
    // not multiply by the shard count either.
    let mut counted = query.clone();
    counted.projection = Projection::Items(vec![SelectItem::Agg {
        agg: Aggregate::Count {
            distinct: false,
            var: Some("s".into()),
        },
        alias: "count".into(),
    }]);
    let cluster_count = router.run("alice", &counted).unwrap();
    assert_eq!(
        cluster_count.answers,
        oracle_answers(&oracle_server, &counted),
        "COUNT over a schema-matching pattern"
    );
}

/// Edge-tier budgets: an edge cache hit never reaches a shard, so the edge
/// meters tenants itself — a cached request still consumes quota, typed
/// `EdgeRejected` when the window is exhausted, per tenant, cleared by a
/// fresh window.
#[test]
fn edge_budget_meters_cached_requests() {
    let graph = generate(DatasetConfig::tiny(7));
    let cluster = Cluster::build(
        "edge",
        &graph,
        2,
        1,
        &Lexicon::dbpedia_default(),
        &sapphire_config(),
        &ServerConfig::for_tests(),
    )
    .unwrap();
    let router = ClusterRouter::new(
        cluster,
        ClusterConfig {
            hedge_after: None,
            tenant_window_budget: Some(2),
            ..ClusterConfig::for_tests()
        },
    );
    router.complete("alice", "Kenn").unwrap();
    // Second identical request is an edge cache hit — still charged.
    let hit = router.complete("alice", "Kenn").unwrap();
    assert!(hit.cached);
    assert_eq!(router.tenant_usage("alice"), 2);
    let err = router.complete("alice", "Kenn").unwrap_err();
    assert!(
        matches!(
            &err,
            sapphire_cluster::ClusterError::EdgeRejected(
                sapphire_server::ServerError::QuotaExhausted { budget: 2, .. }
            )
        ),
        "typed edge rejection: {err:?}"
    );
    assert!(err.is_rejection());
    // Other tenants are unaffected; a fresh window clears the meter.
    router.complete("bob", "Kenn").unwrap();
    router.reset_budget_window();
    router.complete("alice", "Kenn").unwrap();
}

/// Regression (hedge-thread leak): a saturating hedge storm must never grow
/// the population of in-flight hedge calls past
/// `ClusterConfig::max_inflight_hedges`. Pre-fix, every hedged call was a
/// *detached* `std::thread::spawn`; with both replicas saturated, each storm
/// wave accumulated losing hedges without bound, each pinning an admission
/// slot until its scan completed. Post-fix the cap suppresses the excess
/// (counted in `hedges_suppressed`), the gauge never exceeds the cap, and
/// losers are joined deterministically (reaper + router drop).
#[test]
fn hedge_storm_cannot_exceed_the_inflight_cap() {
    const STORM: usize = 8;
    const CAP: usize = 2;
    let pum = Arc::new(
        PredictiveUserModel::initialize_local(
            "solo",
            generate(DatasetConfig::tiny(7)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            sapphire_config(),
            InitMode::Federated,
        )
        .unwrap(),
    );
    let replica = |name: &str| {
        Arc::new(SapphireServer::new(
            pum.clone(),
            ServerConfig {
                name: name.to_string(),
                max_in_flight: 1,
                max_queue_depth: 64,
                queue_wait: std::time::Duration::from_secs(10),
                ..ServerConfig::for_tests()
            },
        ))
    };
    let (r0, r1) = (replica("r0"), replica("r1"));
    let router = Arc::new(ClusterRouter::new(
        Cluster::from_replicas(vec![vec![r0.clone(), r1.clone()]]),
        ClusterConfig {
            hedge_after: Some(std::time::Duration::from_millis(1)),
            max_inflight_hedges: CAP,
            backoff: Backoff::none(),
            ..ClusterConfig::for_tests()
        },
    ));

    // Saturate both replicas: every primary call *and* every hedge parks in
    // replica admission until the holds drop, so the storm's hedge attempts
    // all overlap — the worst case the cap exists for.
    let hold0 = r0.hold_slot().expect("empty replica grants its slot");
    let hold1 = r1.hold_slot().expect("empty replica grants its slot");

    let storm: Vec<_> = (0..STORM)
        .map(|i| {
            let router = router.clone();
            std::thread::spawn(move || router.complete(&format!("t{i}"), &format!("Storm{i}")))
        })
        .collect();

    // Every storm call must settle its hedge decision (fired or suppressed)
    // while the replicas stay saturated; the gauge must never top the cap.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let m = router.metrics();
        assert!(
            router.hedges_in_flight() <= CAP as u64,
            "in-flight hedges {} exceed the cap {CAP}",
            router.hedges_in_flight()
        );
        if m.hedges_fired + m.hedges_suppressed >= STORM as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "storm never settled: {m:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let m = router.metrics();
    assert_eq!(m.hedges_fired, CAP as u64, "exactly the cap's worth fired");
    assert_eq!(
        m.hedges_suppressed,
        (STORM - CAP) as u64,
        "the excess was suppressed, not spawned"
    );

    // Free the replicas: every storm call must complete (suppressed hedges
    // simply waited for their primaries), and the loser scans drain the
    // in-flight gauge back to zero.
    drop((hold0, hold1));
    for handle in storm {
        handle
            .join()
            .unwrap()
            .expect("storm request served after the choke");
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while router.hedges_in_flight() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "loser hedges never finished their scans"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Dropping the router joins every parked loser handle — nothing stays
    // detached past the router's lifetime.
    drop(router);
}

/// Router-requested degradation stays tier-keyed at every layer: a tier-N
/// merge commissioned through the `run_tiered` floor must never be served
/// to a tier-0 caller — not from the edge cache and not from any shard's
/// run cache. The probe is the canonical relaxable non-answer query (two
/// literal rows, one misspelled), so shards do real Steiner work and a
/// shed tier genuinely degrades the payload.
#[test]
fn router_requested_tiers_never_leak_into_tier0_lookups() {
    use sapphire_core::session::TripleInput;
    use sapphire_core::SteinerConfig;

    let router = router(2, 1);
    let models: Vec<_> = (0..router.cluster().shard_count())
        .map(|s| router.cluster().replicas(s)[0].model().clone())
        .collect();
    let query = models
        .iter()
        .find_map(|m| {
            Session::resume(
                m,
                vec![
                    TripleInput::new("?p", "surname", "Kennedys"),
                    TripleInput::new("?p", "name", "John F. Kennedy"),
                ],
                Modifiers::default(),
                0,
            )
            .build_query()
            .ok()
        })
        .expect("the relaxable probe builds on some shard");

    // Tier-1 floor (an upstream's shed decision): the merge is degraded,
    // carries the tier, and the edge caches it under the tier-1 key.
    let degraded = router.run_tiered("tenant", &query, 1).expect("tier-1 run");
    assert!(degraded.degraded, "a tier-1 relaxable run is degraded");
    assert_eq!(degraded.tier, 1);
    assert!(!degraded.cached, "first tier-1 request scatters");
    let replay = router.run_tiered("tenant", &query, 1).expect("tier-1 hit");
    assert!(replay.cached, "same tier, same key: edge cache hit");
    assert!(replay.degraded, "the tier-1 entry stays degraded");
    let m = router.metrics();
    assert_eq!(m.degraded_runs, 1, "one degraded merge was created");
    assert_eq!(m.degraded_by_tier, vec![0, 1, 0]);

    // The tier-0 path must miss every tier-1 entry (edge AND shard caches
    // key by tier) and come back at full fidelity, with the same answers —
    // degradation sheds suggestion depth, never executed bindings.
    let full = router.run("tenant", &query).expect("tier-0 run");
    assert!(!full.cached, "tier 0 must not hit the tier-1 edge entry");
    assert!(!full.degraded, "tier 0 is full fidelity");
    assert_eq!(full.tier, 0);
    assert_eq!(full.answers, degraded.answers);
    let full_replay = router.run("tenant", &query).expect("tier-0 hit");
    assert!(full_replay.cached, "tier 0 now has its own edge entry");
    assert!(!full_replay.degraded, "and it is still full fidelity");

    // An absurd floor clamps to the ladder's deepest tier instead of
    // overflowing the budget table.
    let clamped = router
        .run_tiered("tenant", &query, usize::MAX)
        .expect("clamped run");
    assert_eq!(clamped.tier, SteinerConfig::MAX_TIER);
    assert!(clamped.degraded);
    let m = router.metrics();
    assert_eq!(m.degraded_runs, 2);
    assert_eq!(m.degraded_by_tier, vec![0, 1, 1]);
}
