//! KBQA \[10\] — template-based factoid question answering.
//!
//! KBQA learns *question templates* from a large Q&A corpus ("When was
//! $person born?") and maps each template to an RDF predicate. It answers
//! **only** factoid questions, which gives it perfect precision and low
//! recall in Table 1 (P = 1.0, R = 0.16). We reproduce that profile with a
//! curated template store (standing in for the Yahoo!-Answers-derived one)
//! over the same entity index the other baselines use: a question is answered
//! only when a template matches *exactly* after entity-slot substitution —
//! no fuzzy fallback, unlike QAKiS.

use sapphire_endpoint::{Endpoint, FederatedProcessor};
use sapphire_sparql::Solutions;
use sapphire_text::normalize;

use crate::entity_index::EntityIndex;
use sapphire_datagen::userstudy::NlQaSystem;

/// A question template: text with a `$e` entity slot, mapped to a predicate
/// and a direction.
struct Template {
    /// Normalized pattern with `$e` placeholder.
    pattern: &'static str,
    /// Predicate local name in `dbo:`.
    predicate: &'static str,
    /// True: `<e> p ?o`; false: `?s p <e>`.
    forward: bool,
}

const TEMPLATES: &[Template] = &[
    Template {
        pattern: "when was $e born",
        predicate: "birthDate",
        forward: true,
    },
    Template {
        pattern: "what is the birth date of $e",
        predicate: "birthDate",
        forward: true,
    },
    Template {
        pattern: "where was $e born",
        predicate: "birthPlace",
        forward: true,
    },
    Template {
        pattern: "who is the spouse of $e",
        predicate: "spouse",
        forward: true,
    },
    Template {
        pattern: "who is the wife of $e",
        predicate: "spouse",
        forward: true,
    },
    Template {
        pattern: "who is $e married to",
        predicate: "spouse",
        forward: true,
    },
    Template {
        pattern: "what is the population of $e",
        predicate: "population",
        forward: true,
    },
    Template {
        pattern: "how many people live in $e",
        predicate: "population",
        forward: true,
    },
    Template {
        pattern: "what is the capital of $e",
        predicate: "capital",
        forward: true,
    },
    Template {
        pattern: "what is the currency of $e",
        predicate: "currency",
        forward: true,
    },
    Template {
        pattern: "what is the time zone of $e",
        predicate: "timeZone",
        forward: true,
    },
    Template {
        pattern: "who created $e",
        predicate: "creator",
        forward: true,
    },
    Template {
        pattern: "who is the creator of $e",
        predicate: "creator",
        forward: true,
    },
    Template {
        pattern: "who designed $e",
        predicate: "designer",
        forward: true,
    },
    Template {
        pattern: "who are the children of $e",
        predicate: "child",
        forward: true,
    },
    Template {
        pattern: "who are the parents of $e",
        predicate: "parent",
        forward: true,
    },
    Template {
        pattern: "what is the depth of $e",
        predicate: "depth",
        forward: true,
    },
    Template {
        pattern: "how deep is $e",
        predicate: "depth",
        forward: true,
    },
];

/// The KBQA reimplementation.
pub struct Kbqa {
    fed: FederatedProcessor,
    entities: EntityIndex,
}

impl Kbqa {
    /// Build over an endpoint.
    pub fn build(endpoint: std::sync::Arc<dyn Endpoint>) -> Self {
        let entities = EntityIndex::build(endpoint.as_ref());
        Kbqa {
            fed: FederatedProcessor::single(endpoint),
            entities,
        }
    }

    /// Try to match a template exactly, returning `(predicate, forward,
    /// entity IRI)`.
    fn match_template(&self, question: &str) -> Option<(&'static str, bool, String)> {
        let nq = normalize(question);
        for t in TEMPLATES {
            let Some(slot_pos) = t.pattern.find("$e") else {
                continue;
            };
            let prefix = &t.pattern[..slot_pos];
            let suffix = t.pattern[slot_pos + 2..].trim();
            if !nq.starts_with(prefix.trim_end()) {
                continue;
            }
            let after_prefix = nq[prefix.trim_end().len()..].trim();
            let mention = if suffix.is_empty() {
                after_prefix.to_string()
            } else if let Some(stripped) = after_prefix.strip_suffix(suffix) {
                stripped.trim().to_string()
            } else {
                continue;
            };
            if mention.is_empty() {
                continue;
            }
            if let Some(entity) = self.entities.lookup(&mention).first() {
                return Some((t.predicate, t.forward, entity.clone()));
            }
        }
        None
    }
}

impl NlQaSystem for Kbqa {
    fn name(&self) -> &str {
        "KBQA"
    }

    fn answer(&self, question: &str) -> Solutions {
        let Some((predicate, forward, entity)) = self.match_template(question) else {
            return Solutions::default();
        };
        let p = format!("http://dbpedia.org/ontology/{predicate}");
        let query = if forward {
            format!("SELECT ?o WHERE {{ <{entity}> <{p}> ?o }}")
        } else {
            format!("SELECT ?s WHERE {{ ?s <{p}> <{entity}> }}")
        };
        self.fed.select(&query).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_datagen::{generate, DatasetConfig};
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use std::sync::Arc;

    fn kbqa() -> Kbqa {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
        ));
        Kbqa::build(ep)
    }

    #[test]
    fn exact_template_match_answers() {
        let k = kbqa();
        let s = k.answer("What is the capital of Australia?");
        assert_eq!(s.len(), 1);
        assert!(s.rows[0][0]
            .as_ref()
            .unwrap()
            .lexical()
            .ends_with("Canberra"));
    }

    #[test]
    fn template_with_suffix() {
        let k = kbqa();
        let s = k.answer("When was Alyssa Milano born?");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0].as_ref().unwrap().lexical(), "1972-12-19");
    }

    #[test]
    fn refuses_off_template_questions() {
        let k = kbqa();
        // QAKiS would fuzzy-match this; KBQA must stay silent (precision 1.0).
        assert!(k
            .answer("Tell me the timezone used by Salt Lake City please")
            .is_empty());
        assert!(k
            .answer("Which chess players died where they were born?")
            .is_empty());
        assert!(k
            .answer("Which films starring Clint Eastwood did he direct?")
            .is_empty());
    }

    #[test]
    fn refuses_unknown_entities() {
        let k = kbqa();
        assert!(k.answer("What is the capital of Atlantis?").is_empty());
    }
}
