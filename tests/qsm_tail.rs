//! QSM-tail determinism: the shared cross-request `NeighborhoodCache` must
//! be invisible in the *bytes* of every relaxation.
//!
//! The cache amortizes Steiner expansion round trips across requests, and it
//! is warmed concurrently — many sessions relax different queries at once,
//! racing fills and hits in any interleaving the scheduler picks. The
//! contract (see `sapphire_core::qsm::neighborhood`) is that none of that is
//! observable: a warm, concurrently-thrashed model produces relaxations
//! byte-identical to a cold model running one request at a time, because a
//! cache hit charges the exact budget the skipped queries would have cost.

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::session::Modifiers;
use sapphire_core::{InitMode, SapphireConfig};
use sapphire_datagen::workload::appendix_b;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_sparql::SelectQuery;

fn fresh_pum() -> Arc<PredictiveUserModel> {
    let graph = generate(DatasetConfig::tiny(42));
    Arc::new(
        PredictiveUserModel::initialize_local(
            "dbpedia",
            graph,
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .expect("initialization"),
    )
}

/// Build every Appendix-B question into a query against `pum`'s cache.
fn workload_queries(pum: &PredictiveUserModel) -> Vec<SelectQuery> {
    appendix_b()
        .iter()
        .filter_map(|q| {
            let modifiers = Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            };
            Session::resume(pum, q.script.rows.clone(), modifiers, 0)
                .build_query()
                .ok()
        })
        .collect()
}

/// Everything a run produces that users can observe, minus wall-clock time.
fn rendering(pum: &PredictiveUserModel, query: &SelectQuery) -> String {
    let out = pum.run(query);
    format!(
        "answers={:?} executed={:?} alternatives={:?} relaxations={:?} tier={} degraded={}",
        out.answers,
        out.executed,
        out.suggestions.alternatives,
        out.suggestions.relaxations,
        out.suggestions.tier,
        out.suggestions.degraded,
    )
}

#[test]
fn warm_concurrent_neighborhood_cache_matches_cold_single_threaded_reference() {
    // Cold reference: a fresh model, one request at a time, nothing shared.
    let reference_pum = fresh_pum();
    let queries = workload_queries(&reference_pum);
    assert!(
        queries.len() >= 20,
        "workload resolves: {} queries",
        queries.len()
    );
    let reference: Vec<String> = queries
        .iter()
        .map(|q| rendering(&reference_pum, q))
        .collect();
    // The reference itself must contain relaxations, or the test proves
    // nothing about the Steiner path.
    assert!(
        reference.iter().any(|r| r.contains("RelaxedQuery")),
        "at least one workload query relaxes"
    );

    // Warm phase: 8 threads interleave the whole workload from different
    // offsets, twice — every expansion races fills and hits on the shared
    // cache across concurrent relaxations.
    let warm_pum = fresh_pum();
    std::thread::scope(|scope| {
        for user in 0..8usize {
            let warm_pum = &warm_pum;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..2usize {
                    for qi in 0..queries.len() {
                        let idx = (qi + user + round) % queries.len();
                        assert_eq!(
                            rendering(warm_pum, &queries[idx]),
                            reference[idx],
                            "query {idx} diverged under a concurrently warmed cache"
                        );
                    }
                }
            });
        }
    });

    // And once more, sequentially, against the now fully warm cache.
    for (idx, query) in queries.iter().enumerate() {
        assert_eq!(
            rendering(&warm_pum, query),
            reference[idx],
            "query {idx} diverged on the fully warm cache"
        );
    }

    // The cache must actually have carried load: round trips were saved, and
    // savings are exactly the hits' worth of budget (never more — hits may
    // never widen the frontier).
    let stats = warm_pum.relax_cache_stats();
    assert!(stats.hits > 0, "warm runs hit the shared cache: {stats:?}");
    assert!(stats.fills > 0, "cold expansions published: {stats:?}");
    assert!(
        stats.queries_saved > 0,
        "round trips were amortized: {stats:?}"
    );
    // 17 passes over the workload hit each vertex's neighbor list many
    // times but pay its round trips only on (possibly raced) cold misses —
    // the savings must dominate the executions, or the cache isn't doing
    // its job.
    assert!(
        stats.queries_saved > stats.queries_executed,
        "amortization dominates: {stats:?}"
    );
}
