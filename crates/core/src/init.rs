//! Initialization for a new endpoint (§5, Appendix A).
//!
//! When an endpoint is registered, Sapphire caches (a) **all predicates**
//! (there are few — ~3K for DBpedia vs 70M literals), and (b) a filtered
//! subset of **literals** (≤ 80 chars, target language), partitioned along
//! the RDFS class hierarchy so every retrieval query stays under the
//! endpoint's timeout: a query that times out on a class is retried on that
//! class's (smaller) subclasses, and every class-level query is paginated
//! with LIMIT/OFFSET. *Most significant literals* (Definition 1: literals
//! whose entity has many incoming edges) are identified the same way and go
//! into the suffix tree.
//!
//! The query templates Q1–Q10 below are the ones listed in Appendix A.

use std::collections::HashMap;

use sapphire_endpoint::{Endpoint, EndpointError};
use sapphire_rdf::ClassHierarchy;
use sapphire_sparql::Solutions;
use sapphire_text::surface_form;

use crate::cache::{CachedClass, CachedData, CachedPredicate};
use crate::config::SapphireConfig;

/// Initialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitError {
    /// A metadata query (Q1–Q4) failed outright; these are "short queries
    /// that are not expected to time out" (§5.1), so failure is fatal.
    Metadata(String),
}

impl std::fmt::Display for InitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InitError::Metadata(m) => write!(f, "initialization metadata query failed: {m}"),
        }
    }
}

impl std::error::Error for InitError {}

/// Counters for the §5.2 initialization-cost report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InitStats {
    /// Metadata queries issued (Q1–Q4).
    pub metadata_queries: u64,
    /// Predicate-filtering queries issued (Q5).
    pub filter_queries: u64,
    /// Literal-retrieval queries issued (Q6/Q7 or Q9).
    pub literal_queries: u64,
    /// Significance queries issued (Q8 or Q10).
    pub significance_queries: u64,
    /// Queries that hit the endpoint's timeout.
    pub timeouts: u64,
    /// True if the user's query limit stopped initialization early.
    pub stopped_by_limit: bool,
    /// Literals cached.
    pub literals_cached: u64,
}

impl InitStats {
    /// Total queries issued to the endpoint.
    pub fn total_queries(&self) -> u64 {
        self.metadata_queries
            + self.filter_queries
            + self.literal_queries
            + self.significance_queries
    }
}

/// Which retrieval plan to use (§5.1 / Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMode {
    /// Remote endpoint with timeouts: class-hierarchy descent + pagination
    /// (Q6/Q7/Q8).
    #[default]
    Federated,
    /// Local warehouse, no resource constraints: single long-running
    /// paginated queries (Q9/Q10).
    Warehouse,
}

/// Runs initialization against one endpoint.
pub struct Initializer<'a> {
    endpoint: &'a dyn Endpoint,
    config: &'a SapphireConfig,
    mode: InitMode,
    stats: InitStats,
    /// Literal → best significance score seen.
    literals: HashMap<String, u64>,
    /// Classes discovered by Q2/Q3, for rdf:type keyword resolution.
    classes: Vec<String>,
}

impl<'a> Initializer<'a> {
    /// Create an initializer.
    pub fn new(endpoint: &'a dyn Endpoint, config: &'a SapphireConfig, mode: InitMode) -> Self {
        Initializer {
            endpoint,
            config,
            mode,
            stats: InitStats::default(),
            literals: HashMap::new(),
            classes: Vec::new(),
        }
    }

    /// Run the full §5 pipeline and assemble the cache.
    pub fn run(mut self) -> Result<(CachedData, InitStats), InitError> {
        // Q1 — all predicates by frequency.
        let q1 = "SELECT DISTINCT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o } \
                  GROUP BY ?p ORDER BY DESC(?frequency)";
        let predicates_by_freq = self.metadata(q1)?;

        // Q4 — predicates by number of associated literals.
        let q4 = "SELECT DISTINCT ?p (COUNT(?o) AS ?frequency) WHERE { ?s ?p ?o . \
                  FILTER(isliteral(?o)) } GROUP BY ?p ORDER BY DESC(?frequency)";
        let literal_predicates = self.metadata(q4)?;
        let literal_counts: HashMap<String, u64> = pairs(&literal_predicates).into_iter().collect();

        let predicates: Vec<CachedPredicate> = pairs(&predicates_by_freq)
            .into_iter()
            .map(|(iri, _)| CachedPredicate {
                surface: surface_form(&iri),
                literal_count: literal_counts.get(&iri).copied().unwrap_or(0),
                iri,
            })
            .collect();

        // Q5 — keep only predicates that have at least one qualifying literal.
        let mut lit_preds: Vec<(String, u64)> = literal_counts.clone().into_iter().collect();
        lit_preds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut qualifying: Vec<String> = Vec::new();
        for (iri, _) in &lit_preds {
            if self.over_limit() {
                break;
            }
            let q5 = format!(
                "SELECT DISTINCT ?o WHERE {{ ?s <{iri}> ?o . FILTER(isliteral(?o) && lang(?o) = \"{lang}\" && strlen(str(?o)) < {max}) }} LIMIT 1",
                lang = self.config.language,
                max = self.config.literal_max_len,
            );
            self.stats.filter_queries += 1;
            match self.endpoint.select(&q5) {
                Ok(s) if !s.is_empty() => qualifying.push(iri.clone()),
                Ok(_) => {}
                Err(EndpointError::Timeout { .. }) => self.stats.timeouts += 1,
                Err(_) => {}
            }
        }

        match self.mode {
            InitMode::Warehouse => {
                // Classes are cheap to list even in warehouse mode.
                if let Ok(h) = self.class_hierarchy() {
                    self.classes = h.classes().map(str::to_string).collect();
                }
                self.retrieve_warehouse();
            }
            InitMode::Federated => {
                // Q2 — the RDFS class hierarchy; fall back to Q3 entity types
                // for datasets that don't use RDFS (§5.1).
                let hierarchy = self.class_hierarchy()?;
                let start_classes: Vec<String> = if hierarchy.is_empty() {
                    self.frequent_types()?
                } else {
                    hierarchy.roots().into_iter().map(str::to_string).collect()
                };
                self.classes = if hierarchy.is_empty() {
                    start_classes.clone()
                } else {
                    hierarchy.classes().map(str::to_string).collect()
                };
                // Literals: iterate predicates most-frequent-first, walking
                // the hierarchy top-down per predicate.
                for iri in &qualifying {
                    if self.over_limit() {
                        break;
                    }
                    self.walk_hierarchy(iri, &start_classes, &hierarchy, RetrievalKind::Literals);
                }
                // Significance (Q8), same traversal shape.
                for iri in &qualifying {
                    if self.over_limit() {
                        break;
                    }
                    self.walk_hierarchy(
                        iri,
                        &start_classes,
                        &hierarchy,
                        RetrievalKind::Significance,
                    );
                }
            }
        }

        self.stats.literals_cached = self.literals.len() as u64;
        let mut classes: Vec<CachedClass> = self
            .classes
            .iter()
            .map(|iri| CachedClass {
                surface: surface_form(iri),
                iri: iri.clone(),
            })
            .collect();
        classes.sort_by(|a, b| a.iri.cmp(&b.iri));
        classes.dedup_by(|a, b| a.iri == b.iri);
        let literal_scores: Vec<(String, u64)> = self.literals.into_iter().collect();
        let cache =
            CachedData::assemble(predicates, literal_scores, self.config).with_classes(classes);
        Ok((cache, self.stats))
    }

    fn metadata(&mut self, query: &str) -> Result<Solutions, InitError> {
        self.stats.metadata_queries += 1;
        self.endpoint
            .select(query)
            .map_err(|e| InitError::Metadata(e.to_string()))
    }

    fn over_limit(&mut self) -> bool {
        match self.config.init_query_limit {
            Some(limit) if self.stats.total_queries() >= limit as u64 => {
                self.stats.stopped_by_limit = true;
                true
            }
            _ => false,
        }
    }

    /// Q2 — classes and subclasses.
    fn class_hierarchy(&mut self) -> Result<ClassHierarchy, InitError> {
        let q2 = "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> \
                  PREFIX owl: <http://www.w3.org/2002/07/owl#> \
                  SELECT DISTINCT ?class ?subclass WHERE { ?class a owl:Class . ?class rdfs:subClassOf ?subclass }";
        let s = self.metadata(q2)?;
        let mut h = ClassHierarchy::default();
        for r in 0..s.len() {
            if let (Some(sub), Some(sup)) = (s.get(r, "class"), s.get(r, "subclass")) {
                h.add_edge(sub.lexical().to_string(), sup.lexical().to_string());
            }
        }
        Ok(h)
    }

    /// Q3 — frequent entity types, for datasets without an RDFS hierarchy.
    fn frequent_types(&mut self) -> Result<Vec<String>, InitError> {
        let q3 = "SELECT DISTINCT ?o (COUNT(?s) AS ?frequency) WHERE { ?s a ?o } \
                  GROUP BY ?o ORDER BY DESC(?frequency)";
        let s = self.metadata(q3)?;
        Ok(s.values("o").map(|t| t.lexical().to_string()).collect())
    }

    /// Walk the class hierarchy top-down for one predicate, paginating at
    /// each class and descending to subclasses on timeout (§5.1).
    fn walk_hierarchy(
        &mut self,
        predicate: &str,
        start: &[String],
        hierarchy: &ClassHierarchy,
        kind: RetrievalKind,
    ) {
        let mut stack: Vec<String> = start.to_vec();
        // Depth-first; order within a level follows the hierarchy's order.
        stack.reverse();
        while let Some(class) = stack.pop() {
            if self.over_limit() {
                return;
            }
            match self.paginate_class(predicate, &class, kind) {
                PageOutcome::Done { found_any: true } => {
                    // "If the query succeeds … issuing the same queries over
                    // the subclasses is redundant." (DBpedia-style datasets
                    // materialize transitive types, so a class-level success
                    // covers the whole subtree.)
                }
                PageOutcome::Done { found_any: false } | PageOutcome::TimedOut => {
                    // Descend: on timeout because subclasses are smaller; on
                    // an empty answer because instances may be typed with
                    // subclasses only.
                    for sub in hierarchy.subclasses(&class).iter().rev() {
                        stack.push(sub.clone());
                    }
                }
                PageOutcome::LimitReached => return,
            }
        }
    }

    /// Issue the paginated Q6/Q7 (literals) or Q8 (significance) sequence for
    /// one (class, predicate) pair.
    fn paginate_class(&mut self, predicate: &str, class: &str, kind: RetrievalKind) -> PageOutcome {
        let page = self.config.init_page_size;
        let mut offset = 0usize;
        let mut found_any = false;
        loop {
            if self.over_limit() {
                return PageOutcome::LimitReached;
            }
            let query = match kind {
                RetrievalKind::Literals => format!(
                    // Q6/Q7.
                    "SELECT DISTINCT ?o WHERE {{ ?s a <{class}> . ?s <{predicate}> ?o . \
                     FILTER(isliteral(?o) && lang(?o) = \"{lang}\" && strlen(str(?o)) < {max}) }} \
                     LIMIT {page} OFFSET {offset}",
                    lang = self.config.language,
                    max = self.config.literal_max_len,
                ),
                RetrievalKind::Significance => format!(
                    // Q8: the predicate is literal-associated, so only the
                    // language/length filters apply.
                    "SELECT DISTINCT ?o (COUNT(?subject) AS ?frequency) WHERE {{ \
                     ?s a <{class}> . ?subject ?p2 ?s . ?s <{predicate}> ?o . \
                     FILTER(lang(?o) = \"{lang}\" && strlen(str(?o)) < {max}) }} \
                     GROUP BY ?o ORDER BY DESC(?frequency) LIMIT {page} OFFSET {offset}",
                    lang = self.config.language,
                    max = self.config.literal_max_len,
                ),
            };
            match kind {
                RetrievalKind::Literals => self.stats.literal_queries += 1,
                RetrievalKind::Significance => self.stats.significance_queries += 1,
            }
            match self.endpoint.select(&query) {
                Ok(s) => {
                    let fetched = s.len();
                    found_any |= fetched > 0;
                    self.absorb(&s, kind);
                    if fetched < page {
                        return PageOutcome::Done { found_any };
                    }
                    offset += page;
                }
                Err(EndpointError::Timeout { .. }) | Err(EndpointError::Rejected { .. }) => {
                    self.stats.timeouts += 1;
                    return PageOutcome::TimedOut;
                }
                Err(_) => return PageOutcome::Done { found_any },
            }
        }
    }

    /// Warehouse-mode retrieval: Q9 (literals) and Q10 (significance) with
    /// pagination only, no class partitioning.
    fn retrieve_warehouse(&mut self) {
        let page = self.config.init_page_size;
        let lang = &self.config.language;
        let max = self.config.literal_max_len;
        let mut offset = 0usize;
        loop {
            if self.over_limit() {
                return;
            }
            let q9 = format!(
                "SELECT DISTINCT ?o WHERE {{ ?s ?p ?o . \
                 FILTER(isliteral(?o) && lang(?o) = \"{lang}\" && strlen(str(?o)) < {max}) }} \
                 LIMIT {page} OFFSET {offset}"
            );
            self.stats.literal_queries += 1;
            match self.endpoint.select(&q9) {
                Ok(s) => {
                    let fetched = s.len();
                    self.absorb(&s, RetrievalKind::Literals);
                    if fetched < page {
                        break;
                    }
                    offset += page;
                }
                Err(_) => break,
            }
        }
        let mut offset = 0usize;
        loop {
            if self.over_limit() {
                return;
            }
            let q10 = format!(
                "SELECT DISTINCT ?o (COUNT(?s1) AS ?frequency) WHERE {{ ?s1 ?p ?s2 . ?s2 ?p2 ?o . \
                 FILTER(isliteral(?o) && lang(?o) = \"{lang}\" && strlen(str(?o)) < {max}) }} \
                 GROUP BY ?o ORDER BY DESC(?frequency) LIMIT {page} OFFSET {offset}"
            );
            self.stats.significance_queries += 1;
            match self.endpoint.select(&q10) {
                Ok(s) => {
                    let fetched = s.len();
                    self.absorb(&s, RetrievalKind::Significance);
                    if fetched < page {
                        break;
                    }
                    offset += page;
                }
                Err(_) => break,
            }
        }
    }

    fn absorb(&mut self, s: &Solutions, kind: RetrievalKind) {
        match kind {
            RetrievalKind::Literals => {
                for t in s.values("o") {
                    let text = t.lexical().to_string();
                    self.literals.entry(text).or_insert(0);
                }
            }
            RetrievalKind::Significance => {
                let Some(freq_col) = s.vars.iter().position(|v| v == "frequency") else {
                    return;
                };
                let Some(o_col) = s.vars.iter().position(|v| v == "o") else {
                    return;
                };
                for row in &s.rows {
                    let (Some(o), Some(f)) = (&row[o_col], &row[freq_col]) else {
                        continue;
                    };
                    let score: u64 = f.lexical().parse().unwrap_or(0);
                    let entry = self.literals.entry(o.lexical().to_string()).or_insert(0);
                    *entry = (*entry).max(score);
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetrievalKind {
    Literals,
    Significance,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageOutcome {
    Done {
        /// True if at least one row came back across all pages.
        found_any: bool,
    },
    TimedOut,
    LimitReached,
}

/// Extract `(iri, frequency)` pairs from a two-column metadata result.
fn pairs(s: &Solutions) -> Vec<(String, u64)> {
    let Some(p_col) = s.vars.iter().position(|v| v == "p") else {
        return Vec::new();
    };
    let Some(f_col) = s.vars.iter().position(|v| v == "frequency") else {
        return Vec::new();
    };
    s.rows
        .iter()
        .filter_map(|row| {
            let p = row[p_col].as_ref()?;
            let f = row[f_col].as_ref()?;
            Some((p.lexical().to_string(), f.lexical().parse().unwrap_or(0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;

    const FIXTURE: &str = r#"
dbo:Person a owl:Class ; rdfs:subClassOf owl:Thing .
dbo:Scientist a owl:Class ; rdfs:subClassOf dbo:Person .
dbo:Politician a owl:Class ; rdfs:subClassOf dbo:Person .
dbo:Place a owl:Class ; rdfs:subClassOf owl:Thing .
dbo:City a owl:Class ; rdfs:subClassOf dbo:Place .

res:Ada a dbo:Scientist ; dbo:name "Ada Lovelace"@en ; dbo:birthPlace res:London .
res:Alan a dbo:Scientist ; dbo:name "Alan Turing"@en ; dbo:birthPlace res:London .
res:Maggie a dbo:Politician ; dbo:name "Margaret Thatcher"@en ; dbo:birthPlace res:Grantham .
res:London a dbo:City ; dbo:name "London"@en .
res:Grantham a dbo:City ; dbo:name "Grantham"@en .
res:Long a dbo:City ; dbo:name "This literal is deliberately longer than the eighty character cap so it must be excluded."@en .
res:French a dbo:City ; dbo:name "Londres"@fr .
"#;

    fn endpoint(work: Option<u64>) -> LocalEndpoint {
        let limits = EndpointLimits {
            timeout_work: work,
            reject_above: None,
            max_results: None,
        };
        LocalEndpoint::new("fixture", turtle::parse(FIXTURE).unwrap(), limits)
    }

    #[test]
    fn federated_init_caches_filtered_literals() {
        let ep = endpoint(None);
        let config = SapphireConfig::for_tests();
        let (cache, stats) = Initializer::new(&ep, &config, InitMode::Federated)
            .run()
            .unwrap();
        // English, < 80 chars: the five names.
        let mut all: Vec<String> = cache
            .significant
            .iter()
            .map(|(t, _)| t.clone())
            .chain((0..cache.bins.len() as u32).map(|i| cache.bins.literal(i).to_string()))
            .collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                "Ada Lovelace",
                "Alan Turing",
                "Grantham",
                "London",
                "Margaret Thatcher"
            ]
        );
        assert!(stats.literal_queries > 0);
        assert!(stats.significance_queries > 0);
        assert_eq!(stats.timeouts, 0);
        // All predicates cached, not only literal-bearing ones.
        assert!(cache
            .predicate_by_iri("http://dbpedia.org/ontology/birthPlace")
            .is_some());
        assert!(cache
            .predicate_by_iri("http://dbpedia.org/ontology/name")
            .is_some());
    }

    #[test]
    fn significance_scores_flow_into_cache() {
        let ep = endpoint(None);
        let config = SapphireConfig::for_tests();
        let (cache, _) = Initializer::new(&ep, &config, InitMode::Federated)
            .run()
            .unwrap();
        // "London" is the name of an entity with two incoming edges.
        let london = cache
            .significant
            .iter()
            .find(|(t, _)| t == "London")
            .expect("london significant");
        assert_eq!(london.1, 2);
        // Person names have no incoming edges on their entities.
        let ada = cache
            .significant
            .iter()
            .find(|(t, _)| t == "Ada Lovelace")
            .unwrap();
        assert_eq!(ada.1, 0);
    }

    #[test]
    fn timeouts_force_hierarchy_descent_but_still_complete() {
        // A budget small enough that root-level (owl:Thing has no instances
        // here, classes like Person) queries are fine but whole-graph scans
        // would die. The important property: descent still finds literals.
        let ep = endpoint(Some(4_000));
        let config = SapphireConfig::for_tests();
        let (cache, stats) = Initializer::new(&ep, &config, InitMode::Federated)
            .run()
            .unwrap();
        assert!(
            cache.literal_count() >= 5,
            "cached {} literals",
            cache.literal_count()
        );
        // Some queries may time out; none of this should abort init.
        let _ = stats.timeouts;
    }

    #[test]
    fn warehouse_mode_uses_q9_q10() {
        let ep = endpoint(None);
        let config = SapphireConfig::for_tests();
        let (cache, stats) = Initializer::new(&ep, &config, InitMode::Warehouse)
            .run()
            .unwrap();
        assert_eq!(cache.literal_count(), 5);
        assert!(stats.literal_queries >= 1);
        assert!(stats.significance_queries >= 1);
    }

    #[test]
    fn query_limit_stops_early() {
        let ep = endpoint(None);
        let config = SapphireConfig {
            init_query_limit: Some(3),
            ..SapphireConfig::for_tests()
        };
        let (_, stats) = Initializer::new(&ep, &config, InitMode::Federated)
            .run()
            .unwrap();
        assert!(stats.stopped_by_limit);
        assert!(
            stats.total_queries() <= 4,
            "issued {}",
            stats.total_queries()
        );
    }

    #[test]
    fn endpoint_stats_reflect_init_traffic() {
        let ep = endpoint(None);
        let config = SapphireConfig::for_tests();
        let (_, stats) = Initializer::new(&ep, &config, InitMode::Federated)
            .run()
            .unwrap();
        assert_eq!(ep.stats().queries, stats.total_queries());
    }
}
