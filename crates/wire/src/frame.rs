//! Frame layer: the only thing that ever touches a socket.
//!
//! Every message is one frame:
//!
//! ```text
//! +-------+-------+-----------------+------------------+
//! | magic | kind  | len (u32 LE)    | payload (len B)  |
//! | 0xC5  | 1 B   | 4 B             | codec-encoded    |
//! +-------+-------+-----------------+------------------+
//! ```
//!
//! The magic byte catches desynchronized streams immediately (a reader that
//! lost frame alignment sees garbage where 0xC5 should be, not a plausible
//! length it would block on), and the length prefix is validated against a
//! hard cap *before* any allocation, so a corrupt or hostile length can
//! neither hang the reader nor balloon memory.

use std::io::{Read, Write};
use std::time::Duration;

/// First byte of every frame.
pub const MAGIC: u8 = 0xC5;

/// Protocol version exchanged in the HELLO handshake. Bump on any codec
/// change; mismatched peers disconnect instead of misparsing.
pub const WIRE_VERSION: u32 = 1;

/// Default upper bound on one frame's payload (64 MiB) — generous for a
/// shard reply full of prefetched suggestion answers, tiny next to what a
/// corrupt 4-byte length can claim.
pub const MAX_FRAME: u32 = 64 << 20;

/// Frame kinds.
pub mod kind {
    /// Client → server, first frame on a connection: `[version u32]`.
    pub const HELLO: u8 = 1;
    /// Server → client handshake ack: `[name][k u32][max_frame u32]`.
    pub const HELLO_OK: u8 = 2;
    /// Client → server: one encoded [`WireRequest`](crate::WireRequest).
    pub const REQUEST: u8 = 3;
    /// Server → client: load header + one encoded result.
    pub const REPLY: u8 = 4;
}

/// Every way the transport can fail, kept distinct so each maps onto the
/// right typed [`ServerError`](sapphire_server::ServerError) (see
/// [`WireError::to_server_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The OS-level IO failure (connect refused, reset, broken pipe, ...).
    Io(std::io::ErrorKind, String),
    /// The peer closed the connection mid-frame.
    ShortRead,
    /// A read or connect deadline expired.
    Timeout,
    /// The bytes violate the protocol (bad magic, bad tag, length overruns
    /// the payload, non-UTF-8 string, unknown enum discriminant).
    Corrupt(String),
    /// The announced payload length exceeds the frame cap.
    TooLarge {
        /// Announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, m) => write!(f, "io error ({kind:?}): {m}"),
            WireError::ShortRead => write!(f, "connection closed mid-frame"),
            WireError::Timeout => write!(f, "deadline expired"),
            WireError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame too large ({len} bytes, cap {max})")
            }
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True for failures of the *link* (the request may never have reached
    /// the peer's data path): safe to fail over to a sibling replica.
    /// False for protocol violations, which retrying cannot fix.
    pub fn is_transport(&self) -> bool {
        !matches!(self, WireError::Corrupt(_) | WireError::TooLarge { .. })
    }

    /// The machine-stable reason string carried inside
    /// [`ServerError::Unreachable`](sapphire_server::ServerError::Unreachable).
    pub fn reason(&self) -> &'static str {
        match self {
            WireError::Io(std::io::ErrorKind::ConnectionRefused, _) => "connect",
            WireError::Io(std::io::ErrorKind::ConnectionReset, _)
            | WireError::Io(std::io::ErrorKind::ConnectionAborted, _)
            | WireError::Io(std::io::ErrorKind::BrokenPipe, _) => "reset",
            WireError::Io(_, _) => "reset",
            WireError::ShortRead => "short read",
            WireError::Timeout => "timeout",
            WireError::Closed => "closed",
            WireError::Corrupt(_) | WireError::TooLarge { .. } => "corrupt",
        }
    }

    /// Map onto the serving tier's typed error surface: transport failures
    /// become the retryable
    /// [`ServerError::Unreachable`](sapphire_server::ServerError::Unreachable)
    /// (the cluster router fails them over to a sibling replica); protocol
    /// violations become a non-retryable
    /// [`ServerError::Backend`](sapphire_server::ServerError::Backend).
    pub fn to_server_error(&self) -> sapphire_server::ServerError {
        if self.is_transport() {
            sapphire_server::ServerError::Unreachable {
                reason: self.reason().to_string(),
            }
        } else {
            sapphire_server::ServerError::Backend(self.to_string())
        }
    }
}

fn io_error(e: std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
        kind => WireError::Io(kind, e.to_string()),
    }
}

/// `read_exact` that keeps "peer hung up cleanly between frames" distinct
/// from "peer hung up mid-frame": only the former is a graceful close.
fn fill(r: &mut impl Read, buf: &mut [u8], clean_eof: bool) -> Result<(), WireError> {
    let mut done = 0;
    while done < buf.len() {
        match r.read(&mut buf[done..]) {
            Ok(0) => {
                return Err(if clean_eof && done == 0 {
                    WireError::Closed
                } else {
                    WireError::ShortRead
                })
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(())
}

/// Write one frame. The header and payload go out in a single `write_all`
/// so a concurrent reader never sees a torn header.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    let mut frame = Vec::with_capacity(6 + payload.len());
    frame.push(MAGIC);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Read one frame, validating magic and length cap before allocating.
/// Returns `(kind, payload)`.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; 6];
    fill(r, &mut header, true)?;
    if header[0] != MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad magic 0x{:02X} (want 0x{MAGIC:02X})",
            header[0]
        )));
    }
    let kind = header[1];
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len as usize];
    fill(r, &mut payload, false)?;
    Ok((kind, payload))
}

/// A read deadline for the next frame(s) on a socket. `None` blocks forever.
pub fn set_deadline(stream: &std::net::TcpStream, d: Option<Duration>) -> Result<(), WireError> {
    stream.set_read_timeout(d).map_err(io_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::REQUEST, b"hello").unwrap();
        let (k, p) = read_frame(&mut &buf[..], MAX_FRAME).unwrap();
        assert_eq!(k, kind::REQUEST);
        assert_eq!(p, b"hello");
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let buf = [0xFFu8, 1, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![MAGIC, kind::REPLY];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::TooLarge { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn truncated_payload_is_short_read_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::REPLY, &[9; 100]).unwrap();
        buf.truncate(20);
        assert_eq!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::ShortRead)
        );
    }

    #[test]
    fn eof_between_frames_is_a_clean_close() {
        assert_eq!(read_frame(&mut &[][..], MAX_FRAME), Err(WireError::Closed));
    }
}
