//! Offline API-subset shim for the `rand` crate.
//!
//! Provides exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! and `gen_bool`. The generator is xoshiro256** seeded through SplitMix64 —
//! high-quality and deterministic, though its streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12); all in-repo consumers only rely on
//! seed-determinism, not on specific stream values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a supported type (`f64` in `[0, 1)`, raw integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }

    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Derive a value from 64 random bits.
    fn sample_standard(bits: u64) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard(bits: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard(bits: u64) -> Self {
        bits
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Map 64 random bits onto the range.
    fn sample_from(self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, bits: u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, bits: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )+};
}

impl_sample_range!(i32, i64, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to expand the seed, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1..=12i64);
            assert!((1..=12).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
