//! Ablations of the design choices DESIGN.md calls out (not a paper table):
//!
//! 1. Jaro-Winkler vs Jaro vs normalized Levenshtein for term alternatives
//!    (the paper asserts JW "outperforms other similarity measures in our
//!    context", §6.2.1).
//! 2. The γ length-band for QCM residual scans: candidates scanned vs recall.
//! 3. The Steiner query budget: relaxation success vs expansion cost.
//! 4. θ sweep: alternative-candidate counts.
//!
//! Usage: `cargo run -p sapphire-bench --bin ablation --release [--scale tiny|small|medium]`

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sapphire_bench::{
    experiment_config, harvest_literals, harvest_predicates, heading, scale_from_args,
};
use sapphire_core::qsm::StructureRelaxer;
use sapphire_core::{CachedData, SapphireConfig, SteinerConfig};
use sapphire_datagen::generate;
use sapphire_datagen::userstudy::misspell;
use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
use sapphire_rdf::Term;
use sapphire_text::{jaro, jaro_winkler_ci, levenshtein_similarity};

fn main() {
    let dataset = scale_from_args();
    println!("(generating dataset…)");
    let graph = generate(dataset);
    let literals = harvest_literals(&graph, "en", 80);
    let predicates = harvest_predicates(&graph);
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let fed = FederatedProcessor::single(endpoint);
    let base = experiment_config();

    // ---------------------------------------------------------------
    // 1. Similarity-measure shootout: recover the original literal from a
    //    misspelling; rank-1 accuracy per measure.
    // ---------------------------------------------------------------
    println!(
        "{}",
        heading("Ablation 1 — similarity measure for term alternatives (rank-1 recovery)")
    );
    let mut rng = StdRng::seed_from_u64(7);
    let probes: Vec<(String, String)> = literals
        .iter()
        .filter(|(l, _)| l.len() >= 5 && l.len() <= 30)
        .take(200)
        .map(|(l, _)| (misspell(l, &mut rng), l.clone()))
        .collect();
    type Measure = (&'static str, fn(&str, &str) -> f64);
    let measures: Vec<Measure> = vec![
        ("Jaro-Winkler", |a, b| jaro_winkler_ci(a, b)),
        ("Jaro", |a, b| jaro(&a.to_lowercase(), &b.to_lowercase())),
        ("norm. Levenshtein", |a, b| {
            levenshtein_similarity(&a.to_lowercase(), &b.to_lowercase())
        }),
    ];
    for (name, f) in &measures {
        let mut rank1 = 0usize;
        for (typo, original) in &probes {
            let best = literals
                .iter()
                .map(|(l, _)| (l, f(typo, l)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(l, _)| l.clone());
            if best.as_deref() == Some(original.as_str()) {
                rank1 += 1;
            }
        }
        println!(
            "{name:<20} rank-1 accuracy: {:>5.1}%",
            100.0 * rank1 as f64 / probes.len() as f64
        );
    }

    // ---------------------------------------------------------------
    // 2. γ sweep: QCM residual candidates vs whether the intended literal is
    //    reachable.
    // ---------------------------------------------------------------
    println!(
        "{}",
        heading("Ablation 2 — γ (QCM length band): candidates scanned vs recall")
    );
    println!("{:<6} {:>14} {:>10}", "γ", "avg candidates", "recall");
    let typo_probes: Vec<(String, String)> = literals
        .iter()
        .filter(|(l, _)| l.len() >= 6 && l.len() <= 40)
        .take(100)
        .map(|(l, _)| {
            let prefix: String = l.chars().take(4).collect();
            (prefix, l.clone())
        })
        .collect();
    for gamma in [0usize, 2, 5, 10, 20, 40] {
        let config = SapphireConfig {
            suffix_tree_capacity: 0,
            gamma,
            ..base.clone()
        };
        let cache = CachedData::from_raw(predicates.clone(), literals.clone(), &config);
        let mut candidates = 0usize;
        let mut found = 0usize;
        for (prefix, original) in &typo_probes {
            candidates += cache
                .bins
                .count_in_range(prefix.len()..prefix.len() + gamma + 1);
            let ids = cache.residual_lookup(prefix, gamma, config.processes);
            if ids.iter().any(|&id| cache.bins.literal(id) == original) {
                found += 1;
            }
        }
        println!(
            "{:<6} {:>14} {:>9.0}%",
            gamma,
            candidates / typo_probes.len().max(1),
            100.0 * found as f64 / typo_probes.len().max(1) as f64
        );
    }

    // ---------------------------------------------------------------
    // 3. Steiner budget sweep on the Figure 6 workload.
    // ---------------------------------------------------------------
    println!(
        "{}",
        heading("Ablation 3 — Steiner expansion budget (Figure 6 workload)")
    );
    println!("{:<8} {:>9} {:>12}", "budget", "connects", "queries used");
    let preferred: HashSet<String> = ["author", "publisher", "writer"]
        .iter()
        .map(|p| format!("http://dbpedia.org/ontology/{p}"))
        .collect();
    let groups = vec![
        vec![Term::en("Jack Kerouac")],
        vec![Term::en("Viking Press")],
    ];
    for budget in [2usize, 5, 10, 25, 50, 100, 200] {
        let config = SteinerConfig {
            query_budget: budget,
            ..SteinerConfig::default()
        };
        let relaxer = StructureRelaxer::new(&fed, config, preferred.clone());
        match relaxer.relax(&groups) {
            Some(r) => println!("{:<8} {:>9} {:>12}", budget, r.complete, r.queries_used),
            None => println!("{:<8} {:>9} {:>12}", budget, false, "-"),
        }
    }

    // ---------------------------------------------------------------
    // 4. θ sweep: how many alternatives clear the similarity bar.
    // ---------------------------------------------------------------
    println!(
        "{}",
        heading("Ablation 4 — θ (JW threshold): literal alternatives per probe")
    );
    println!("{:<6} {:>16} {:>10}", "θ", "avg alternatives", "recall");
    let mut rng = StdRng::seed_from_u64(11);
    let typo_probes: Vec<(String, String)> = literals
        .iter()
        .filter(|(l, _)| l.len() >= 6 && l.len() <= 30)
        .take(100)
        .map(|(l, _)| (misspell(l, &mut rng), l.clone()))
        .collect();
    for theta in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let config = SapphireConfig {
            suffix_tree_capacity: 0,
            theta,
            ..base.clone()
        };
        let cache = CachedData::from_raw(predicates.clone(), literals.clone(), &config);
        let mut count = 0usize;
        let mut found = 0usize;
        for (typo, original) in &typo_probes {
            let alts =
                cache.similar_literals(typo, config.alpha, config.beta, theta, config.processes);
            count += alts.len();
            if alts.iter().any(|(l, _)| l == original) {
                found += 1;
            }
        }
        println!(
            "{:<6} {:>16.1} {:>9.0}%",
            theta,
            count as f64 / typo_probes.len() as f64,
            100.0 * found as f64 / typo_probes.len() as f64
        );
    }
}
