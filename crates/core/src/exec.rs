//! A shared, bounded, work-stealing task executor.
//!
//! Every hot path in the serving stack used to pay OS thread creation per
//! request: cluster scatter spawned one scoped thread per shard, hedging
//! spawned a detached thread per hedge, and large residual-bin scans spawned
//! `P` scoped threads. This module replaces all of those spawns with task
//! submission onto a fixed pool of worker threads (created once, at warm-up),
//! so steady-state serving creates zero threads.
//!
//! Design, in the spirit of the rest of the workspace (dep-free, `std` only):
//!
//! - **Fixed workers, per-worker deques.** `Executor::new(workers)` starts
//!   `workers` threads. Submission round-robins tasks across per-worker
//!   deques; an idle worker first drains its own deque, then steals from
//!   siblings (`steals` counter), then parks on a condvar.
//! - **Claimable tasks.** A task's job lives in a `Mutex<Option<Job>>`. Any
//!   holder of the task can *claim* the job back if no worker has started it
//!   (`TaskHandle::run_now`). This is the no-deadlock guarantee: a caller
//!   waiting on its own tasks can always execute them itself, so a saturated
//!   pool degrades to serial execution instead of a hang.
//! - **Caller-help batches.** [`Executor::run`] submits `n` index-closures,
//!   then the calling thread claims-and-runs whatever the workers have not
//!   picked up yet before blocking. Results are collected in task-index
//!   order, which is what keeps scatter merges and Algorithm-1 bin scans
//!   byte-identical to the old spawn-per-request code.
//! - **Queue-wait visibility.** The executor keeps a log-bucketed histogram
//!   of enqueue→start latency (`queue_p99_us` in [`ExecStats`]) and can feed
//!   each sample to an installed observer so `sapphire-obs` can fold it into
//!   its stage histograms without `core` depending on `obs`.
//!
//! The process-global instance ([`global`]) is sized from
//! `SAPPHIRE_EXEC_WORKERS` (or `max(8, available_parallelism)` — generous,
//! because shard calls block on the wire) and is shared by the router, the
//! bin scanner, and the wire server's pipelined dispatch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A submitted unit of work. The job can be executed by exactly one party:
/// a worker that pops the task, or a caller that claims it back.
struct Task {
    job: Mutex<Option<Job>>,
    enqueued: Instant,
}

/// Handle to a detached task submitted with [`Executor::spawn`] /
/// [`Executor::try_spawn`].
///
/// Dropping the handle does *not* cancel the task; tasks own (`Arc`) all the
/// data they touch, so it is always safe to walk away from one.
pub struct TaskHandle {
    task: Arc<Task>,
    exec: Arc<Inner>,
}

impl TaskHandle {
    /// Claim the job and run it on the current thread if no worker has
    /// started it yet. Returns `true` if this call executed the job.
    ///
    /// This is the progress guarantee for callers blocked on a task's side
    /// effect (e.g. a hedged shard call sending on a channel): when the pool
    /// is saturated, run the work inline instead of waiting forever.
    pub fn run_now(&self) -> bool {
        let job = self.task.job.lock().expect("exec task lock").take();
        match job {
            Some(job) => {
                self.exec.note_start(&self.task, true);
                self.exec.execute_job(job);
                true
            }
            None => false,
        }
    }

    /// `true` once some thread has taken the job (it is running or done).
    pub fn started(&self) -> bool {
        self.task.job.lock().expect("exec task lock").is_none()
    }
}

/// Parked-worker bookkeeping, guarded by `Inner::park`.
struct Park {
    idle: usize,
    shutdown: bool,
}

/// Log-bucketed latency histogram (power-of-two microsecond buckets), same
/// shape as the `sapphire-obs` stage histograms but private to the executor
/// so `core` stays dependency-free.
struct WaitHisto {
    buckets: [AtomicU64; WaitHisto::BUCKETS],
    max_us: AtomicU64,
}

impl WaitHisto {
    const BUCKETS: usize = 40;

    fn new() -> Self {
        WaitHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }

    fn record(&self, us: u64) {
        let b = (u64::BITS - us.leading_zeros()) as usize; // 0 -> bucket 0
        let b = b.min(Self::BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the q-quantile sample (q in 0..=100).
    fn percentile_us(&self, q: u64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (total * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i - 1]; report the cap.
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }
}

type WaitObserver = Box<dyn Fn(u64) + Send + Sync>;

struct Inner {
    queues: Vec<Mutex<VecDeque<Arc<Task>>>>,
    rr: AtomicUsize,
    /// Tasks sitting in queues (may briefly over-count claimed-back tasks,
    /// which workers discard as empty shells).
    pending: AtomicUsize,
    park: Mutex<Park>,
    cv: Condvar,
    tasks_run: AtomicU64,
    inline_runs: AtomicU64,
    steals: AtomicU64,
    spawns_avoided: AtomicU64,
    panicked: AtomicU64,
    queue_wait: WaitHisto,
    wait_observer: OnceLock<WaitObserver>,
}

impl Inner {
    fn submit(&self, task: Arc<Task>) {
        let q = self.rr.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[q]
            .lock()
            .expect("exec queue lock")
            .push_back(task);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let _park = self.park.lock().expect("exec park lock");
        self.cv.notify_one();
    }

    fn find_task(&self, home: usize) -> Option<(Arc<Task>, bool)> {
        if let Some(t) = self.queues[home]
            .lock()
            .expect("exec queue lock")
            .pop_front()
        {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some((t, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let i = (home + off) % n;
            if let Some(t) = self.queues[i].lock().expect("exec queue lock").pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some((t, true));
            }
        }
        None
    }

    /// Record queue-wait + run counters for a job about to execute.
    fn note_start(&self, task: &Task, inline: bool) {
        let us = task.enqueued.elapsed().as_micros() as u64;
        self.queue_wait.record(us);
        if let Some(obs) = self.wait_observer.get() {
            obs(us);
        }
        if inline {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
        } else {
            self.tasks_run.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run a job, catching panics so a panicking detached task cannot kill a
    /// pool worker. Batch jobs catch their own panics and re-throw them on
    /// the submitting thread, so this outer net only sees detached tasks.
    fn execute_job(&self, job: Job) {
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        loop {
            if let Some((task, stolen)) = self.find_task(idx) {
                let job = task.job.lock().expect("exec task lock").take();
                if let Some(job) = job {
                    if stolen {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    self.note_start(&task, false);
                    self.execute_job(job);
                }
                continue;
            }
            let mut park = self.park.lock().expect("exec park lock");
            if park.shutdown {
                return;
            }
            if self.pending.load(Ordering::SeqCst) > 0 {
                continue; // a task landed between our scan and the lock
            }
            park.idle += 1;
            let mut park = self.cv.wait(park).expect("exec park lock");
            park.idle -= 1;
            if park.shutdown {
                return;
            }
        }
    }
}

/// Point-in-time executor counters, reported by benches and gated by
/// `serve_check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Fixed worker-thread count.
    pub workers: usize,
    /// Jobs executed by pool workers.
    pub tasks_run: u64,
    /// Jobs executed inline by submitters (caller-help / `run_now`).
    pub inline_runs: u64,
    /// Jobs a worker took from a sibling's deque.
    pub steals: u64,
    /// Total jobs submitted — each one a thread spawn the old code paid.
    pub spawns_avoided: u64,
    /// Detached jobs that panicked (batch panics re-throw at the submitter).
    pub panicked: u64,
    /// Enqueue→start latency, p50 (log-bucket upper bound, µs).
    pub queue_p50_us: u64,
    /// Enqueue→start latency, p95.
    pub queue_p95_us: u64,
    /// Enqueue→start latency, p99.
    pub queue_p99_us: u64,
    /// Largest observed enqueue→start latency.
    pub queue_max_us: u64,
}

/// A fixed pool of worker threads executing claimable tasks.
///
/// See the module docs for the design; most code wants [`global`] rather
/// than a private pool.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// `&F` smuggled into a `'static` job. Soundness argument lives in
/// [`Executor::run`]: the pointer is only dereferenced while `run` is still
/// blocked on the batch, so the borrow it shadows is always live.
struct SendPtr<T: ?Sized>(*const T);
unsafe impl<T: ?Sized> Send for SendPtr<T> {}
unsafe impl<T: ?Sized> Sync for SendPtr<T> {}

impl<T: ?Sized> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — with 2021 disjoint capture, `fp.0` would capture the bare
    /// raw pointer, which is not `Send`.
    fn get(&self) -> *const T {
        self.0
    }
}

/// Shared state for one `run` batch: a result slot per task plus a
/// remaining-count the submitter blocks on.
struct Batch<T> {
    slots: Vec<Mutex<Option<std::thread::Result<T>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Executor {
    /// Start a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            rr: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            park: Mutex::new(Park {
                idle: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            tasks_run: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            spawns_avoided: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            queue_wait: WaitHisto::new(),
            wait_observer: OnceLock::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sapphire-exec-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `n` tasks — `f(0)..f(n-1)` — to completion and return their
    /// results **in index order**.
    ///
    /// All `n` tasks are submitted to the pool, then the calling thread
    /// claims-and-runs any the workers have not started (caller-help), so
    /// the batch completes even with zero free workers: the degenerate case
    /// is plain serial execution on the caller, never a deadlock. A panic in
    /// any task is re-thrown here after the whole batch has finished.
    ///
    /// # Soundness
    ///
    /// Jobs capture `&f` as a raw pointer to satisfy the `'static` job type.
    /// This is sound because every job's last action (writing its slot and
    /// decrementing `remaining`) happens before `run` can observe
    /// `remaining == 0` and return — so `f` outlives every dereference.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![f(0)];
        }
        let batch = Arc::new(Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let batch = Arc::clone(&batch);
            let fp = SendPtr(&f as *const F);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // SAFETY: see "Soundness" above — `run` blocks until this
                // job has finished, so the pointee is live.
                let f = unsafe { &*fp.get() };
                let out = catch_unwind(AssertUnwindSafe(|| f(i)));
                *batch.slots[i].lock().expect("exec batch slot") = Some(out);
                let mut rem = batch.remaining.lock().expect("exec batch remaining");
                *rem -= 1;
                if *rem == 0 {
                    batch.done.notify_all();
                }
            });
            // SAFETY: lifetime erasure only — the job borrows `f` (via raw
            // pointer) for strictly less time than `run` blocks (see above),
            // and both trait-object types have identical layout.
            let job: Job = unsafe { std::mem::transmute(job) };
            let task = Arc::new(Task {
                job: Mutex::new(Some(job)),
                enqueued: Instant::now(),
            });
            tasks.push(Arc::clone(&task));
            self.inner.spawns_avoided.fetch_add(1, Ordering::Relaxed);
            self.inner.submit(task);
        }
        // Caller-help: execute whatever the workers have not picked up.
        for task in tasks.iter().rev() {
            let job = task.job.lock().expect("exec task lock").take();
            if let Some(job) = job {
                self.inner.note_start(task, true);
                job();
            }
        }
        let mut rem = batch.remaining.lock().expect("exec batch remaining");
        while *rem != 0 {
            rem = batch.done.wait(rem).expect("exec batch remaining");
        }
        drop(rem);
        let mut out = Vec::with_capacity(n);
        for slot in batch.slots.iter() {
            match slot
                .lock()
                .expect("exec batch slot")
                .take()
                .expect("every batch slot is written before remaining hits 0")
            {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Submit a detached task. It runs on some worker eventually; use the
    /// returned handle's [`TaskHandle::run_now`] to force progress inline if
    /// the caller ends up blocked on the task's side effect.
    pub fn spawn<F>(&self, f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let task = Arc::new(Task {
            job: Mutex::new(Some(Box::new(f) as Job)),
            enqueued: Instant::now(),
        });
        self.inner.spawns_avoided.fetch_add(1, Ordering::Relaxed);
        self.inner.submit(Arc::clone(&task));
        TaskHandle {
            task,
            exec: Arc::clone(&self.inner),
        }
    }

    /// Submit a detached task only if a worker is parked right now;
    /// otherwise hand the closure back. Used where queueing behind a
    /// saturated pool would be worse than running inline (e.g. the wire
    /// server's pipelined dispatch).
    pub fn try_spawn<F>(&self, f: F) -> Result<TaskHandle, F>
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let park = self.inner.park.lock().expect("exec park lock");
            if park.idle == 0 {
                return Err(f);
            }
        }
        Ok(self.spawn(f))
    }

    /// Install the queue-wait observer (e.g. `obs.record(Stage::ExecQueue)`).
    /// First caller wins; returns `false` if one was already installed.
    pub fn set_queue_wait_observer<F>(&self, f: F) -> bool
    where
        F: Fn(u64) + Send + Sync + 'static,
    {
        self.inner.wait_observer.set(Box::new(f)).is_ok()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ExecStats {
        let i = &self.inner;
        ExecStats {
            workers: self.workers.len(),
            tasks_run: i.tasks_run.load(Ordering::Relaxed),
            inline_runs: i.inline_runs.load(Ordering::Relaxed),
            steals: i.steals.load(Ordering::Relaxed),
            spawns_avoided: i.spawns_avoided.load(Ordering::Relaxed),
            panicked: i.panicked.load(Ordering::Relaxed),
            queue_p50_us: i.queue_wait.percentile_us(50),
            queue_p95_us: i.queue_wait.percentile_us(95),
            queue_p99_us: i.queue_wait.percentile_us(99),
            queue_max_us: i.queue_wait.max_us.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut park = self.inner.park.lock().expect("exec park lock");
            park.shutdown = true;
            self.inner.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Default pool size: generous relative to cores because tasks block on
/// wire I/O, not just CPU.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .max(8)
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

/// Size the process-global executor before first use. Returns `false` (and
/// changes nothing) if the global pool already exists.
pub fn configure_global(workers: usize) -> bool {
    GLOBAL.set(Executor::new(workers)).is_ok()
}

/// The process-global executor shared by scatter, hedging, bin scans and
/// the wire server. Sized from `SAPPHIRE_EXEC_WORKERS` if set, else
/// `max(8, available_parallelism)`.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| {
        let workers = std::env::var("SAPPHIRE_EXEC_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_workers);
        Executor::new(workers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn batch_results_come_back_in_index_order() {
        let exec = Executor::new(4);
        let out = exec.run(64, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn batch_of_zero_and_one() {
        let exec = Executor::new(2);
        assert_eq!(exec.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn batch_completes_on_a_single_worker_pool_even_when_nested() {
        // One worker, nested run() from inside a task: caller-help must
        // serialize gracefully instead of deadlocking.
        let exec = Arc::new(Executor::new(1));
        let e2 = Arc::clone(&exec);
        let out = exec.run(4, move |i| {
            let inner: usize = e2.run(3, |j| j + i).into_iter().sum();
            inner
        });
        assert_eq!(out, vec![3, 6, 9, 12]);
    }

    #[test]
    fn batch_panics_propagate_after_the_whole_batch_finishes() {
        let exec = Executor::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&finished);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                f2.fetch_add(1, Ordering::SeqCst);
            })
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn spawned_task_runs_and_handle_reports_started() {
        let exec = Executor::new(2);
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let handle = exec.spawn(move || r2.store(true, Ordering::SeqCst));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !ran.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "spawned task never ran");
            std::thread::yield_now();
        }
        assert!(handle.started());
        assert!(!handle.run_now(), "job already consumed by a worker");
    }

    #[test]
    fn run_now_claims_an_unstarted_task_inline() {
        // Saturate the single worker with a slow task, then verify the
        // caller can reclaim a queued task and run it inline.
        let exec = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let g2 = Arc::clone(&gate);
        let _slow = exec.spawn(move || {
            while !g2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::sleep(Duration::from_millis(20)); // let the worker block
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let queued = exec.spawn(move || r2.store(true, Ordering::SeqCst));
        assert!(queued.run_now(), "caller should claim the queued job");
        assert!(ran.load(Ordering::SeqCst));
        gate.store(true, Ordering::SeqCst);
    }

    #[test]
    fn try_spawn_refuses_when_no_worker_is_idle() {
        let exec = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let g2 = Arc::clone(&gate);
        let _slow = exec.spawn(move || {
            while !g2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let refused = exec.try_spawn(|| {}).is_err();
        assert!(
            refused,
            "pool is saturated; try_spawn must hand the job back"
        );
        gate.store(true, Ordering::SeqCst);
        // After the slow task drains, try_spawn succeeds again.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match exec.try_spawn(|| {}) {
                Ok(_) => break,
                Err(_) => assert!(Instant::now() < deadline, "worker never went idle"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn stats_count_submissions_and_runs() {
        let exec = Executor::new(2);
        let _ = exec.run(16, |i| i);
        let s = exec.stats();
        assert_eq!(s.workers, 2);
        assert!(s.spawns_avoided >= 16);
        assert_eq!(s.tasks_run + s.inline_runs, s.spawns_avoided);
        assert_eq!(s.panicked, 0);
    }

    #[test]
    fn queue_wait_observer_sees_every_start() {
        let exec = Executor::new(2);
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = Arc::clone(&seen);
        assert!(exec.set_queue_wait_observer(move |_us| {
            s2.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(!exec.set_queue_wait_observer(|_| {}), "first observer wins");
        let _ = exec.run(10, |i| i);
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let h = WaitHisto::new();
        for us in [0u64, 1, 3, 9, 100, 1000, 5000] {
            h.record(us);
        }
        let p50 = h.percentile_us(50);
        let p95 = h.percentile_us(95);
        let p99 = h.percentile_us(99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_us.load(Ordering::Relaxed).next_power_of_two());
    }

    #[test]
    fn global_executor_is_shared_and_sized() {
        let g = global();
        assert!(g.workers() >= 1);
        let out = g.run(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }
}
