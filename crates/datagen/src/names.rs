//! Deterministic token pools for the synthetic DBpedia-like dataset.

/// First names for generated people.
pub const FIRST_NAMES: &[&str] = &[
    "John", "Robert", "Mary", "Patricia", "James", "Jennifer", "Michael", "Linda", "William",
    "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Ada", "Alan", "Grace", "Edsger", "Donald", "Barbara", "Niklaus",
    "Margaret", "Dennis", "Ken", "Bjarne", "Guido", "Tim", "Vint", "Radia", "Frances", "Jean",
    "Katherine", "Dorothy", "Annie", "Hedy", "Claude", "Kurt", "Emmy", "Paul", "Leonhard",
    "Carl", "Sofia", "Srinivasa", "Terence", "Maryam", "Ingrid", "Andrew", "Judea", "Geoffrey",
    "Yoshua", "Yann", "Fei-Fei", "Demis", "Cynthia", "Shafi", "Silvio", "Manuel", "Barbara",
];

/// Family names; "Kennedy" and neighbours deliberately present for the
/// Figure 2/4 walkthrough.
pub const LAST_NAMES: &[&str] = &[
    "Kennedy", "Kenneth", "Kent", "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia",
    "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson",
    "Anderson", "Lovelace", "Turing", "Hopper", "Dijkstra", "Knuth", "Wirth", "Hamilton",
    "Ritchie", "Thompson", "Stroustrup", "Rossum", "Berners-Lee", "Cerf", "Perlman", "Allen",
    "Bartik", "Johnson", "Vaughan", "Easley", "Lamarr", "Shannon", "Goedel", "Noether",
    "Erdos", "Euler", "Gauss", "Kovalevskaya", "Ramanujan", "Tao", "Mirzakhani", "Daubechies",
    "Ng", "Pearl", "Hinton", "Bengio", "LeCun", "Li", "Hassabis", "Dwork", "Goldwasser",
    "Micali", "Blum", "Liskov", "Thatcher", "Goldman", "Kerouac", "Eastwood", "Spielberg",
];

/// City-like place names.
pub const CITY_NAMES: &[&str] = &[
    "Springfield", "Riverton", "Lakeside", "Hillcrest", "Fairview", "Georgetown", "Salem",
    "Clinton", "Madison", "Arlington", "Ashland", "Auburn", "Bristol", "Burlington", "Camden",
    "Chester", "Clayton", "Dayton", "Dover", "Dublin", "Florence", "Franklin", "Greenville",
    "Hamilton", "Hudson", "Jackson", "Kingston", "Lancaster", "Lebanon", "Lexington",
    "Manchester", "Marion", "Milford", "Milton", "Monroe", "Newport", "Oakland", "Oxford",
    "Princeton", "Quincy", "Richmond", "Rochester", "Rome", "Sheffield", "Troy", "Vienna",
    "Waverly", "Winchester", "Windsor", "York",
];

/// Country-like names.
pub const COUNTRY_NAMES: &[&str] = &[
    "Avaloria", "Borduria", "Carpania", "Drovania", "Elbonia", "Freedonia", "Grand Fenwick",
    "Havenland", "Illyria", "Jovania", "Krakozhia", "Latveria", "Molvania", "Novistrana",
    "Osterlich", "Pottsylvania", "Qumar", "Ruritania", "Sylvania", "Tomainia", "Urkesh",
    "Vulgaria", "Wadiya", "Zubrowka",
];

/// Book/film title fragments.
pub const TITLE_HEADS: &[&str] = &[
    "The Long", "A Brief", "The Last", "The First", "Beyond the", "Under the", "Across the",
    "The Silent", "The Hidden", "Return of the", "Shadow of the", "The Glass", "The Iron",
    "The Paper", "Night of the", "Day of the", "The Burning", "The Frozen", "The Broken",
    "The Endless",
];

/// Book/film title tails.
pub const TITLE_TAILS: &[&str] = &[
    "Road", "River", "Mountain", "City", "Garden", "Harbor", "Forest", "Desert", "Island",
    "Bridge", "Tower", "Door", "Window", "Mirror", "Clock", "Letter", "Journey", "Summer",
    "Winter", "Horizon",
];

/// University name stems.
pub const UNIVERSITY_STEMS: &[&str] = &[
    "Northfield", "Eastbrook", "Westvale", "Southgate", "Midland", "Harborview", "Clearwater",
    "Stonebridge", "Silverlake", "Goldcrest", "Redwood", "Bluefield", "Greenhill", "Whitmore",
    "Blackstone", "Grayson", "Ashford", "Brookhaven", "Caldwell", "Dunmore",
];

/// Company name stems.
pub const COMPANY_STEMS: &[&str] = &[
    "Acme", "Globex", "Initech", "Umbra", "Vortex", "Zenith", "Apex", "Nimbus", "Quasar",
    "Stellar", "Orion", "Pinnacle", "Vertex", "Catalyst", "Momentum", "Synergy", "Paragon",
    "Meridian", "Solstice", "Equinox",
];

/// Industries for company entities (aerospace + medicine feed difficult Q8).
pub const INDUSTRIES: &[&str] = &[
    "Aerospace", "Medicine", "Software", "Finance", "Agriculture", "Energy", "Retail",
    "Telecommunications", "Transportation", "Entertainment",
];

/// Musical instruments (medium question 1).
pub const INSTRUMENTS: &[&str] = &[
    "Guitar", "Piano", "Violin", "Cello", "Drums", "Flute", "Trumpet", "Saxophone", "Harp",
    "Banjo", "Mandolin", "Accordion",
];

/// Time zones.
pub const TIME_ZONES: &[&str] = &[
    "UTC-08:00", "UTC-07:00", "UTC-06:00", "UTC-05:00", "UTC", "UTC+01:00", "UTC+02:00",
    "UTC+05:30", "UTC+08:00", "UTC+10:00",
];

/// Currencies.
pub const CURRENCIES: &[&str] = &[
    "Dollar", "Euro", "Pound", "Franc", "Krona", "Koruna", "Zloty", "Forint", "Leu", "Yen",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_contain_anchors() {
        assert!(LAST_NAMES.contains(&"Kennedy"));
        assert!(LAST_NAMES.contains(&"Kerouac"));
        assert!(INDUSTRIES.contains(&"Aerospace"));
        assert!(INDUSTRIES.contains(&"Medicine"));
        for pool in [FIRST_NAMES, LAST_NAMES, CITY_NAMES, COUNTRY_NAMES, TITLE_HEADS, TITLE_TAILS] {
            assert!(pool.len() >= 20);
        }
    }
}
