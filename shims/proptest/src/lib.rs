//! Offline API-subset shim for the `proptest` crate.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings, `prop_assert!` / `prop_assert_eq!`, string
//! strategies written as character-class regexes (`"[a-z]{1,8}"`, `".{0,12}"`),
//! integer-range strategies, tuples of strategies, and
//! [`collection::vec`]. Each property runs a fixed number of deterministic
//! cases (no shrinking): failures print the generated inputs via the
//! panic message instead.

/// Number of cases generated per property.
pub const CASES: u64 = 64;

/// Deterministic case-level random source (SplitMix64).
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seed from a test identifier (stable across runs).
    pub fn new(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Gen { state: h }
    }

    /// Re-seed for one numbered case so cases are independent.
    pub fn start_case(&mut self, case: u64) {
        self.state = self
            .state
            .wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15))
            | 1;
    }

    /// Next 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.bits() % n
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

/// `&str` strategies are interpreted as simplified regexes: a single `.` or
/// `[class]` atom followed by a `{lo,hi}` quantifier (e.g. `"[a-c]{0,8}"`,
/// `".{0,12}"`, `"[ -~]{0,20}"`). Classes support literal chars and `a-z`
/// ranges; `.` means printable ASCII.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, gen: &mut Gen) -> String {
        let (chars, lo, hi) = parse_pattern(self);
        let len = lo + gen.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[gen.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut it = pattern.chars().peekable();
    let mut class: Vec<char> = Vec::new();
    match it.next() {
        Some('.') => class.extend((0x20u8..0x7f).map(char::from)),
        Some('[') => {
            let mut inner: Vec<char> = Vec::new();
            for c in it.by_ref() {
                if c == ']' {
                    break;
                }
                inner.push(c);
            }
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    let (a, b) = (inner[i] as u32, inner[i + 2] as u32);
                    class.extend((a..=b).filter_map(char::from_u32));
                    i += 3;
                } else {
                    class.push(inner[i]);
                    i += 1;
                }
            }
        }
        other => panic!("unsupported shim pattern {pattern:?} (starts with {other:?})"),
    }
    assert!(!class.is_empty(), "empty character class in {pattern:?}");
    // Quantifier {lo,hi}; a bare atom means exactly one char.
    let rest: String = it.collect();
    if rest.is_empty() {
        return (class, 1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported shim quantifier in {pattern:?}"));
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    (class, lo, hi)
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
    )+};
}

impl_int_strategy!(i32, i64, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(gen),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + gen.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Everything a `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Define property tests. Each function body runs [`CASES`] times with
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut gen = $crate::Gen::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::CASES {
                    gen.start_case(case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut gen);)+
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(message) = result {
                        panic!(
                            "property {} failed on case {case}: {message}\ninputs: {:?}",
                            stringify!($name),
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )+
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_parsing() {
        let (chars, lo, hi) = super::parse_pattern("[a-c]{0,8}");
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (0, 8));
        let (chars, _, _) = super::parse_pattern("[ -~]{0,20}");
        assert_eq!(chars.len(), 95);
        let (chars, lo, hi) = super::parse_pattern(".{0,12}");
        assert_eq!(chars.len(), 95);
        assert_eq!((lo, hi), (0, 12));
    }

    proptest! {
        #[test]
        fn generated_strings_respect_pattern(s in "[a-d]{2,10}", n in 1usize..5) {
            prop_assert!(s.len() >= 2 && s.len() <= 10, "bad length {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_bounds(v in collection::vec("[a-b]{1,2}", 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|s| s.is_empty()).count(), 0);
        }
    }
}
