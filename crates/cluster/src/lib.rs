//! # sapphire-cluster
//!
//! The scale-out tier of the Sapphire reproduction: a data-partitioned,
//! multi-tier serving topology over the single-box
//! [`SapphireServer`](sapphire_server::SapphireServer).
//!
//! The paper's Sapphire serves one dataset from one process; the ROADMAP's
//! north star is millions of users, which means the dataset — and the
//! Predictive User Model built over it — must be partitioned across
//! machines. This crate adds exactly that, in three layers:
//!
//! * **Partitioning** ([`sapphire_rdf::partition`]) — the dataset is split
//!   hash-by-subject (each entity's star is co-located) with a
//!   schema-replicated slice, so every shard can answer structural probes
//!   locally.
//! * **Topology** ([`topology::Cluster`]) — `shards × replicas` servers;
//!   each shard's replicas share one shard-local PUM (built by the standard
//!   §5 initialization over the shard slice) but own their admission gates,
//!   caches, and coalescers.
//! * **Routing + merge** ([`router::ClusterRouter`], [`merge`]) — the edge
//!   tier scatters QCM/QSM/raw requests over one replica per shard
//!   (load-aware, hedged, typed bounded retry on
//!   [`Overloaded`](sapphire_server::ServerError::Overloaded)) and merges
//!   the ranked per-shard lists with deterministic **score-then-key top-k
//!   merges**, so cluster answers are reproducible and byte-comparable
//!   against a single-server oracle on the same data.
//!
//! Two cluster answers are exact by construction: QCM completions (the
//! per-shard caches partition the literal corpus) and subject-star query
//! answers (co-located by the partitioner; patterns spanning shards fall
//! back to a federated bound join over the shard endpoints). One is
//! best-effort: structure relaxation runs shard-locally, so Steiner trees
//! crossing shard boundaries are found only via the schema slice or not at
//! all — cross-shard relaxation is future work and documented as such.
//!
//! ```no_run
//! use std::sync::Arc;
//! use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
//! use sapphire_core::SapphireConfig;
//! use sapphire_server::ServerConfig;
//! use sapphire_text::Lexicon;
//!
//! let graph = sapphire_datagen::generate(sapphire_datagen::DatasetConfig::tiny(42));
//! let cluster = Cluster::build(
//!     "edge", &graph, 4, 2,
//!     &Lexicon::dbpedia_default(), &SapphireConfig::default(), &ServerConfig::default(),
//! ).unwrap();
//! let router = ClusterRouter::new(cluster, ClusterConfig::default());
//! let completions = router.complete("alice", "Kenn").unwrap();
//! # let _ = completions;
//! ```

#![warn(missing_docs)]

pub mod merge;
pub mod router;
pub mod topology;

pub use router::{
    ClusterCompletion, ClusterConfig, ClusterError, ClusterMetrics, ClusterRouter, ClusterRun,
    ClusterRunPayload, DegradePolicy,
};
pub use topology::Cluster;

// The router is shared across request threads behind an `Arc` and scatters
// with scoped threads; everything it hands around must stay thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ClusterRouter>();
    assert_send_sync::<ClusterError>();
    assert_send_sync::<Cluster>();
};
