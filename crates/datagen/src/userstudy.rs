//! The simulated user study (§7.1, Figures 8–11).
//!
//! The paper's study put 16 human participants (CS background, no RDF/SPARQL
//! experience) in front of Sapphire and QAKiS. Humans are the one component
//! we cannot ship, so this module substitutes a *stochastic participant
//! model* that drives the **real** Sapphire pipeline (session → QCM → run →
//! QSM → accept suggestion): each participant knows only the question's
//! keywords, makes difficulty- and skill-dependent mistakes (misspelled
//! literals, paraphrased predicates, flattened structure), and relies on
//! Sapphire's suggestions — or gives up after a few attempts, like the
//! paper's participants did (3–5 attempts).
//!
//! Time is modeled with fixed per-interaction costs (type a term, click Run,
//! read suggestions, …), making Figure 11's *shape* reproducible without
//! wall-clock humans.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sapphire_core::pum::PredictiveUserModel;
use sapphire_core::session::Session;
use sapphire_sparql::Solutions;

use crate::workload::{grade, Difficulty, Grade, Question, SessionScript};

/// A natural-language QA system, as seen by the study harness (QAKiS in the
/// paper; implemented in `sapphire-baselines`).
pub trait NlQaSystem {
    /// System name.
    fn name(&self) -> &str;
    /// Answer a natural-language question; empty solutions = no answer.
    fn answer(&self, question: &str) -> Solutions;
}

/// Interaction-cost model (seconds per action).
#[derive(Debug, Clone, Copy)]
pub struct TimeModel {
    /// Type a term into a box and browse QCM completions.
    pub type_term: f64,
    /// Click Run, wait, scan the answer table.
    pub run: f64,
    /// Read through the QSM's suggestions.
    pub review_suggestions: f64,
    /// Accept a suggestion (answers are prefetched).
    pub accept_suggestion: f64,
    /// Diagnose and manually fix a mistake.
    pub manual_fix: f64,
    /// Add a modifier (filter/order/limit).
    pub modifier: f64,
    /// Type a natural-language question into a QA system.
    pub nl_type: f64,
    /// Read a QA system's answer.
    pub nl_read: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            type_term: 6.0,
            run: 4.0,
            review_suggestions: 10.0,
            accept_suggestion: 3.0,
            manual_fix: 8.0,
            modifier: 6.0,
            nl_type: 15.0,
            nl_read: 6.0,
        }
    }
}

/// Study parameters (defaults = the paper's setup).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of participants (16 in the paper).
    pub participants: usize,
    /// Questions per participant per difficulty (4 easy, 3 medium,
    /// 3 difficult in the paper; the first easy one is a dropped warm-up).
    pub easy_per: usize,
    /// See [`easy_per`](Self::easy_per).
    pub medium_per: usize,
    /// See [`easy_per`](Self::easy_per).
    pub difficult_per: usize,
    /// Interaction costs.
    pub time: TimeModel,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x5A99,
            participants: 16,
            easy_per: 4,
            medium_per: 3,
            difficult_per: 3,
            time: TimeModel::default(),
        }
    }
}

/// One participant × question measurement.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Question id.
    pub question_id: String,
    /// Participant index.
    pub participant: usize,
    /// Difficulty class.
    pub difficulty: Difficulty,
    /// Final grade against the gold answers.
    pub grade: Grade,
    /// Number of Run clicks.
    pub attempts: u32,
    /// Modeled time spent (seconds).
    pub time_seconds: f64,
    /// The participant accepted an alternative-predicate suggestion.
    pub used_alt_predicate: bool,
    /// The participant accepted an alternative-literal suggestion.
    pub used_alt_literal: bool,
    /// The participant accepted a structure relaxation.
    pub used_relaxation: bool,
}

impl Outcome {
    /// Success = fully correct.
    pub fn success(&self) -> bool {
        self.grade == Grade::Correct
    }

    /// Did the participant use any QSM suggestion?
    pub fn used_any_suggestion(&self) -> bool {
        self.used_alt_predicate || self.used_alt_literal || self.used_relaxation
    }
}

/// The full study result for one system.
#[derive(Debug, Clone, Default)]
pub struct SystemResults {
    /// System name.
    pub system: String,
    /// All outcomes (warm-ups already dropped).
    pub outcomes: Vec<Outcome>,
}

impl SystemResults {
    /// Success rate (%) for a difficulty, averaged over outcomes (Figure 8).
    pub fn success_rate(&self, d: Difficulty) -> f64 {
        let of_d: Vec<&Outcome> = self.outcomes.iter().filter(|o| o.difficulty == d).collect();
        if of_d.is_empty() {
            return 0.0;
        }
        100.0 * of_d.iter().filter(|o| o.success()).count() as f64 / of_d.len() as f64
    }

    /// 95% confidence interval half-width for the per-participant success
    /// rates at a difficulty (the error bars of Figure 8).
    pub fn success_ci(&self, d: Difficulty, participants: usize) -> f64 {
        let mut rates = Vec::new();
        for p in 0..participants {
            let of: Vec<&Outcome> = self
                .outcomes
                .iter()
                .filter(|o| o.participant == p && o.difficulty == d)
                .collect();
            if !of.is_empty() {
                rates.push(
                    100.0 * of.iter().filter(|o| o.success()).count() as f64 / of.len() as f64,
                );
            }
        }
        if rates.len() < 2 {
            return 0.0;
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let var =
            rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (rates.len() - 1) as f64;
        1.96 * (var / rates.len() as f64).sqrt()
    }

    /// Percentage of distinct questions answered by ≥1 participant (Figure 9).
    pub fn pct_answered_by_any(&self, d: Difficulty) -> f64 {
        use std::collections::HashSet;
        let asked: HashSet<&str> = self
            .outcomes
            .iter()
            .filter(|o| o.difficulty == d)
            .map(|o| o.question_id.as_str())
            .collect();
        if asked.is_empty() {
            return 0.0;
        }
        let answered: HashSet<&str> = self
            .outcomes
            .iter()
            .filter(|o| o.difficulty == d && o.success())
            .map(|o| o.question_id.as_str())
            .collect();
        100.0 * answered.len() as f64 / asked.len() as f64
    }

    /// Average attempts before finding an answer, over successful outcomes
    /// (Figure 10).
    pub fn avg_attempts(&self, d: Difficulty) -> f64 {
        let ok: Vec<&Outcome> = self
            .outcomes
            .iter()
            .filter(|o| o.difficulty == d && o.success())
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().map(|o| f64::from(o.attempts)).sum::<f64>() / ok.len() as f64
    }

    /// Average time (minutes) on successfully answered questions (Figure 11).
    pub fn avg_time_minutes(&self, d: Difficulty) -> f64 {
        let ok: Vec<&Outcome> = self
            .outcomes
            .iter()
            .filter(|o| o.difficulty == d && o.success())
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().map(|o| o.time_seconds).sum::<f64>() / ok.len() as f64 / 60.0
    }

    /// Fraction (%) of questions where a given suggestion kind was used
    /// (§7.3.2 usage breakdown).
    pub fn suggestion_usage(&self) -> (f64, f64, f64, f64) {
        let n = self.outcomes.len().max(1) as f64;
        let pred = self
            .outcomes
            .iter()
            .filter(|o| o.used_alt_predicate)
            .count() as f64;
        let lit = self.outcomes.iter().filter(|o| o.used_alt_literal).count() as f64;
        let relax = self.outcomes.iter().filter(|o| o.used_relaxation).count() as f64;
        let any = self
            .outcomes
            .iter()
            .filter(|o| o.used_any_suggestion())
            .count() as f64;
        (
            100.0 * pred / n,
            100.0 * lit / n,
            100.0 * relax / n,
            100.0 * any / n,
        )
    }
}

/// Run the study for Sapphire and one NL QA baseline on the same question
/// assignment (alternating which system goes first, per §7.1.1 — order only
/// affects the time model here, so it is recorded but has no carry-over).
pub fn run_study(
    pum: &PredictiveUserModel,
    qa: &dyn NlQaSystem,
    questions: &[Question],
    gold: &dyn Fn(&Question) -> Vec<String>,
    config: &StudyConfig,
) -> (SystemResults, SystemResults) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sapphire = SystemResults {
        system: "Sapphire".into(),
        outcomes: Vec::new(),
    };
    let mut qakis = SystemResults {
        system: qa.name().into(),
        outcomes: Vec::new(),
    };

    let easy: Vec<&Question> = questions
        .iter()
        .filter(|q| q.difficulty == Difficulty::Easy)
        .collect();
    let medium: Vec<&Question> = questions
        .iter()
        .filter(|q| q.difficulty == Difficulty::Medium)
        .collect();
    let difficult: Vec<&Question> = questions
        .iter()
        .filter(|q| q.difficulty == Difficulty::Difficult)
        .collect();

    for p in 0..config.participants {
        // Participant skill in [0.55, 1.0): scales error probabilities and
        // patience.
        let skill = 0.55 + 0.45 * rng.gen::<f64>();
        let max_attempts = 3 + (skill * 2.9) as u32; // 3..=5, like the paper

        let mut assigned: Vec<&Question> = Vec::new();
        for (pool, n) in [
            (&easy, config.easy_per),
            (&medium, config.medium_per),
            (&difficult, config.difficult_per),
        ] {
            for i in 0..n {
                assigned.push(pool[(p * 7 + i * 3) % pool.len()]);
            }
        }
        // The first (easy) question is a warm-up whose data is dropped.
        for (qi, question) in assigned.iter().enumerate() {
            let g = gold(question);
            let s_out =
                simulate_sapphire(pum, question, &g, p, skill, max_attempts, config, &mut rng);
            let q_out = simulate_qa(qa, question, &g, p, max_attempts, config, &mut rng);
            if qi == 0 {
                continue; // warm-up
            }
            sapphire.outcomes.push(s_out);
            qakis.outcomes.push(q_out);
        }
    }
    (sapphire, qakis)
}

/// Drive the real Sapphire session as a noisy participant.
#[allow(clippy::too_many_arguments)]
fn simulate_sapphire(
    pum: &PredictiveUserModel,
    question: &Question,
    gold: &[String],
    participant: usize,
    skill: f64,
    max_attempts: u32,
    config: &StudyConfig,
    rng: &mut StdRng,
) -> Outcome {
    let t = &config.time;
    let mut time = 0.0;
    let mut outcome = Outcome {
        question_id: question.id.clone(),
        participant,
        difficulty: question.difficulty,
        grade: Grade::Wrong,
        attempts: 0,
        time_seconds: 0.0,
        used_alt_predicate: false,
        used_alt_literal: false,
        used_relaxation: false,
    };

    // Error probabilities grow with difficulty, shrink with skill.
    let (p_typo, p_flatten, p_confuse) = match question.difficulty {
        Difficulty::Easy => (0.35 * (1.3 - skill), 0.0, 0.3 * (1.3 - skill)),
        Difficulty::Medium => (
            0.5 * (1.3 - skill),
            0.25 * (1.3 - skill),
            0.4 * (1.3 - skill),
        ),
        Difficulty::Difficult => (
            0.55 * (1.3 - skill),
            0.65 * (1.3 - skill),
            0.4 * (1.3 - skill),
        ),
    };

    // Build the participant's (possibly flawed) view of the script.
    let mut script = question.script.clone();
    let flattened = rng.gen::<f64>() < p_flatten;
    if flattened {
        if let Some(f) = flatten(&script) {
            script = f;
        }
    }
    // Confusable-predicate mistake: the user picks the wrong auto-complete
    // entry among near-identical surface forms ("birth date" vs "birth
    // place") — the error class the QSM's alternative *predicates* fix.
    let mut confused_row = None;
    if rng.gen::<f64>() < p_confuse {
        let candidates: Vec<usize> = script
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| confusable(&r.predicate).is_some())
            .map(|(i, _)| i)
            .collect();
        if !candidates.is_empty() {
            let row = candidates[rng.gen_range(0..candidates.len())];
            let wrong = confusable(&script.rows[row].predicate).unwrap();
            script.rows[row].predicate = wrong.to_string();
            confused_row = Some(row);
        }
    }
    let typo = rng.gen::<f64>() < p_typo;
    let mut typo_row = None;
    if typo {
        // Misspell one literal object (keyword that is not a variable).
        let candidates: Vec<usize> = script
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.object.starts_with('?') && r.object.len() > 3)
            .map(|(i, _)| i)
            .collect();
        if let Some(&row) = candidates.get(
            rng.gen_range(0..candidates.len().max(1))
                .min(candidates.len().saturating_sub(1)),
        ) {
            script.rows[row].object = misspell(&script.rows[row].object, rng);
            typo_row = Some(row);
        }
    }

    let mut session = Session::new(pum);
    for (i, row) in script.rows.iter().enumerate() {
        session.set_row(i, row.clone());
        time += t.type_term * 3.0 * (1.3 - skill).max(0.7);
    }
    session.modifiers.distinct = true;
    session.modifiers.order_by = script.order_by.clone();
    session.modifiers.limit = script.limit;
    session.modifiers.count = script.count;
    session.modifiers.filters = script.filters.clone();
    if script.order_by.is_some() || !script.filters.is_empty() || script.limit.is_some() {
        time += t.modifier;
    }

    while outcome.attempts < max_attempts {
        let run = match session.run() {
            Ok(r) => r,
            Err(_) => {
                // Validation failure: the user re-reads the boxes and repairs
                // the flaws using QCM completions (costs time, no Run click).
                time += t.manual_fix;
                restore_ideal(&mut session, &question.script);
                continue;
            }
        };
        outcome.attempts += 1;
        time += t.run;
        let g = grade(run.answers.solutions(), gold);
        if g == Grade::Correct {
            outcome.grade = g;
            break;
        }
        // Consult the QSM.
        time += t.review_suggestions;
        let mut advanced = false;
        // Prefer the suggestion whose prefetched answers grade best.
        let mut best: Option<(Grade, usize, bool)> = None; // (grade, idx, is_alt)
        for (i, alt) in run.suggestions.alternatives.iter().enumerate() {
            let ag = grade(&alt.answers, gold);
            if ag != Grade::Wrong && best.is_none_or(|(bg, _, _)| better(ag, bg)) {
                best = Some((ag, i, true));
            }
        }
        for (i, rel) in run.suggestions.relaxations.iter().enumerate() {
            let rg = grade(&rel.answers, gold);
            if rg != Grade::Wrong && best.is_none_or(|(bg, _, _)| better(rg, bg)) {
                best = Some((rg, i, false));
            }
        }
        if let Some((g, idx, is_alt)) = best {
            time += t.accept_suggestion;
            if is_alt {
                let alt = run.suggestions.alternatives[idx].clone();
                match alt.position {
                    sapphire_core::qsm::AlteredPosition::Predicate => {
                        outcome.used_alt_predicate = true
                    }
                    sapphire_core::qsm::AlteredPosition::Object => outcome.used_alt_literal = true,
                }
                let table = session.apply_alternative(&alt);
                // Accepting re-runs the updated query in the paper's UI.
                outcome.attempts += 1;
                let g2 = grade(table.solutions(), gold);
                if g2 == Grade::Correct {
                    outcome.grade = g2;
                    break;
                }
                outcome.grade = pick_worse_ok(outcome.grade, g2);
                advanced = true;
            } else {
                let rel = run.suggestions.relaxations[idx].clone();
                outcome.used_relaxation = true;
                let table = session.apply_relaxation(&rel);
                outcome.attempts += 1;
                let g2 = grade(table.solutions(), gold);
                if g2 == Grade::Correct {
                    outcome.grade = g2;
                    break;
                }
                outcome.grade = pick_worse_ok(outcome.grade, g2);
                advanced = true;
            }
            let _ = g;
        }
        if !advanced {
            // No useful suggestion: the participant hunts for their own
            // mistake. Higher skill = more likely to spot it.
            time += t.manual_fix;
            if rng.gen::<f64>() < 0.35 + 0.6 * skill {
                if let Some(row) = typo_row.take() {
                    if let Some(ideal) = question.script.rows.get(row) {
                        session.set_row(row, ideal.clone());
                        continue;
                    }
                }
                if let Some(row) = confused_row.take() {
                    if let Some(ideal) = question.script.rows.get(row) {
                        session.set_row(row, ideal.clone());
                        continue;
                    }
                }
                restore_ideal(&mut session, &question.script);
            }
        }
    }
    outcome.time_seconds = time;
    outcome
}

fn better(a: Grade, b: Grade) -> bool {
    rank(a) > rank(b)
}

fn rank(g: Grade) -> u8 {
    match g {
        Grade::Correct => 2,
        Grade::Partial => 1,
        Grade::Wrong => 0,
    }
}

fn pick_worse_ok(current: Grade, new: Grade) -> Grade {
    if rank(new) > rank(current) {
        new
    } else {
        current
    }
}

fn restore_ideal(session: &mut Session<'_>, script: &SessionScript) {
    session.triples.clear();
    for (i, row) in script.rows.iter().enumerate() {
        session.set_row(i, row.clone());
    }
    session.modifiers.order_by = script.order_by.clone();
    session.modifiers.limit = script.limit;
    session.modifiers.count = script.count;
    session.modifiers.filters = script.filters.clone();
}

/// Simulate a participant using a natural-language QA system: type the
/// question, read the answer, rephrase up to the attempt budget.
fn simulate_qa(
    qa: &dyn NlQaSystem,
    question: &Question,
    gold: &[String],
    participant: usize,
    max_attempts: u32,
    config: &StudyConfig,
    rng: &mut StdRng,
) -> Outcome {
    let t = &config.time;
    let mut outcome = Outcome {
        question_id: question.id.clone(),
        participant,
        difficulty: question.difficulty,
        grade: Grade::Wrong,
        attempts: 0,
        time_seconds: 0.0,
        used_alt_predicate: false,
        used_alt_literal: false,
        used_relaxation: false,
    };
    let max_attempts = max_attempts.min(4); // "3 to 4 attempts" for QAKiS
    let mut phrasings: Vec<&String> = question.paraphrases.iter().collect();
    // Participants phrase questions in an individual order.
    if phrasings.len() > 1 {
        let rot = rng.gen_range(0..phrasings.len());
        phrasings.rotate_left(rot);
    }
    for phrasing in phrasings.into_iter().take(max_attempts as usize) {
        outcome.attempts += 1;
        outcome.time_seconds += t.nl_type + t.nl_read;
        let answers = qa.answer(phrasing);
        let g = grade(&answers, gold);
        if rank(g) > rank(outcome.grade) {
            outcome.grade = g;
        }
        if g == Grade::Correct {
            break;
        }
    }
    outcome
}

/// Collapse entity-hop structure: if a row's object keyword hangs off an
/// intermediate variable (`?b author ?a . ?a name "Jack Kerouac"`), an
/// RDF-naïve user connects the literal directly (`?b author "Jack Kerouac"`)
/// — the exact mistake Figure 6 relaxes.
pub fn flatten(script: &SessionScript) -> Option<SessionScript> {
    let mut rows = script.rows.clone();
    let mut changed = false;
    loop {
        // Find a "leaf" row (?v, pred, keyword-literal) whose subject var is
        // the object of another row.
        let leaf = rows.iter().enumerate().find_map(|(i, r)| {
            if r.object.starts_with('?') || !r.subject.starts_with('?') {
                return None;
            }
            let var = r.subject.clone();
            let parent = rows
                .iter()
                .position(|other| other.object == var && !std::ptr::eq(other, r))?;
            Some((i, parent))
        });
        let Some((leaf_idx, parent_idx)) = leaf else {
            break;
        };
        let keyword = rows[leaf_idx].object.clone();
        rows[parent_idx].object = keyword;
        rows.remove(leaf_idx);
        changed = true;
    }
    if !changed || rows.is_empty() {
        return None;
    }
    Some(SessionScript {
        rows,
        order_by: script.order_by.clone(),
        limit: script.limit,
        count: script.count,
        filters: Vec::new(), // filter vars may have vanished
    })
}

/// Keyword pairs with near-identical surface forms that naive users pick
/// wrongly from auto-complete lists. JW similarity between each pair clears
/// θ = 0.7, so the QSM's Algorithm 2 can suggest the correction.
pub fn confusable(predicate_keyword: &str) -> Option<&'static str> {
    match predicate_keyword {
        "birth place" => Some("birth date"),
        "birth date" => Some("birth place"),
        "death place" => Some("death date"),
        "country" => Some("currency"),
        "currency" => Some("country"),
        _ => None,
    }
}

/// A keyboard-plausible misspelling (the "Kennedys" of Figure 2).
pub fn misspell(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    match rng.gen_range(0..3) {
        0 => format!("{word}s"),
        1 if chars.len() > 4 => {
            // Drop an interior character.
            let pos = rng.gen_range(1..chars.len() - 1);
            chars
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, c)| c)
                .collect()
        }
        _ => {
            // Double an interior character.
            let pos = rng.gen_range(1..chars.len().max(2));
            let mut out: Vec<char> = chars.clone();
            out.insert(pos.min(chars.len()), chars[pos.min(chars.len() - 1)]);
            out.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn flatten_reproduces_figure_6_shape() {
        let d3 = workload::appendix_b()
            .into_iter()
            .find(|q| q.id == "D3")
            .unwrap();
        let flat = flatten(&d3.script).expect("D3 flattens");
        assert_eq!(flat.rows.len(), 2, "{:?}", flat.rows);
        assert!(flat.rows.iter().any(|r| r.object == "Jack Kerouac"));
        assert!(flat.rows.iter().any(|r| r.object == "Viking Press"));
    }

    #[test]
    fn flatten_returns_none_for_flat_scripts() {
        let m4 = workload::appendix_b()
            .into_iter()
            .find(|q| q.id == "M4")
            .unwrap();
        assert!(flatten(&m4.script).is_none());
    }

    #[test]
    fn misspell_changes_the_word() {
        let mut rng = StdRng::seed_from_u64(5);
        for w in ["Kennedy", "Viking Press", "Charmed"] {
            for _ in 0..10 {
                assert_ne!(misspell(w, &mut rng), w);
            }
        }
    }

    #[test]
    fn time_model_defaults_are_positive() {
        let t = TimeModel::default();
        for v in [
            t.type_term,
            t.run,
            t.review_suggestions,
            t.accept_suggestion,
            t.manual_fix,
            t.modifier,
            t.nl_type,
            t.nl_read,
        ] {
            assert!(v > 0.0);
        }
        // Sapphire interactions cost more than a single NL exchange — the
        // Figure 11 premise.
        assert!(t.type_term * 2.0 + t.run > t.nl_type / 2.0);
    }
}
