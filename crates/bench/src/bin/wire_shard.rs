//! One shard replica as a standalone OS process, serving its slice over a
//! [`WireServer`] on an ephemeral loopback port.
//!
//! This is the worker half of `serve_load --cluster --wire --processes`:
//! the parent spawns one `wire_shard` per replica. Each either **loads its
//! shard slice from a snapshot** (`--snapshot <path>`, one sequential read
//! of the columnar [`sapphire_rdf::snapshot`] format) or **regenerates** the
//! (deterministic, fixed-seed) dataset and re-partitions it locally with the
//! same subject-hash partitioner the in-process `Cluster::build` uses,
//! keeping only its own shard's slice. Either way it stands a
//! [`SapphireServer`] behind a wire listener; the two bring-up paths produce
//! byte-identical shard graphs, which the parent's oracle verifies.
//!
//! Bring-up handshake: one line on stdout —
//!
//! ```text
//! WIRE_READY 127.0.0.1:PORT bringup=snapshot|generate data_us=12345
//! ```
//!
//! — where `bringup` says how the shard got its data and `data_us` is the
//! wall time of that phase (snapshot read+decode, or generate+partition).
//! The process then serves until its **stdin reaches EOF** (the parent drops
//! its pipe end), which triggers a graceful drain. Everything else (init
//! progress) goes to stderr so the handshake line stays machine-parseable.
//!
//! Usage: `wire_shard --scale tiny --shards 2 --shard 0 --replica 1
//! [--snapshot path/to/tiny-s0of2.snap]`
//!
//! A `--snapshot` that fails to load (missing, truncated, corrupt, wrong
//! version) is reported on stderr and falls back to generate — a stale
//! snapshot directory degrades bring-up speed, never availability.
//!
//! [`WireServer`]: sapphire_wire::WireServer
//! [`SapphireServer`]: sapphire_server::SapphireServer

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

use sapphire_bench::serve::{arg_string, arg_usize};
use sapphire_bench::{dataset_for, experiment_config};
use sapphire_core::{InitMode, PredictiveUserModel};
use sapphire_datagen::generate;
use sapphire_endpoint::EndpointLimits;
use sapphire_rdf::{snapshot, Graph, Partitioner};
use sapphire_server::{SapphireServer, ServerConfig, ShardService};
use sapphire_text::Lexicon;
use sapphire_wire::{WireServer, WireServerConfig};

fn main() {
    let scale = arg_string("--scale").unwrap_or_else(|| "tiny".to_string());
    let shards = arg_usize("--shards", 2);
    let shard = arg_usize("--shard", 0);
    let replica = arg_usize("--replica", 0);
    let snapshot_path = arg_string("--snapshot");
    assert!(shards >= 1, "--shards must be at least 1");
    assert!(
        shard < shards,
        "--shard {shard} out of range for {shards} shards"
    );

    let data_clock = Instant::now();
    let loaded: Option<Graph> =
        snapshot_path
            .as_ref()
            .and_then(|path| match snapshot::load(std::path::Path::new(path)) {
                Ok(g) => {
                    eprintln!(
                        "(wire_shard s{shard}r{replica}: loaded {} triples from {path})",
                        g.len()
                    );
                    Some(g)
                }
                Err(e) => {
                    eprintln!(
                        "(wire_shard s{shard}r{replica}: snapshot {path} unusable ({e}); \
                     falling back to generate)"
                    );
                    None
                }
            });
    let bringup = if loaded.is_some() {
        "snapshot"
    } else {
        "generate"
    };
    let shard_graph = loaded.unwrap_or_else(|| {
        eprintln!("(wire_shard s{shard}r{replica}: generating dataset…)");
        let graph = generate(dataset_for(&scale));
        // The same slicing, model init, and serving posture as the
        // in-process `Cluster::build` (and the parent's oracle router), so
        // process-mode merges stay byte-identical to the in-process ones.
        Partitioner::new(shards)
            .split(&graph)
            .shards
            .into_iter()
            .nth(shard)
            .expect("partitioner yields every shard")
    });
    let data_us = data_clock.elapsed().as_micros();

    let pum = Arc::new(
        PredictiveUserModel::initialize_local(
            format!("edge-s{shard}"),
            shard_graph,
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            experiment_config(),
            InitMode::Federated,
        )
        .expect("shard model initialization"),
    );
    let default_in_flight = ServerConfig::default().max_in_flight.max(8);
    let config = ServerConfig {
        name: format!("edge-s{shard}r{replica}"),
        max_in_flight: default_in_flight,
        max_queue_depth: default_in_flight * 4,
        queue_wait: std::time::Duration::from_millis(1_000),
        ..ServerConfig::default()
    };
    let server = Arc::new(SapphireServer::new(pum, config));
    let wire = WireServer::serve(
        server as Arc<dyn ShardService>,
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .expect("bind loopback wire listener");

    // The handshake line the parent parses; stdout is block-buffered when
    // piped, so flush explicitly.
    println!(
        "WIRE_READY {} bringup={bringup} data_us={data_us}",
        wire.local_addr()
    );
    std::io::stdout().flush().ok();

    // Serve until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("(wire_shard s{shard}r{replica}: stdin closed, draining)");
    wire.shutdown();
}
