//! # sapphire-datagen
//!
//! Workload substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! The paper evaluates on live DBpedia with human participants; neither ships
//! in a reproduction, so this crate provides the substitutes (see DESIGN.md):
//!
//! * [`generator`] — a seeded DBpedia-like RDF dataset: RDFS class hierarchy
//!   with materialized types, multi-domain entities, skewed in-degrees, and
//!   noise literals exercising the init filters and similarity search.
//! * [`ontology`] — the class/predicate vocabulary plus hand-anchored
//!   entities so every workload question has a gold answer.
//! * [`workload`] — the 27 Appendix-B user-study questions and the
//!   50-question QALD-style comparison set, each with gold SPARQL and an
//!   idealized Sapphire session script.
//! * [`userstudy`] — stochastic simulated participants that drive the real
//!   Sapphire pipeline (Figures 8–11).

#![warn(missing_docs)]

pub mod generator;
pub mod names;
pub mod ontology;
pub mod userstudy;
pub mod workload;

pub use generator::{generate, DatasetConfig};
pub use userstudy::{run_study, NlQaSystem, Outcome, StudyConfig, SystemResults, TimeModel};
pub use workload::{appendix_b, gold_answers, grade, qald_style_50, Difficulty, Grade, Question};
