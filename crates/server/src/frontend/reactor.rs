//! The reactor: one ready queue of sessions, shared by all workers.
//!
//! The reactor never executes anything — it is the scheduling heart that
//! replaces "one parked thread per waiting request" with "one queue entry
//! per ready session". Three kinds of event make a session ready:
//!
//! * a submission to an idle session,
//! * an admission grant callback (the non-blocking admission path), and
//! * the deadline sweep (a queued admission ticket's deadline passed; the
//!   session is scheduled so a worker can settle it to `QueueTimeout`).
//!
//! Workers block *here* — on one condvar, only when there is genuinely
//! nothing to do — never inside the admission controller.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct ReactorState {
    /// Sessions ready for a worker, in scheduling order. May contain
    /// spurious entries (a deadline sweep races a grant); workers skip
    /// entries whose session is no longer in a runnable phase.
    ready: VecDeque<u64>,
    /// `(deadline, session)` of parked admission tickets. Entries are
    /// one-shot hints, never removed early: a session whose grant arrived
    /// first just sees a spurious wake at its old deadline.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Sessions a worker is currently operating on.
    busy: usize,
    /// Sessions parked in `AwaitingGrant` (so shutdown drains them even
    /// when their ticket carries no deadline).
    parked: usize,
    shutdown: bool,
    /// High-water mark of `ready.len()` (observability).
    peak_ready: usize,
}

/// What a worker should do next.
pub(crate) enum Work {
    /// Operate on this session.
    Session(u64),
    /// Drain complete: exit the worker loop.
    Exit,
}

#[derive(Debug, Default)]
pub(crate) struct Reactor {
    state: Mutex<ReactorState>,
    wake: Condvar,
}

impl Reactor {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Make `session` ready and wake one worker.
    pub(crate) fn schedule(&self, session: u64) {
        let mut state = self.state.lock().unwrap();
        state.ready.push_back(session);
        state.peak_ready = state.peak_ready.max(state.ready.len());
        self.wake.notify_one();
    }

    /// Register an admission-deadline wake-up for `session`. Uses
    /// `notify_all` because a sleeping worker may need to *shorten* its
    /// current timed wait to honor the new, earlier deadline.
    pub(crate) fn schedule_deadline(&self, at: Instant, session: u64) {
        let mut state = self.state.lock().unwrap();
        state.deadlines.push(Reverse((at, session)));
        drop(state);
        self.wake.notify_all();
    }

    /// A session entered `AwaitingGrant` (keeps the drain honest for
    /// tickets without a deadline).
    pub(crate) fn note_parked(&self) {
        self.state.lock().unwrap().parked += 1;
    }

    /// A session left `AwaitingGrant` (grant claimed, expired, or settled).
    pub(crate) fn note_unparked(&self) {
        let mut state = self.state.lock().unwrap();
        state.parked -= 1;
        if state.shutdown {
            drop(state);
            self.wake.notify_all();
        }
    }

    /// Blocking worker entry: the next ready session, or `Exit` once the
    /// front-end is shutting down *and* fully drained. Due deadline entries
    /// are folded into the ready queue here, so no dedicated timer thread
    /// exists — the workers are the timer.
    pub(crate) fn next(&self) -> Work {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(id) = state.ready.pop_front() {
                state.busy += 1;
                return Work::Session(id);
            }
            let now = Instant::now();
            let mut woke_any = false;
            while let Some(&Reverse((at, id))) = state.deadlines.peek() {
                if at > now {
                    break;
                }
                state.deadlines.pop();
                state.ready.push_back(id);
                woke_any = true;
            }
            if woke_any {
                continue;
            }
            if state.shutdown && state.busy == 0 && state.parked == 0 && state.ready.is_empty() {
                // Everything drained; wake the rest of the pool so every
                // worker observes the exit condition.
                self.wake.notify_all();
                return Work::Exit;
            }
            state = match state.deadlines.peek() {
                Some(&Reverse((at, _))) => {
                    let wait = at.saturating_duration_since(now);
                    self.wake.wait_timeout(state, wait).unwrap().0
                }
                None => self.wake.wait(state).unwrap(),
            };
        }
    }

    /// A worker finished operating on a session; `followup` re-schedules it
    /// (more queued work) in one lock take.
    pub(crate) fn done(&self, followup: Option<u64>) {
        let mut state = self.state.lock().unwrap();
        state.busy -= 1;
        match followup {
            Some(id) => {
                state.ready.push_back(id);
                state.peak_ready = state.peak_ready.max(state.ready.len());
                self.wake.notify_one();
            }
            None => {
                if state.shutdown && state.busy == 0 {
                    drop(state);
                    self.wake.notify_all();
                }
            }
        }
    }

    /// Stop intake and let the pool drain.
    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.wake.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }

    /// `(ready, parked, busy)` snapshot.
    pub(crate) fn load(&self) -> (usize, usize, usize) {
        let state = self.state.lock().unwrap();
        (state.ready.len(), state.parked, state.busy)
    }

    pub(crate) fn peak_ready(&self) -> usize {
        self.state.lock().unwrap().peak_ready
    }
}
