//! Well-known vocabulary IRIs used across the reproduction.
//!
//! These mirror the namespaces the paper's queries rely on: RDF/RDFS for the
//! class hierarchy (§5.1), OWL for class declarations (query Q2), XSD for
//! typed literals, and a DBpedia-like namespace for the synthetic dataset.

/// RDF core vocabulary.
pub mod rdf {
    /// `rdf:type` — the predicate written `a` in Turtle/SPARQL.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// RDF Schema vocabulary (class hierarchy, §5.1).
pub mod rdfs {
    /// `rdfs:subClassOf` — organizes classes into the hierarchy Sapphire walks.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:label` — the canonical human-readable name predicate.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:Class`.
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
}

/// OWL vocabulary (used by initialization query Q2).
pub mod owl {
    /// `owl:Class`.
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    /// `owl:Thing` — conventional root of DBpedia-like hierarchies.
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
}

/// XML Schema datatypes.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:float`.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
}

/// The synthetic DBpedia-like namespaces used by `sapphire-datagen`.
pub mod dbp {
    /// Ontology namespace (classes and predicates), mirrors `dbo:`.
    pub const ONTOLOGY: &str = "http://dbpedia.org/ontology/";
    /// Resource namespace (entities), mirrors `res:`/`dbr:`.
    pub const RESOURCE: &str = "http://dbpedia.org/resource/";
}

/// Standard prefix table used by parsers and pretty-printers.
pub fn standard_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
        ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
        ("owl", "http://www.w3.org/2002/07/owl#"),
        ("xsd", "http://www.w3.org/2001/XMLSchema#"),
        ("dbo", dbp::ONTOLOGY),
        ("res", dbp::RESOURCE),
        ("dbr", dbp::RESOURCE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_cover_core_namespaces() {
        let p = standard_prefixes();
        assert!(p
            .iter()
            .any(|(k, v)| *k == "rdf" && v.contains("rdf-syntax")));
        assert!(p.iter().any(|(k, _)| *k == "dbo"));
        // `res` and `dbr` must alias the same namespace.
        let res = p.iter().find(|(k, _)| *k == "res").unwrap().1;
        let dbr = p.iter().find(|(k, _)| *k == "dbr").unwrap().1;
        assert_eq!(res, dbr);
    }
}
