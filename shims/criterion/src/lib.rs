//! Offline API-subset shim for the `criterion` benchmark harness.
//!
//! Implements the subset used by `crates/bench/benches/*`: `Criterion`,
//! `BenchmarkGroup` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warm-up followed by a fixed number of timed batches and prints the
//! best observed ns/iter — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    batches: u32,
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, keeping the best batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a probe to size batches so one batch stays ~cheap.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().as_nanos().max(1);
        let per_batch = ((10_000_000 / probe) as u32).clamp(1, 1000);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_batch as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (kept small in the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).clamp(1, 20);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            batches: self.samples,
            best_ns_per_iter: f64::INFINITY,
        };
        f(&mut bencher);
        report(&self.name, &id.label, bencher.best_ns_per_iter);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            batches: self.samples,
            best_ns_per_iter: f64::INFINITY,
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, bencher.best_ns_per_iter);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, ns: f64) {
    if ns.is_finite() {
        println!("{group}/{label:<32} {ns:>14.1} ns/iter");
    } else {
        println!("{group}/{label:<32} (not measured)");
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 5,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("default", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
