//! A federated query processor — the reproduction's stand-in for FedX \[22\].
//!
//! Sapphire "accesses the endpoints through a federated query processor"
//! (§3); the processor needs to (a) route queries to the endpoints that can
//! answer them and (b) join patterns whose data lives on different endpoints.
//! Like FedX, we do per-triple-pattern source selection with cheap ASK
//! probes, route single-source queries whole, and fall back to bound joins
//! for genuinely federated ones.

use std::collections::HashMap;
use std::sync::Arc;

use sapphire_rdf::Term;
use sapphire_sparql::eval::filter_passes;
use sapphire_sparql::{
    GraphPattern, Projection, Query, QueryResult, SelectItem, SelectQuery, Solutions, TermPattern,
    TriplePattern,
};

use crate::endpoint::{Endpoint, EndpointError};

/// Federation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// No endpoints are registered.
    NoEndpoints,
    /// No single endpoint can answer and the query shape cannot be bound-joined.
    Unsupported(String),
    /// All candidate endpoints failed; the payload is the first error.
    AllSourcesFailed(EndpointError),
    /// The query did not parse.
    Parse(String),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoEndpoints => write!(f, "no endpoints registered"),
            FederationError::Unsupported(m) => write!(f, "unsupported federated query: {m}"),
            FederationError::AllSourcesFailed(e) => write!(f, "all sources failed: {e}"),
            FederationError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for FederationError {}

/// One joined row of variable bindings.
type Binding = HashMap<String, Term>;

/// The federated query processor.
#[derive(Clone, Default)]
pub struct FederatedProcessor {
    endpoints: Vec<Arc<dyn Endpoint>>,
}

impl FederatedProcessor {
    /// An empty processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// A processor over one endpoint (the common case in the paper's
    /// evaluation, which queries DBpedia only).
    pub fn single(endpoint: Arc<dyn Endpoint>) -> Self {
        let mut p = Self::new();
        p.register(endpoint);
        p
    }

    /// Register an endpoint.
    pub fn register(&mut self, endpoint: Arc<dyn Endpoint>) {
        self.endpoints.push(endpoint);
    }

    /// The registered endpoints.
    pub fn endpoints(&self) -> &[Arc<dyn Endpoint>] {
        &self.endpoints
    }

    /// Parse and execute.
    pub fn execute(&self, query: &str) -> Result<QueryResult, FederationError> {
        let q = sapphire_sparql::parse_query(query)
            .map_err(|e| FederationError::Parse(e.to_string()))?;
        self.execute_parsed(&q)
    }

    /// Parse and execute a SELECT, returning solutions.
    pub fn select(&self, query: &str) -> Result<Solutions, FederationError> {
        match self.execute(query)? {
            QueryResult::Solutions(s) => Ok(s),
            QueryResult::Boolean(_) => Err(FederationError::Unsupported("expected SELECT".into())),
        }
    }

    /// Execute a parsed query across the registered endpoints.
    pub fn execute_parsed(&self, query: &Query) -> Result<QueryResult, FederationError> {
        match self.endpoints.len() {
            0 => Err(FederationError::NoEndpoints),
            1 => self.endpoints[0]
                .execute_parsed(query)
                .map_err(FederationError::AllSourcesFailed),
            _ => self.execute_federated(query),
        }
    }

    fn pattern_of(query: &Query) -> &GraphPattern {
        match query {
            Query::Select(s) => &s.pattern,
            Query::Ask(gp) => gp,
        }
    }

    /// Per-pattern source selection: which endpoints have at least one match
    /// for each triple pattern? (FedX's ASK-probe phase.)
    fn select_sources(&self, gp: &GraphPattern) -> Vec<Vec<usize>> {
        gp.triples
            .iter()
            .map(|tp| {
                let probe = Query::Ask(GraphPattern {
                    triples: vec![tp.clone()],
                    filters: Vec::new(),
                });
                self.endpoints
                    .iter()
                    .enumerate()
                    .filter(|(_, ep)| {
                        matches!(ep.execute_parsed(&probe), Ok(QueryResult::Boolean(true)))
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect()
    }

    fn execute_federated(&self, query: &Query) -> Result<QueryResult, FederationError> {
        let gp = Self::pattern_of(query);
        if gp.triples.is_empty() {
            return Err(FederationError::Unsupported("empty graph pattern".into()));
        }
        let sources = self.select_sources(gp);

        // Endpoints able to answer every pattern can run the query whole.
        let covering: Vec<usize> = (0..self.endpoints.len())
            .filter(|i| sources.iter().all(|s| s.contains(i)))
            .collect();

        if !covering.is_empty() {
            let result = self.union_over(query, &covering)?;
            // A covering endpoint answers each pattern individually, but the
            // *join* may still span endpoints (e.g. people on one source,
            // their birthplaces' names on another). If the single-source
            // route comes back empty and some pattern has non-covering
            // sources too, retry with a bound join before giving up.
            let came_back_empty = matches!(&result, QueryResult::Solutions(s) if s.is_empty())
                || matches!(&result, QueryResult::Boolean(false));
            let join_may_span = sources
                .iter()
                .any(|s| s.iter().any(|i| !covering.contains(i)));
            if !(came_back_empty && join_may_span) {
                return Ok(result);
            }
            if let Query::Select(select) = query {
                if select.has_aggregates() || !select.group_by.is_empty() {
                    return Ok(result);
                }
            }
        }

        // Genuinely federated: bound-join plain SELECTs only.
        let Query::Select(select) = query else {
            return Ok(QueryResult::Boolean(
                !self.bound_join(gp, &sources, Some(1))?.1.is_empty(),
            ));
        };
        if select.has_aggregates() || !select.group_by.is_empty() {
            return Err(FederationError::Unsupported(
                "aggregates over patterns spanning multiple endpoints".into(),
            ));
        }
        let (var_order, rows) = self.bound_join(gp, &sources, None)?;
        let mut solutions = project_rows(select, &var_order, rows);
        if select.distinct {
            dedup(&mut solutions.rows);
        }
        sort_rows(&mut solutions, select);
        apply_slice(&mut solutions, select);
        Ok(QueryResult::Solutions(solutions))
    }

    /// Execute a SELECT strictly by per-pattern source selection plus a
    /// bound join, *skipping* the covering-endpoint shortcut.
    ///
    /// For independent datasets the shortcut is a pure optimization, but for
    /// **partitioned** backends — every endpoint holding a slice of one
    /// dataset — it is unsound: a shard can match every pattern individually
    /// (schema triples are replicated; popular predicates appear everywhere)
    /// while the join still spans shards, and its non-empty shard-local
    /// answer would mask the rows that need the cross-shard join. The
    /// cluster router routes every pattern-spanning query through this
    /// method instead.
    pub fn execute_partitioned(&self, select: &SelectQuery) -> Result<Solutions, FederationError> {
        if self.endpoints.is_empty() {
            return Err(FederationError::NoEndpoints);
        }
        if select.has_aggregates() || !select.group_by.is_empty() {
            return Err(FederationError::Unsupported(
                "aggregates over partitioned patterns".into(),
            ));
        }
        let gp = &select.pattern;
        if gp.triples.is_empty() {
            return Err(FederationError::Unsupported("empty graph pattern".into()));
        }
        let sources = self.select_sources(gp);
        let (var_order, rows) = self.bound_join(gp, &sources, None)?;
        let mut solutions = project_rows(select, &var_order, rows);
        if select.distinct {
            dedup(&mut solutions.rows);
        }
        sort_rows(&mut solutions, select);
        apply_slice(&mut solutions, select);
        Ok(solutions)
    }

    /// Run the whole query on each covering endpoint and union the rows.
    fn union_over(
        &self,
        query: &Query,
        covering: &[usize],
    ) -> Result<QueryResult, FederationError> {
        let mut first_err: Option<EndpointError> = None;
        let mut merged: Option<Solutions> = None;
        let mut boolean = false;
        let mut any_ok = false;
        for &i in covering {
            match self.endpoints[i].execute_parsed(query) {
                Ok(QueryResult::Boolean(b)) => {
                    any_ok = true;
                    boolean |= b;
                }
                Ok(QueryResult::Solutions(s)) => {
                    any_ok = true;
                    merged = Some(match merged.take() {
                        None => s,
                        Some(mut acc) => {
                            if acc.vars == s.vars {
                                for row in s.rows {
                                    if !acc.rows.contains(&row) {
                                        acc.rows.push(row);
                                    }
                                }
                            }
                            acc
                        }
                    });
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if !any_ok {
            return Err(FederationError::AllSourcesFailed(
                first_err.unwrap_or(EndpointError::Eval("no covering endpoint".into())),
            ));
        }
        Ok(match merged {
            Some(s) => QueryResult::Solutions(s),
            None => QueryResult::Boolean(boolean),
        })
    }

    /// Nested-loop bound join: evaluate patterns left to right, substituting
    /// bindings and fanning each step out to that pattern's sources.
    fn bound_join(
        &self,
        gp: &GraphPattern,
        sources: &[Vec<usize>],
        row_limit: Option<usize>,
    ) -> Result<(Vec<String>, Vec<Binding>), FederationError> {
        let mut bindings: Vec<Binding> = vec![HashMap::new()];
        for (tp, srcs) in gp.triples.iter().zip(sources) {
            if srcs.is_empty() {
                return Ok((gp.variables(), Vec::new()));
            }
            let mut next: Vec<Binding> = Vec::new();
            for binding in &bindings {
                let bound = substitute(tp, binding);
                let vars: Vec<&str> = bound.variables().collect();
                let sub_query = Query::Select(SelectQuery::star(GraphPattern {
                    triples: vec![bound.clone()],
                    filters: Vec::new(),
                }));
                for &src in srcs {
                    let Ok(QueryResult::Solutions(sols)) =
                        self.endpoints[src].execute_parsed(&sub_query)
                    else {
                        continue;
                    };
                    for r in 0..sols.len() {
                        let mut extended = binding.clone();
                        let mut ok = true;
                        for v in &vars {
                            match sols.get(r, v) {
                                Some(t) => {
                                    extended.insert((*v).to_string(), t.clone());
                                }
                                None => ok = false,
                            }
                        }
                        if ok && !next.contains(&extended) {
                            next.push(extended);
                        }
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        // Apply filters on complete bindings.
        bindings.retain(|b| {
            gp.filters.iter().all(|f| {
                let resolve = |name: &str| b.get(name).cloned();
                filter_passes(f, &resolve)
            })
        });
        if let Some(l) = row_limit {
            bindings.truncate(l);
        }
        Ok((gp.variables(), bindings))
    }
}

fn substitute(tp: &TriplePattern, binding: &HashMap<String, Term>) -> TriplePattern {
    let subst = |p: &TermPattern| match p {
        TermPattern::Var(v) => match binding.get(v) {
            Some(t) => TermPattern::Term(t.clone()),
            None => p.clone(),
        },
        ground => ground.clone(),
    };
    TriplePattern::new(subst(&tp.subject), subst(&tp.predicate), subst(&tp.object))
}

fn project_rows(
    select: &SelectQuery,
    var_order: &[String],
    rows: Vec<HashMap<String, Term>>,
) -> Solutions {
    let names: Vec<String> = match &select.projection {
        Projection::Star => var_order.to_vec(),
        Projection::Items(items) => items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Var(v) => Some(v.clone()),
                SelectItem::Agg { .. } => None,
            })
            .collect(),
    };
    let out_rows = rows
        .into_iter()
        .map(|b| names.iter().map(|n| b.get(n).cloned()).collect())
        .collect();
    Solutions {
        vars: names,
        rows: out_rows,
    }
}

fn dedup(rows: &mut Vec<Vec<Option<Term>>>) {
    let mut seen: Vec<Vec<Option<Term>>> = Vec::new();
    rows.retain(|r| {
        if seen.contains(r) {
            false
        } else {
            seen.push(r.clone());
            true
        }
    });
}

fn sort_rows(solutions: &mut Solutions, select: &SelectQuery) {
    use sapphire_sparql::Expr;
    if select.order_by.is_empty() {
        return;
    }
    let keys: Vec<(Option<usize>, bool)> = select
        .order_by
        .iter()
        .map(|k| {
            let col = match &k.expr {
                Expr::Var(v) => solutions.column(v),
                _ => None,
            };
            (col, k.descending)
        })
        .collect();
    solutions.rows.sort_by(|a, b| {
        for (col, desc) in &keys {
            if let Some(c) = col {
                let ord = cmp_terms(&a[*c], &b[*c]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn cmp_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let nx = x.as_literal().and_then(|l| l.as_f64());
            let ny = y.as_literal().and_then(|l| l.as_f64());
            match (nx, ny) {
                (Some(p), Some(q)) => p.partial_cmp(&q).unwrap_or(Ordering::Equal),
                _ => x.lexical().cmp(y.lexical()),
            }
        }
    }
}

fn apply_slice(solutions: &mut Solutions, select: &SelectQuery) {
    if let Some(offset) = select.offset {
        solutions.rows.drain(..offset.min(solutions.rows.len()));
    }
    if let Some(limit) = select.limit {
        solutions.rows.truncate(limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;

    fn make(name: &str, ttl: &str) -> Arc<dyn Endpoint> {
        Arc::new(LocalEndpoint::new(
            name,
            turtle::parse(ttl).unwrap(),
            EndpointLimits::warehouse(),
        ))
    }

    fn people_endpoint() -> Arc<dyn Endpoint> {
        make(
            "people",
            r#"
res:Ada a dbo:Scientist ; dbo:name "Ada Lovelace"@en ; dbo:birthPlace res:London .
res:Alan a dbo:Scientist ; dbo:name "Alan Turing"@en ; dbo:birthPlace res:London .
"#,
        )
    }

    fn places_endpoint() -> Arc<dyn Endpoint> {
        make(
            "places",
            r#"
res:London a dbo:City ; dbo:name "London"@en ; dbo:country res:UK .
res:Paris a dbo:City ; dbo:name "Paris"@en ; dbo:country res:France .
"#,
        )
    }

    #[test]
    fn single_endpoint_passthrough() {
        let fed = FederatedProcessor::single(people_endpoint());
        let s = fed
            .select("SELECT ?s WHERE { ?s a dbo:Scientist }")
            .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn no_endpoints_is_an_error() {
        let fed = FederatedProcessor::new();
        assert_eq!(
            fed.select("SELECT ?s WHERE { ?s ?p ?o }").unwrap_err(),
            FederationError::NoEndpoints
        );
    }

    #[test]
    fn single_source_query_routed_to_covering_endpoint() {
        let mut fed = FederatedProcessor::new();
        fed.register(people_endpoint());
        fed.register(places_endpoint());
        let s = fed.select("SELECT ?c WHERE { ?c a dbo:City }").unwrap();
        assert_eq!(s.len(), 2);
        let s = fed
            .select("SELECT ?s WHERE { ?s a dbo:Scientist }")
            .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn cross_endpoint_bound_join() {
        let mut fed = FederatedProcessor::new();
        fed.register(people_endpoint());
        fed.register(places_endpoint());
        // Scientists (people endpoint) born in a city located in the UK
        // (places endpoint) — no single endpoint covers both patterns.
        let s = fed
            .select(
                "SELECT ?name WHERE { ?s a dbo:Scientist ; dbo:name ?name ; dbo:birthPlace ?place . ?place dbo:country res:UK }",
            )
            .unwrap();
        let mut names: Vec<String> = s.values("name").map(|t| t.lexical().to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["Ada Lovelace", "Alan Turing"]);
    }

    #[test]
    fn federated_filters_apply() {
        let mut fed = FederatedProcessor::new();
        fed.register(people_endpoint());
        fed.register(places_endpoint());
        let s = fed
            .select(
                r#"SELECT ?name WHERE { ?s a dbo:Scientist ; dbo:name ?name ; dbo:birthPlace ?place . ?place dbo:country ?c . FILTER(contains(str(?name), "Ada")) }"#,
            )
            .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_of_rows_from_multiple_covering_endpoints() {
        let mut fed = FederatedProcessor::new();
        fed.register(make("a", "res:X a dbo:Thing ."));
        fed.register(make("b", "res:Y a dbo:Thing ."));
        let s = fed.select("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_result_when_pattern_has_no_source() {
        let mut fed = FederatedProcessor::new();
        fed.register(people_endpoint());
        fed.register(places_endpoint());
        let s = fed
            .select("SELECT ?s WHERE { ?s a dbo:Scientist . ?s dbo:spaceship ?x }")
            .unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn federated_order_and_limit() {
        let mut fed = FederatedProcessor::new();
        fed.register(people_endpoint());
        fed.register(places_endpoint());
        let s = fed
            .select(
                "SELECT ?name WHERE { ?s dbo:name ?name ; dbo:birthPlace ?p . ?p dbo:name ?pn } ORDER BY ?name LIMIT 1",
            )
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "name").unwrap().lexical(), "Ada Lovelace");
    }
}
