//! Byte-identity oracle for the columnar `Graph` storage refactor.
//!
//! The seed implementation stored triples in three `BTreeSet<(u32, u32, u32)>`
//! rotations and answered patterns with B-tree range scans. This test keeps
//! that implementation alive as [`SeedStore`] and demands the columnar store
//! answer every pattern shape — and the full Appendix B workload — **byte
//! for byte** identically, across every construction path a shard can take:
//! the sealed bulk build, the incremental delta-overlay path, a mixed
//! half-sealed build, and a snapshot encode/decode round-trip.

use std::collections::BTreeSet;
use std::ops::Bound;

use sapphire_datagen::workload::{appendix_b, gold_answers};
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
use sapphire_rdf::{snapshot, Graph, Term, TermId};

/// The seed's storage layout, verbatim: three rotated B-tree sets, range
/// scans with inclusive `(prefix, 0)..=(prefix, u32::MAX)` bounds. Every
/// result is returned in (s, p, o) order, exactly as the seed yielded it.
#[derive(Default)]
struct SeedStore {
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl SeedStore {
    fn insert(&mut self, s: u32, p: u32, o: u32) {
        self.spo.insert((s, p, o));
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
    }

    fn matching(&self, s: Option<u32>, p: Option<u32>, o: Option<u32>) -> Vec<[u32; 3]> {
        let full =
            |lo: (u32, u32, u32), hi: (u32, u32, u32)| (Bound::Included(lo), Bound::Included(hi));
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => self
                .spo
                .contains(&(s, p, o))
                .then_some([s, p, o])
                .into_iter()
                .collect(),
            (Some(s), Some(p), None) => self
                .spo
                .range(full((s, p, 0), (s, p, u32::MAX)))
                .map(|&(a, b, c)| [a, b, c])
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range(full((s, 0, 0), (s, u32::MAX, u32::MAX)))
                .map(|&(a, b, c)| [a, b, c])
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range(full((p, o, 0), (p, o, u32::MAX)))
                .map(|&(b, c, a)| [a, b, c])
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range(full((p, 0, 0), (p, u32::MAX, u32::MAX)))
                .map(|&(b, c, a)| [a, b, c])
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range(full((o, 0, 0), (o, u32::MAX, u32::MAX)))
                .map(|&(c, a, b)| [a, b, c])
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range(full((o, s, 0), (o, s, u32::MAX)))
                .map(|&(c, a, b)| [a, b, c])
                .collect(),
            (None, None, None) => self.spo.iter().map(|&(a, b, c)| [a, b, c]).collect(),
        }
    }
}

/// Every construction path a shard graph can take, labeled. All four must
/// hold identical term tables (interning order is first-occurrence order in
/// the (s, p, o) stream, which none of the paths disturb) and answer
/// identically.
fn storage_paths(generated: &Graph) -> Vec<(&'static str, Graph)> {
    let triples: Vec<(Term, Term, Term)> = generated
        .iter_terms()
        .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
        .collect();

    // Incremental: every triple through `insert`, never sealed — scans run
    // against the pure delta overlay.
    let mut incremental = Graph::new();
    for (s, p, o) in &triples {
        incremental.insert(s.clone(), p.clone(), o.clone());
    }

    // Mixed: bulk-build the first half sealed, push the second half through
    // the overlay — scans must interleave sealed columns with the delta.
    let mid = triples.len() / 2;
    let mut mixed = Graph::from_term_triples(triples[..mid].iter().cloned());
    for (s, p, o) in &triples[mid..] {
        mixed.insert(s.clone(), p.clone(), o.clone());
    }

    let roundtrip = snapshot::decode(&snapshot::encode(generated).expect("sealed graph encodes"))
        .expect("own snapshot decodes");

    vec![
        ("bulk+sealed", Graph::from_term_triples(triples.into_iter())),
        ("incremental", incremental),
        ("mixed", mixed),
        ("snapshot-roundtrip", roundtrip),
    ]
}

fn raw(rows: Vec<[TermId; 3]>) -> Vec<[u32; 3]> {
    rows.into_iter().map(|t| t.map(|id| id.0)).collect()
}

#[test]
fn every_pattern_shape_is_byte_identical_to_the_seed_btreeset_store() {
    let generated = generate(DatasetConfig::tiny(42));
    for (label, graph) in storage_paths(&generated) {
        // Term interning order is first-occurrence order, so a graph rebuilt
        // from the SPO scan assigns different ids than one built in
        // generation order. The seed store therefore indexes each variant's
        // own rows; the term-level agreement across variants is what the
        // workload test below pins down.
        let rows = raw(graph.matching(None, None, None));
        assert_eq!(rows.len(), generated.len(), "{label}: triple count");
        if label == "snapshot-roundtrip" {
            // A decoded snapshot shares the original's id space outright, so
            // here the raw rows must be byte-identical, not just isomorphic.
            assert_eq!(
                format!("{rows:?}"),
                format!("{:?}", raw(generated.matching(None, None, None))),
                "snapshot round-trip changed the raw triple stream"
            );
        }
        let mut seed = SeedStore::default();
        for &[s, p, o] in &rows {
            seed.insert(s, p, o);
        }

        // Probe anchors: the ids of every stored triple (so every shape hits
        // populated ranges) plus one id past the interner (every shape must
        // come back empty, not panic).
        let absent = graph.interner().len() as u32;
        let mut probes: BTreeSet<(Option<u32>, Option<u32>, Option<u32>)> =
            BTreeSet::from([(None, None, None)]);
        for &[s, p, o] in &rows {
            probes.extend([
                (Some(s), Some(p), Some(o)),
                (Some(s), Some(p), None),
                (Some(s), None, None),
                (None, Some(p), Some(o)),
                (None, Some(p), None),
                (None, None, Some(o)),
                (Some(s), None, Some(o)),
            ]);
        }
        probes.extend([
            (Some(absent), None, None),
            (None, Some(absent), None),
            (None, None, Some(absent)),
            (Some(absent), Some(absent), Some(absent)),
        ]);

        for &(s, p, o) in &probes {
            let (ts, tp, to) = (s.map(TermId), p.map(TermId), o.map(TermId));
            let got = raw(graph.matching(ts, tp, to));
            let want = seed.matching(s, p, o);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "{label}: matching({s:?}, {p:?}, {o:?}) diverged from the seed store"
            );
            assert_eq!(
                graph.count_matching(ts, tp, to),
                want.len(),
                "{label}: count_matching({s:?}, {p:?}, {o:?}) diverged from the seed store"
            );
        }
    }
}

#[test]
fn degrees_match_a_naive_tally_over_the_seed_rows() {
    let generated = generate(DatasetConfig::tiny(7));
    for (label, graph) in storage_paths(&generated) {
        let rows = raw(graph.matching(None, None, None));
        let ids: BTreeSet<u32> = rows.iter().flatten().copied().collect();
        for &id in &ids {
            let out = rows.iter().filter(|r| r[0] == id).count();
            let inn = rows.iter().filter(|r| r[2] == id).count();
            assert_eq!(
                graph.out_degree(TermId(id)),
                out,
                "{label}: out_degree({id})"
            );
            assert_eq!(graph.in_degree(TermId(id)), inn, "{label}: in_degree({id})");
        }
    }
}

#[test]
fn appendix_b_gold_answers_are_byte_identical_across_all_storage_paths() {
    let generated = generate(DatasetConfig::tiny(42));
    let questions = appendix_b();
    // Generation is deterministic per seed, so a second generate is an
    // independent copy of the same graph for the reference endpoint.
    let reference = LocalEndpoint::new("oracle-ref", generate(DatasetConfig::tiny(42)), limits());
    let gold: Vec<Vec<String>> = questions
        .iter()
        .map(|q| gold_answers(q, &reference))
        .collect();
    assert!(
        gold.iter().any(|g| !g.is_empty()),
        "workload produced no answers at all — the oracle would be vacuous"
    );

    for (label, graph) in storage_paths(&generated) {
        let endpoint = LocalEndpoint::new("oracle", graph, limits());
        for (q, want) in questions.iter().zip(&gold) {
            let got = gold_answers(q, &endpoint);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "{label}: workload answers for {} diverged from the generated graph",
                q.id
            );
        }
    }
}

fn limits() -> EndpointLimits {
    EndpointLimits::warehouse()
}
