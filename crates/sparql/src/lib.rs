//! # sapphire-sparql
//!
//! SPARQL substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! Sapphire composes, rewrites, and executes SPARQL queries: its
//! initialization issues the Q1–Q10 templates of Appendix A against remote
//! endpoints, the QSM builds alternative queries and executes them in the
//! background, and the structure-relaxation algorithm explores the remote
//! graph purely through SPARQL. This crate supplies the query language:
//!
//! * [`ast`] — the SPARQL subset: `SELECT [DISTINCT]` with aggregates,
//!   basic graph patterns, `FILTER`, `GROUP BY`, `ORDER BY`,
//!   `LIMIT`/`OFFSET`, and `ASK`.
//! * [`lexer`] / [`parser`] — hand-written tokenizer and recursive-descent
//!   parser with prefix expansion.
//! * [`eval`] — an evaluator over [`sapphire_rdf::Graph`] with greedy
//!   selectivity-based join ordering and a deterministic [`eval::WorkBudget`]
//!   that the endpoint layer uses to simulate remote timeouts (the driver of
//!   the paper's §5.1 initialization algorithm).
//! * [`solutions`] — materialized result tables.
//!
//! ## Example
//!
//! ```
//! use sapphire_sparql::{parse_select, evaluate_select, WorkBudget};
//!
//! let g = sapphire_rdf::turtle::parse(
//!     r#"res:Alice a dbo:Scientist ; dbo:name "Alice"@en ."#,
//! ).unwrap();
//! let q = parse_select("SELECT ?n WHERE { ?s a dbo:Scientist ; dbo:name ?n }").unwrap();
//! let rows = evaluate_select(&g, &q, &mut WorkBudget::unlimited()).unwrap();
//! assert_eq!(rows.get(0, "n").unwrap().lexical(), "Alice");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod solutions;

pub use ast::{
    Aggregate, CmpOp, Expr, GraphPattern, OrderKey, Projection, Query, SelectItem, SelectQuery,
    TermPattern, TriplePattern,
};
pub use eval::{evaluate, evaluate_select, EvalError, WorkBudget};
pub use parser::{parse_query, parse_select, ParseError};
pub use solutions::{QueryResult, Solutions};
