//! End-to-end integration: generated dataset → endpoint → initialization →
//! session → QCM → run → QSM → accepted suggestion, across crate boundaries.

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_datagen::{generate, DatasetConfig};

fn pum() -> PredictiveUserModel {
    let graph = generate(DatasetConfig::tiny(42));
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    PredictiveUserModel::initialize(
        vec![ep],
        Lexicon::dbpedia_default(),
        SapphireConfig {
            processes: 2,
            ..SapphireConfig::default()
        },
        InitMode::Federated,
    )
    .expect("init")
}

#[test]
fn full_pipeline_composes_and_answers() {
    let pum = pum();
    let mut session = Session::new(&pum);

    // Compose "time zone of Salt Lake City" from keywords only.
    session.set_row(0, TripleInput::new("?city", "name", "Salt Lake City"));
    session.set_row(1, TripleInput::new("?city", "time zone", "?tz"));
    let result = session.run().expect("runs");
    assert!(result.executed);
    assert_eq!(
        result
            .answers
            .solutions()
            .values("tz")
            .next()
            .unwrap()
            .lexical(),
        "UTC-07:00"
    );
}

#[test]
fn qcm_serves_predicates_and_literals_together() {
    let pum = pum();
    // "al" should surface the almaMater predicate and cached literals.
    let completions = pum.complete("alma");
    assert!(completions
        .suggestions
        .iter()
        .any(|c| c.predicate_iri.as_deref() == Some("http://dbpedia.org/ontology/almaMater")));
    let completions = pum.complete("Thatcher");
    assert!(completions
        .suggestions
        .iter()
        .any(|c| c.text.contains("Thatcher")));
}

#[test]
fn misspelling_recovers_through_alternative_literal() {
    let pum = pum();
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?show", "name", "Charmedd"));
    session.set_row(1, TripleInput::new("?show", "starring", "?actor"));
    let result = session.run().expect("runs");
    assert_eq!(result.answers.total_rows(), 0);
    let alt = result
        .suggestions
        .alternatives
        .iter()
        .find(|a| a.replacement == "Charmed")
        .expect("QSM corrects the name");
    let table = session.apply_alternative(alt);
    assert_eq!(table.total_rows(), 3, "three Charmed actors");
}

#[test]
fn wrong_predicate_recovers_through_lexicon() {
    let pum = pum();
    // "wife" resolves via JW/lexicon machinery: either the session resolves
    // it outright or the QSM suggests spouse.
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?p", "name", "Tom Hanks"));
    session.set_row(1, TripleInput::new("?p", "spouse", "?wife"));
    let result = session.run().expect("runs");
    assert_eq!(result.answers.total_rows(), 1);
    assert!(result
        .answers
        .solutions()
        .values("wife")
        .next()
        .unwrap()
        .lexical()
        .ends_with("Rita_Wilson"));
}

#[test]
fn endpoint_counters_track_session_traffic() {
    let graph = generate(DatasetConfig::tiny(42));
    let ep = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = PredictiveUserModel::initialize(
        vec![ep.clone() as Arc<dyn Endpoint>],
        Lexicon::dbpedia_default(),
        SapphireConfig {
            processes: 2,
            ..SapphireConfig::default()
        },
        InitMode::Federated,
    )
    .expect("init");
    let after_init = ep.stats().queries;
    assert!(after_init > 10, "initialization issues many queries");
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?p", "surname", "Kennedys"));
    session.run().expect("runs");
    assert!(
        ep.stats().queries > after_init,
        "QSM traffic visible at the endpoint"
    );
}

#[test]
fn answer_table_operations_work_on_live_results() {
    let pum = pum();
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?c", "type", "city"));
    session.set_row(1, TripleInput::new("?c", "population", "?pop"));
    let result = session.run().expect("runs");
    let mut table = result.answers;
    assert!(table.total_rows() > 10);
    table.sort_by("pop", true);
    let top = table.view();
    let first: f64 = top.rows[0][top.vars.iter().position(|v| v == "pop").unwrap()]
        .as_ref()
        .unwrap()
        .lexical()
        .parse()
        .unwrap();
    let second: f64 = top.rows[1][top.vars.iter().position(|v| v == "pop").unwrap()]
        .as_ref()
        .unwrap()
        .lexical()
        .parse()
        .unwrap();
    assert!(first >= second, "descending sort");
    table.set_filter("sydney");
    assert!(!table.view().is_empty());
}
