//! The evaluation workload: the 27 Appendix-B user-study questions plus
//! auto-generated factoid questions to reach the 50-question QALD-5-sized set
//! used in Table 1.
//!
//! Every question carries (a) a natural-language text with paraphrases (what
//! QA baselines consume), (b) a gold SPARQL query over the synthetic dataset
//! (the grader), and (c) a *session script* — the triple-pattern keywords an
//! informed user would enter into Sapphire's text boxes.

use sapphire_core::session::TripleInput;
use sapphire_endpoint::Endpoint;
use sapphire_rdf::Term;
use sapphire_sparql::{CmpOp, Expr, Solutions};

/// Question difficulty, per the paper's three categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// Factoid-like, one or two hops.
    Easy,
    /// Multi-hop or aggregate.
    Medium,
    /// Structural mismatch, filters, superlatives, self-joins.
    Difficult,
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Difficult => "difficult",
        };
        f.write_str(s)
    }
}

/// The idealized Sapphire inputs for a question.
#[derive(Debug, Clone, Default)]
pub struct SessionScript {
    /// Triple rows: (subject, predicate keyword, object keyword).
    pub rows: Vec<TripleInput>,
    /// ORDER BY (?var, descending).
    pub order_by: Option<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Use COUNT of the first variable.
    pub count: bool,
    /// Raw filters.
    pub filters: Vec<Expr>,
}

impl SessionScript {
    fn rows(rows: &[(&str, &str, &str)]) -> Self {
        SessionScript {
            rows: rows
                .iter()
                .map(|(s, p, o)| TripleInput::new(*s, *p, *o))
                .collect(),
            ..Default::default()
        }
    }

    fn with_filter(mut self, f: Expr) -> Self {
        self.filters.push(f);
        self
    }

    fn with_order(mut self, var: &str, desc: bool) -> Self {
        self.order_by = Some((var.to_string(), desc));
        self
    }

    fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Enable the COUNT modifier (available to future workload questions).
    #[allow(dead_code)]
    fn with_count(mut self) -> Self {
        self.count = true;
        self
    }
}

/// One workload question.
#[derive(Debug, Clone)]
pub struct Question {
    /// Stable id: E1–E10, M1–M8, D1–D9, F1–F23.
    pub id: String,
    /// The primary natural-language form.
    pub text: String,
    /// Difficulty class.
    pub difficulty: Difficulty,
    /// Gold SPARQL over the synthetic dataset.
    pub gold_sparql: String,
    /// Idealized Sapphire session inputs.
    pub script: SessionScript,
    /// Natural-language paraphrases (first = `text`), for QA baselines.
    pub paraphrases: Vec<String>,
    /// True if this is a factoid (single entity + property) question.
    pub factoid: bool,
}

fn gt(var: &str, n: f64) -> Expr {
    Expr::Cmp(
        CmpOp::Gt,
        Box::new(Expr::Var(var.into())),
        Box::new(Expr::Const(Term::Literal(sapphire_rdf::Literal::double(n)))),
    )
}

fn ge(var: &str, n: f64) -> Expr {
    Expr::Cmp(
        CmpOp::Ge,
        Box::new(Expr::Var(var.into())),
        Box::new(Expr::Const(Term::Literal(sapphire_rdf::Literal::double(n)))),
    )
}

fn year_eq(var: &str, year: i32) -> Expr {
    Expr::Cmp(
        CmpOp::Eq,
        Box::new(Expr::Year(Box::new(Expr::Var(var.into())))),
        Box::new(Expr::Const(Term::Literal(sapphire_rdf::Literal::integer(
            year as i64,
        )))),
    )
}

fn q(
    id: &str,
    text: &str,
    difficulty: Difficulty,
    gold: &str,
    script: SessionScript,
    paraphrases: &[&str],
    factoid: bool,
) -> Question {
    let mut all = vec![text.to_string()];
    all.extend(paraphrases.iter().map(|p| p.to_string()));
    Question {
        id: id.to_string(),
        text: text.to_string(),
        difficulty,
        gold_sparql: gold.to_string(),
        script,
        paraphrases: all,
        factoid,
    }
}

/// The 27 questions of Appendix B.
pub fn appendix_b() -> Vec<Question> {
    use Difficulty::*;
    vec![
        // ------------------------------ Easy ------------------------------
        q("E1", "Country in which the Ganges starts", Easy,
          r#"SELECT ?c WHERE { ?r dbo:name "Ganges"@en . ?r dbo:sourceCountry ?c }"#,
          SessionScript::rows(&[("?river", "name", "Ganges"), ("?river", "source country", "?country")]),
          &["Where does the Ganges start?", "In which country does the Ganges originate?"], true),
        q("E2", "John F. Kennedy's vice president", Easy,
          r#"SELECT ?vp WHERE { ?p dbo:name "John F. Kennedy"@en . ?p dbo:vicePresident ?vp }"#,
          SessionScript::rows(&[("?p", "name", "John F. Kennedy"), ("?p", "vice president", "?vp")]),
          &["Who was John F. Kennedy's vice president?", "vice president of John F. Kennedy"], true),
        q("E3", "Time zone of Salt Lake City", Easy,
          r#"SELECT ?tz WHERE { ?c dbo:name "Salt Lake City"@en . ?c dbo:timeZone ?tz }"#,
          SessionScript::rows(&[("?city", "name", "Salt Lake City"), ("?city", "time zone", "?tz")]),
          &["What is the time zone of Salt Lake City?", "Salt Lake City time zone"], true),
        q("E4", "Tom Hanks's wife", Easy,
          r#"SELECT ?w WHERE { ?p dbo:name "Tom Hanks"@en . ?p dbo:spouse ?w }"#,
          SessionScript::rows(&[("?p", "name", "Tom Hanks"), ("?p", "spouse", "?wife")]),
          &["Who is the wife of Tom Hanks?", "Tom Hanks spouse"], true),
        q("E5", "Children of Margaret Thatcher", Easy,
          r#"SELECT ?c WHERE { ?p dbo:name "Margaret Thatcher"@en . ?p dbo:child ?c }"#,
          SessionScript::rows(&[("?p", "name", "Margaret Thatcher"), ("?p", "child", "?child")]),
          &["Who are the children of Margaret Thatcher?", "Margaret Thatcher children"], true),
        q("E6", "Currency of the Czech Republic", Easy,
          r#"SELECT ?cur WHERE { ?c dbo:name "Czech Republic"@en . ?c dbo:currency ?cur }"#,
          SessionScript::rows(&[("?c", "name", "Czech Republic"), ("?c", "currency", "?cur")]),
          &["What is the currency of the Czech Republic?", "Czech Republic currency"], true),
        q("E7", "Designer of the Brooklyn Bridge", Easy,
          r#"SELECT ?d WHERE { ?b dbo:name "Brooklyn Bridge"@en . ?b dbo:designer ?d }"#,
          SessionScript::rows(&[("?b", "name", "Brooklyn Bridge"), ("?b", "designer", "?d")]),
          &["Who designed the Brooklyn Bridge?", "Brooklyn Bridge designer"], true),
        q("E8", "Wife of U.S. president Abraham Lincoln", Easy,
          r#"SELECT ?w WHERE { ?p dbo:name "Abraham Lincoln"@en . ?p dbo:spouse ?w }"#,
          SessionScript::rows(&[("?p", "name", "Abraham Lincoln"), ("?p", "spouse", "?wife")]),
          &["Who was the wife of Abraham Lincoln?", "Abraham Lincoln spouse"], true),
        q("E9", "Creator of Wikipedia", Easy,
          r#"SELECT ?c WHERE { ?w dbo:name "Wikipedia"@en . ?w dbo:creator ?c }"#,
          SessionScript::rows(&[("?w", "name", "Wikipedia"), ("?w", "creator", "?c")]),
          &["Who created Wikipedia?", "Wikipedia creator"], true),
        q("E10", "Depth of lake Placid", Easy,
          r#"SELECT ?d WHERE { ?l dbo:name "Lake Placid"@en . ?l dbo:depth ?d }"#,
          SessionScript::rows(&[("?l", "name", "Lake Placid"), ("?l", "depth", "?d")]),
          &["How deep is Lake Placid?", "Lake Placid depth"], true),
        // ----------------------------- Medium -----------------------------
        q("M1", "Instruments played by Cat Stevens", Medium,
          r#"SELECT ?i WHERE { ?a dbo:name "Cat Stevens"@en . ?a dbo:instrument ?i }"#,
          SessionScript::rows(&[("?a", "name", "Cat Stevens"), ("?a", "instrument", "?i")]),
          &["Which instruments does Cat Stevens play?", "Cat Stevens instruments"], true),
        q("M2", "Parents of the wife of Juan Carlos I", Medium,
          r#"SELECT ?par WHERE { ?jc dbo:name "Juan Carlos I"@en . ?jc dbo:spouse ?w . ?w dbo:parent ?par }"#,
          SessionScript::rows(&[
              ("?jc", "name", "Juan Carlos I"),
              ("?jc", "spouse", "?wife"),
              ("?wife", "parent", "?parent"),
          ]),
          &["Who are the parents of the wife of Juan Carlos I?"], false),
        q("M3", "U.S. state in which Fort Knox is located", Medium,
          r#"SELECT ?s WHERE { ?f dbo:name "Fort Knox"@en . ?f dbo:state ?s }"#,
          SessionScript::rows(&[("?f", "name", "Fort Knox"), ("?f", "state", "?s")]),
          &["In which U.S. state is Fort Knox located?", "Fort Knox state"], true),
        q("M4", "Person who is called Frank The Tank", Medium,
          r#"SELECT ?p WHERE { ?p dbo:nickname "Frank The Tank"@en }"#,
          SessionScript::rows(&[("?p", "nickname", "Frank The Tank")]),
          &["Who is called Frank The Tank?", "person nicknamed Frank The Tank"], true),
        q("M5", "Birthdays of all actors of the television show Charmed", Medium,
          r#"SELECT ?bd WHERE { ?show dbo:name "Charmed"@en . ?show dbo:starring ?actor . ?actor dbo:birthDate ?bd }"#,
          SessionScript::rows(&[
              ("?show", "name", "Charmed"),
              ("?show", "starring", "?actor"),
              ("?actor", "birth date", "?bd"),
          ]),
          &["What are the birthdays of the actors of Charmed?"], false),
        q("M6", "Country in which the Limerick Lake is located", Medium,
          r#"SELECT ?c WHERE { ?l dbo:name "Limerick Lake"@en . ?l dbo:country ?c }"#,
          SessionScript::rows(&[("?l", "name", "Limerick Lake"), ("?l", "country", "?c")]),
          &["In which country is Limerick Lake?", "Limerick Lake country"], true),
        q("M7", "Person to which Robert F. Kennedy's daughter is married", Medium,
          r#"SELECT ?h WHERE { ?rfk dbo:name "Robert F. Kennedy"@en . ?rfk dbo:child ?d . ?d dbo:spouse ?h }"#,
          SessionScript::rows(&[
              ("?rfk", "name", "Robert F. Kennedy"),
              ("?rfk", "child", "?daughter"),
              ("?daughter", "spouse", "?husband"),
          ]),
          &["Whom is Robert F. Kennedy's daughter married to?"], false),
        q("M8", "Number of people living in the capital of Australia", Medium,
          r#"SELECT ?pop WHERE { ?c dbo:name "Australia"@en . ?c dbo:capital ?cap . ?cap dbo:population ?pop }"#,
          SessionScript::rows(&[
              ("?c", "name", "Australia"),
              ("?c", "capital", "?capital"),
              ("?capital", "population", "?pop"),
          ]),
          &["How many people live in the capital of Australia?"], false),
        // ---------------------------- Difficult ---------------------------
        q("D1", "Chess players who died in the same place they were born in", Difficult,
          "SELECT ?p WHERE { ?p a dbo:ChessPlayer . ?p dbo:birthPlace ?place . ?p dbo:deathPlace ?place }",
          SessionScript::rows(&[
              ("?p", "type", "chess player"),
              ("?p", "birth place", "?place"),
              ("?p", "death place", "?place"),
          ]),
          &["Which chess players died where they were born?"], false),
        q("D2", "Books by William Goldman with more than 300 pages", Difficult,
          r#"SELECT ?b WHERE { ?a dbo:name "William Goldman"@en . ?b dbo:author ?a . ?b dbo:numberOfPages ?n . FILTER(?n > 300) }"#,
          SessionScript::rows(&[
              ("?a", "name", "William Goldman"),
              ("?b", "author", "?a"),
              ("?b", "number of pages", "?n"),
          ])
          .with_filter(gt("n", 300.0)),
          &["Which books by William Goldman have more than 300 pages?"], false),
        q("D3", "Books by Jack Kerouac which were published by Viking Press", Difficult,
          r#"SELECT ?b WHERE { ?a dbo:name "Jack Kerouac"@en . ?b dbo:author ?a . ?b dbo:publisher ?pub . ?pub rdfs:label "Viking Press"@en }"#,
          SessionScript::rows(&[
              ("?a", "name", "Jack Kerouac"),
              ("?b", "author", "?a"),
              ("?b", "publisher", "?pub"),
              ("?pub", "label", "Viking Press"),
          ]),
          &["Which books by Jack Kerouac were published by Viking Press?"], false),
        q("D4", "Films directed by Steven Spielberg with a budget of at least $80 million", Difficult,
          r#"SELECT ?f WHERE { ?d dbo:name "Steven Spielberg"@en . ?f dbo:director ?d . ?f dbo:budget ?b . FILTER(?b >= 8.0E7) }"#,
          SessionScript::rows(&[
              ("?d", "name", "Steven Spielberg"),
              ("?f", "director", "?d"),
              ("?f", "budget", "?b"),
          ])
          .with_filter(ge("b", 8.0e7)),
          &["Which films directed by Steven Spielberg had a budget of at least 80 million dollars?"], false),
        q("D5", "Most populous city in Australia", Difficult,
          r#"SELECT ?city WHERE { ?c dbo:name "Australia"@en . ?city dbo:country ?c . ?city dbo:population ?pop } ORDER BY DESC(?pop) LIMIT 1"#,
          SessionScript::rows(&[
              ("?c", "name", "Australia"),
              ("?city", "country", "?c"),
              ("?city", "population", "?pop"),
          ])
          .with_order("pop", true)
          .with_limit(1),
          &["What is the most populous city in Australia?"], false),
        q("D6", "Films starring Clint Eastwood direct by himself", Difficult,
          r#"SELECT ?f WHERE { ?e dbo:name "Clint Eastwood"@en . ?f dbo:starring ?e . ?f dbo:director ?e }"#,
          SessionScript::rows(&[
              ("?e", "name", "Clint Eastwood"),
              ("?f", "starring", "?e"),
              ("?f", "director", "?e"),
          ]),
          &["Which films starring Clint Eastwood did he direct himself?"], false),
        q("D7", "Presidents born in 1945", Difficult,
          r#"SELECT ?p WHERE { ?p a dbo:President . ?p dbo:birthDate ?bd . FILTER(year(?bd) = 1945) }"#,
          SessionScript::rows(&[("?p", "type", "president"), ("?p", "birth date", "?bd")])
              .with_filter(year_eq("bd", 1945)),
          &["Which presidents were born in 1945?"], false),
        q("D8", "Find each company that works in both the aerospace and medicine industries", Difficult,
          r#"SELECT ?c WHERE { ?c dbo:industry "Aerospace"@en . ?c dbo:industry "Medicine"@en }"#,
          SessionScript::rows(&[
              ("?c", "industry", "Aerospace"),
              ("?c", "industry", "Medicine"),
          ]),
          &["Which companies work in both aerospace and medicine?"], false),
        q("D9", "Number of inhabitants of the most populous city in Canada", Difficult,
          r#"SELECT ?pop WHERE { ?c dbo:name "Canada"@en . ?city dbo:country ?c . ?city dbo:population ?pop } ORDER BY DESC(?pop) LIMIT 1"#,
          SessionScript::rows(&[
              ("?c", "name", "Canada"),
              ("?city", "country", "?c"),
              ("?city", "population", "?pop"),
          ])
          .with_order("pop", true)
          .with_limit(1),
          &["How many inhabitants does the most populous city in Canada have?"], false),
    ]
}

/// Factoid questions auto-derived from the anchor entities, bringing the set
/// to 50 for the Table 1 comparison (QALD-5 has 50 questions).
pub fn factoid_extras() -> Vec<Question> {
    let specs: &[(&str, &str, &str)] = &[
        // (entity name, predicate keyword / gold predicate local, question stem)
        (
            "Salt Lake City",
            "population",
            "What is the population of Salt Lake City?",
        ),
        ("Sydney", "population", "What is the population of Sydney?"),
        (
            "Melbourne",
            "population",
            "What is the population of Melbourne?",
        ),
        (
            "Toronto",
            "population",
            "What is the population of Toronto?",
        ),
        (
            "Montreal",
            "population",
            "What is the population of Montreal?",
        ),
        ("Ottawa", "population", "What is the population of Ottawa?"),
        (
            "Canberra",
            "population",
            "What is the population of Canberra?",
        ),
        ("Alyssa Milano", "birthDate", "When was Alyssa Milano born?"),
        (
            "Holly Marie Combs",
            "birthDate",
            "When was Holly Marie Combs born?",
        ),
        (
            "Shannen Doherty",
            "birthDate",
            "When was Shannen Doherty born?",
        ),
        (
            "John F. Kennedy",
            "spouse",
            "Who is the spouse of John F. Kennedy?",
        ),
        (
            "John F. Kennedy",
            "birthDate",
            "When was John F. Kennedy born?",
        ),
        (
            "Margaret Thatcher",
            "child",
            "Who are the children of Margaret Thatcher?",
        ),
        (
            "Queen Sofia",
            "parent",
            "Who are the parents of Queen Sofia?",
        ),
        (
            "Robert F. Kennedy",
            "child",
            "Who is the child of Robert F. Kennedy?",
        ),
        (
            "Kathleen Kennedy",
            "spouse",
            "Who is the spouse of Kathleen Kennedy?",
        ),
        ("Australia", "capital", "What is the capital of Australia?"),
        ("Canada", "capital", "What is the capital of Canada?"),
        (
            "Limerick Lake",
            "country",
            "In which country is Limerick Lake located?",
        ),
        ("Fort Knox", "state", "In which state is Fort Knox?"),
        (
            "Brooklyn Bridge",
            "designer",
            "Who designed the Brooklyn Bridge?",
        ),
        ("Wikipedia", "creator", "Who is the creator of Wikipedia?"),
        ("Lake Placid", "depth", "What is the depth of Lake Placid?"),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (entity, pred, text))| {
            let keyword = sapphire_text::surface_form(pred);
            q(
                &format!("F{}", i + 1),
                text,
                Difficulty::Easy,
                &format!(r#"SELECT ?o WHERE {{ ?e dbo:name "{entity}"@en . ?e dbo:{pred} ?o }}"#),
                SessionScript::rows(&[("?e", "name", entity), ("?e", keyword.as_str(), "?o")]),
                &[],
                true,
            )
        })
        .collect()
}

/// The full 50-question comparison set (27 Appendix-B + 23 factoids).
pub fn qald_style_50() -> Vec<Question> {
    let mut all = appendix_b();
    all.extend(factoid_extras());
    all
}

/// Gold answers: the lexical forms of the gold query's first column.
pub fn gold_answers(question: &Question, endpoint: &dyn Endpoint) -> Vec<String> {
    let Ok(sols) = endpoint.select(&question.gold_sparql) else {
        return Vec::new();
    };
    let mut out: Vec<String> = sols
        .rows
        .iter()
        .filter_map(|r| {
            r.first()
                .and_then(|c| c.as_ref())
                .map(|t| t.lexical().to_string())
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Grade an obtained answer set against the gold answers, QALD-style:
///
/// * `Correct` — some column's distinct bound values equal the gold set
///   exactly (the system produced *the* answer set, not a superset soup).
/// * `Partial` — some column overlaps the gold set without matching it.
/// * `Wrong` — no gold answer appears anywhere (or the result is empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    /// Some column matches the gold answer set exactly.
    Correct,
    /// Gold answers are present but mixed with extraneous ones (or
    /// incomplete).
    Partial,
    /// No gold answer present.
    Wrong,
}

/// Grade a solution set.
pub fn grade(solutions: &Solutions, gold: &[String]) -> Grade {
    use std::collections::HashSet;
    if gold.is_empty() || solutions.is_empty() {
        return Grade::Wrong;
    }
    let gold_set: HashSet<&str> = gold.iter().map(String::as_str).collect();
    let mut best = Grade::Wrong;
    for col in 0..solutions.vars.len() {
        let values: HashSet<&str> = solutions
            .rows
            .iter()
            .filter_map(|r| r[col].as_ref())
            .map(|t| t.lexical())
            .collect();
        if values.is_empty() {
            continue;
        }
        if values == gold_set {
            return Grade::Correct;
        }
        if values.intersection(&gold_set).next().is_some() {
            best = Grade::Partial;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};

    fn endpoint() -> LocalEndpoint {
        LocalEndpoint::new(
            "dbpedia",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
        )
    }

    #[test]
    fn counts_match_the_paper() {
        let ab = appendix_b();
        assert_eq!(ab.len(), 27);
        assert_eq!(
            ab.iter()
                .filter(|q| q.difficulty == Difficulty::Easy)
                .count(),
            10
        );
        assert_eq!(
            ab.iter()
                .filter(|q| q.difficulty == Difficulty::Medium)
                .count(),
            8
        );
        assert_eq!(
            ab.iter()
                .filter(|q| q.difficulty == Difficulty::Difficult)
                .count(),
            9
        );
        assert_eq!(qald_style_50().len(), 50);
    }

    #[test]
    fn every_question_has_gold_answers() {
        let ep = endpoint();
        for q in qald_style_50() {
            let gold = gold_answers(&q, &ep);
            assert!(
                !gold.is_empty(),
                "question {} ({}) has no gold answers",
                q.id,
                q.text
            );
        }
    }

    #[test]
    fn gold_queries_are_selective() {
        let ep = endpoint();
        for q in appendix_b() {
            let gold = gold_answers(&q, &ep);
            assert!(
                gold.len() <= 20,
                "question {} gold set suspiciously large: {}",
                q.id,
                gold.len()
            );
        }
    }

    #[test]
    fn grading_logic() {
        let gold = vec!["a".to_string(), "b".to_string()];
        let full = Solutions {
            vars: vec!["x".into()],
            rows: vec![
                vec![Some(Term::literal("a"))],
                vec![Some(Term::literal("b"))],
            ],
        };
        assert_eq!(grade(&full, &gold), Grade::Correct);
        let part = Solutions {
            vars: vec!["x".into()],
            rows: vec![vec![Some(Term::literal("a"))]],
        };
        assert_eq!(grade(&part, &gold), Grade::Partial);
        // A superset is only partial: the user sees the answers buried in noise.
        let superset = Solutions {
            vars: vec!["x".into()],
            rows: vec![
                vec![Some(Term::literal("a"))],
                vec![Some(Term::literal("b"))],
                vec![Some(Term::literal("noise"))],
            ],
        };
        assert_eq!(grade(&superset, &gold), Grade::Partial);
        let wrong = Solutions {
            vars: vec!["x".into()],
            rows: vec![vec![Some(Term::literal("z"))]],
        };
        assert_eq!(grade(&wrong, &gold), Grade::Wrong);
        assert_eq!(grade(&Solutions::default(), &gold), Grade::Wrong);
    }

    #[test]
    fn ids_are_unique() {
        let all = qald_style_50();
        let mut ids: Vec<&str> = all.iter().map(|q| q.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
