//! An indexed, in-memory RDF graph.
//!
//! Triples are stored as interned id-triples in three rotated B-tree indexes
//! (SPO, POS, OSP), so every bound/unbound combination of a triple pattern is
//! answerable with a range scan — the same layout classic RDF stores use.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::interner::{Interner, TermId};
use crate::term::Term;

/// A triple of interned term ids, in (subject, predicate, object) order.
pub type IdTriple = [TermId; 3];

/// An in-memory RDF graph with SPO/POS/OSP indexes and a shared term interner.
#[derive(Default, Debug)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Access to the term interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a term without asserting any triple.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Look up the id of a term, if it occurs anywhere in the graph's interner.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id back to a term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Insert a triple of terms. Returns `true` if the triple was new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.interner.intern(s);
        let p = self.interner.intern(p);
        let o = self.interner.intern(o);
        self.insert_ids([s, p, o])
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    pub fn insert_ids(&mut self, t: IdTriple) -> bool {
        let (s, p, o) = (t[0].0, t[1].0, t[2].0);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// True if the exact triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.term_id(s), self.term_id(p), self.term_id(o)) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s.0, p.0, o.0)),
            _ => false,
        }
    }

    /// Iterate over all triples matching a pattern of optionally-bound ids.
    ///
    /// Chooses the most selective index for the bound positions. Results are
    /// produced in index order; every yielded triple is in (s, p, o) order.
    pub fn matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let mut out = Vec::new();
        self.for_each_matching(s, p, o, |t| {
            out.push(t);
            true
        });
        out
    }

    /// Count the triples matching a pattern without materializing them.
    pub fn count_matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        let mut n = 0;
        self.for_each_matching(s, p, o, |_| {
            n += 1;
            true
        });
        n
    }

    /// Visit each triple matching the pattern; the callback returns `false`
    /// to stop early (used by LIMIT-style early exits).
    pub fn for_each_matching<F>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) where
        F: FnMut(IdTriple) -> bool,
    {
        #[inline]
        fn t(a: u32, b: u32, c: u32) -> IdTriple {
            [TermId(a), TermId(b), TermId(c)]
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s.0, p.0, o.0)) {
                    f(t(s.0, p.0, o.0));
                }
            }
            (Some(s), Some(p), None) => {
                for &(a, b, c) in range2(&self.spo, s.0, p.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (Some(s), None, None) => {
                for &(a, b, c) in range1(&self.spo, s.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for &(b, c, a) in range2(&self.pos, p.0, o.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, Some(p), None) => {
                for &(b, c, a) in range1(&self.pos, p.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, None, Some(o)) => {
                for &(c, a, b) in range1(&self.osp, o.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                for &(c, a, b) in range2(&self.osp, o.0, s.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, None, None) => {
                for &(a, b, c) in self.spo.iter() {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
        }
    }

    /// Estimated cardinality of a pattern — used for join ordering. Exact for
    /// fully-indexed prefixes, which all our patterns are.
    pub fn cardinality(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (None, None, None) => self.len(),
            _ => self.count_matching(s, p, o),
        }
    }

    /// In-degree of a term: the number of triples in which it is the object.
    /// This powers the literal significance score (Definition 1).
    pub fn in_degree(&self, id: TermId) -> usize {
        range1(&self.osp, id.0).count()
    }

    /// Out-degree of a term: the number of triples in which it is the subject.
    pub fn out_degree(&self, id: TermId) -> usize {
        range1(&self.spo, id.0).count()
    }

    /// Per-predicate triple counts, optionally restricted to triples with
    /// literal objects. This is the statistic real endpoints keep for query
    /// planning and answer `GROUP BY ?p` aggregates from; the simulated
    /// endpoint uses it for the same purpose.
    pub fn predicate_counts(&self, literal_objects_only: bool) -> Vec<(TermId, usize)> {
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for &(p, o, _s) in self.pos.iter() {
            if literal_objects_only && !self.interner.resolve(TermId(o)).is_literal() {
                continue;
            }
            match out.last_mut() {
                Some((last, n)) if last.0 == p => *n += 1,
                _ => out.push((TermId(p), 1)),
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Per-type instance counts (subjects per `rdf:type` object).
    pub fn type_counts(&self) -> Vec<(TermId, usize)> {
        let type_term = Term::iri(crate::vocab::rdf::TYPE);
        let Some(type_id) = self.interner.get(&type_term) else {
            return Vec::new();
        };
        // The pos range for `rdf:type` is ordered by object, so each class's
        // triples are consecutive — count runs, exactly as
        // `predicate_counts` does. (A per-triple linear search of the output
        // was O(distinct classes) per triple: quadratic over ontology-heavy
        // graphs, and this runs during every §5 initialization.)
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for &(_p, o, _s) in range1(&self.pos, type_id.0) {
            match out.last_mut() {
                Some((last, n)) if last.0 == o => *n += 1,
                _ => out.push((TermId(o), 1)),
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterate over every triple as term references.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&Term, &Term, &Term)> {
        self.spo.iter().map(move |&(s, p, o)| {
            (
                self.interner.resolve(TermId(s)),
                self.interner.resolve(TermId(p)),
                self.interner.resolve(TermId(o)),
            )
        })
    }
}

fn range1(set: &BTreeSet<(u32, u32, u32)>, a: u32) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((
        Bound::Included((a, 0, 0)),
        Bound::Included((a, u32::MAX, u32::MAX)),
    ))
}

fn range2(
    set: &BTreeSet<(u32, u32, u32)>,
    a: u32,
    b: u32,
) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((
        Bound::Included((a, b, 0)),
        Bound::Included((a, b, u32::MAX)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o1"));
        g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o2"));
        g.insert(Term::iri("s1"), Term::iri("p2"), Term::iri("o1"));
        g.insert(Term::iri("s2"), Term::iri("p1"), Term::iri("o1"));
        g.insert(Term::iri("s2"), Term::iri("p2"), Term::en("two"));
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = sample();
        assert_eq!(g.len(), 5);
        assert!(!g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o1")));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn contains_exact() {
        let g = sample();
        assert!(g.contains(&Term::iri("s1"), &Term::iri("p1"), &Term::iri("o1")));
        assert!(!g.contains(&Term::iri("s1"), &Term::iri("p1"), &Term::en("two")));
        assert!(!g.contains(&Term::iri("nope"), &Term::iri("p1"), &Term::iri("o1")));
    }

    #[test]
    fn all_access_patterns_agree() {
        let g = sample();
        let s1 = g.term_id(&Term::iri("s1")).unwrap();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        let o1 = g.term_id(&Term::iri("o1")).unwrap();

        assert_eq!(g.matching(Some(s1), None, None).len(), 3);
        assert_eq!(g.matching(None, Some(p1), None).len(), 3);
        assert_eq!(g.matching(None, None, Some(o1)).len(), 3);
        assert_eq!(g.matching(Some(s1), Some(p1), None).len(), 2);
        assert_eq!(g.matching(None, Some(p1), Some(o1)).len(), 2);
        assert_eq!(g.matching(Some(s1), None, Some(o1)).len(), 2);
        assert_eq!(g.matching(Some(s1), Some(p1), Some(o1)).len(), 1);
        assert_eq!(g.matching(None, None, None).len(), 5);
    }

    #[test]
    fn matching_yields_spo_order_from_every_index() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        for t in g.matching(None, Some(p1), None) {
            assert_eq!(t[1], p1, "predicate position must hold the predicate");
        }
        let o1 = g.term_id(&Term::iri("o1")).unwrap();
        for t in g.matching(None, None, Some(o1)) {
            assert_eq!(t[2], o1, "object position must hold the object");
        }
    }

    #[test]
    fn degrees() {
        let g = sample();
        let o1 = g.term_id(&Term::iri("o1")).unwrap();
        let s1 = g.term_id(&Term::iri("s1")).unwrap();
        assert_eq!(g.in_degree(o1), 3);
        assert_eq!(g.out_degree(s1), 3);
        assert_eq!(g.in_degree(s1), 0);
    }

    #[test]
    fn early_exit_stops_scan() {
        let g = sample();
        let mut seen = 0;
        g.for_each_matching(None, None, None, |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn count_matches_materialized_len() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        assert_eq!(
            g.count_matching(None, Some(p1), None),
            g.matching(None, Some(p1), None).len()
        );
    }

    #[test]
    fn type_counts_match_a_naive_tally_on_a_many_class_graph() {
        // Many distinct classes with interleaved insert order: the run-walk
        // over the pos range must agree with a per-triple tally (the shape
        // the old O(distinct-classes)-per-triple scan handled correctly but
        // quadratically).
        let mut g = Graph::new();
        let rdf_type = Term::iri(crate::vocab::rdf::TYPE);
        for i in 0..50 {
            for c in 0..=(i % 7) {
                g.insert(
                    Term::iri(format!("s{i}-{c}")),
                    rdf_type.clone(),
                    Term::iri(format!("Class{c}")),
                );
            }
            // Non-type triples must not be counted.
            g.insert(
                Term::iri(format!("s{i}-0")),
                Term::iri("p"),
                Term::iri(format!("Class{}", i % 7)),
            );
        }
        let counts = g.type_counts();
        let mut naive: std::collections::HashMap<TermId, usize> = std::collections::HashMap::new();
        let type_id = g.term_id(&rdf_type).unwrap();
        for t in g.matching(None, Some(type_id), None) {
            *naive.entry(t[2]).or_default() += 1;
        }
        assert_eq!(counts.len(), naive.len());
        for (class, n) in &counts {
            assert_eq!(naive.get(class), Some(n));
        }
        // Ranked most-populous first, ties by TermId.
        assert!(counts
            .windows(2)
            .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
    }

    #[test]
    fn type_counts_empty_without_rdf_type() {
        assert!(sample().type_counts().is_empty());
    }
}
