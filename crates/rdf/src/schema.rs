//! RDFS class-hierarchy utilities (§5.1).
//!
//! Sapphire partitions literal retrieval by walking the `rdfs:subClassOf`
//! hierarchy from roots to leaves, descending a level whenever a query on a
//! class times out. This module builds that hierarchy from query answers.

use std::collections::{HashMap, HashSet, VecDeque};

/// A class hierarchy: a forest over class IRIs induced by `rdfs:subClassOf`.
///
/// Edges run child → parent in RDF (`child rdfs:subClassOf parent`); the
/// hierarchy stores both directions for traversal.
#[derive(Debug, Default, Clone)]
pub struct ClassHierarchy {
    children: HashMap<String, Vec<String>>,
    parents: HashMap<String, Vec<String>>,
    classes: HashSet<String>,
}

impl ClassHierarchy {
    /// Build a hierarchy from `(class, superclass)` pairs — the answer shape
    /// of initialization query Q2.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        let mut h = ClassHierarchy::default();
        for (sub, sup) in pairs {
            h.add_edge(sub.into(), sup.into());
        }
        h
    }

    /// Record `sub rdfs:subClassOf sup`.
    pub fn add_edge(&mut self, sub: String, sup: String) {
        if sub == sup {
            // Reflexive subClassOf statements add no structure.
            self.classes.insert(sub);
            return;
        }
        self.classes.insert(sub.clone());
        self.classes.insert(sup.clone());
        let children = self.children.entry(sup.clone()).or_default();
        if !children.contains(&sub) {
            children.push(sub.clone());
        }
        let parents = self.parents.entry(sub).or_default();
        if !parents.contains(&sup) {
            parents.push(sup);
        }
    }

    /// Register a class with no known edges.
    pub fn add_class(&mut self, class: String) {
        self.classes.insert(class);
    }

    /// All known classes.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(String::as_str)
    }

    /// Number of known classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the hierarchy has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Root classes: classes with no recorded superclass. These are the
    /// starting points for Sapphire's top-down literal retrieval.
    pub fn roots(&self) -> Vec<&str> {
        let mut roots: Vec<&str> = self
            .classes
            .iter()
            .filter(|c| !self.parents.contains_key(*c))
            .map(String::as_str)
            .collect();
        roots.sort_unstable();
        roots
    }

    /// Direct subclasses of `class` ("the next level of the class hierarchy,
    /// which contains smaller classes" — §5.1).
    pub fn subclasses(&self, class: &str) -> &[String] {
        self.children.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct superclasses of `class`.
    pub fn superclasses(&self, class: &str) -> &[String] {
        self.parents.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All descendants of `class` (excluding itself), breadth-first.
    pub fn descendants(&self, class: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(class);
        let mut out = Vec::new();
        while let Some(c) = queue.pop_front() {
            for child in self.subclasses(c) {
                if seen.insert(child.clone()) {
                    out.push(child.clone());
                    queue.push_back(child);
                }
            }
        }
        out
    }

    /// True if `sub` is a (transitive) subclass of `sup`.
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(sub);
        while let Some(c) = queue.pop_front() {
            for parent in self.superclasses(c) {
                if parent == sup {
                    return true;
                }
                if seen.insert(parent.clone()) {
                    queue.push_back(parent);
                }
            }
        }
        false
    }

    /// Breadth-first levels starting from the roots: level 0 is the roots,
    /// level 1 their direct subclasses, and so on. Classes reachable from
    /// multiple parents appear at their shallowest level only.
    pub fn levels(&self) -> Vec<Vec<String>> {
        let mut levels: Vec<Vec<String>> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut frontier: Vec<String> = self.roots().into_iter().map(str::to_string).collect();
        for c in &frontier {
            seen.insert(c.clone());
        }
        while !frontier.is_empty() {
            levels.push(frontier.clone());
            let mut next = Vec::new();
            for c in &frontier {
                for child in self.subclasses(c) {
                    if seen.insert(child.clone()) {
                        next.push(child.clone());
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClassHierarchy {
        // Thing ── Person ── Scientist
        //      │          └─ Politician
        //      └─ Place ──── City
        ClassHierarchy::from_pairs(vec![
            ("Person", "Thing"),
            ("Place", "Thing"),
            ("Scientist", "Person"),
            ("Politician", "Person"),
            ("City", "Place"),
        ])
    }

    #[test]
    fn roots_and_subclasses() {
        let h = sample();
        assert_eq!(h.roots(), vec!["Thing"]);
        let mut subs: Vec<_> = h.subclasses("Person").to_vec();
        subs.sort();
        assert_eq!(subs, vec!["Politician", "Scientist"]);
        assert!(h.subclasses("City").is_empty());
    }

    #[test]
    fn transitive_subclass() {
        let h = sample();
        assert!(h.is_subclass_of("Scientist", "Thing"));
        assert!(h.is_subclass_of("Scientist", "Person"));
        assert!(h.is_subclass_of("Scientist", "Scientist"));
        assert!(!h.is_subclass_of("Scientist", "Place"));
        assert!(!h.is_subclass_of("Thing", "Person"));
    }

    #[test]
    fn descendants_bfs() {
        let h = sample();
        let d = h.descendants("Thing");
        assert_eq!(d.len(), 5);
        // BFS: direct children come before grandchildren.
        let person_pos = d.iter().position(|c| c == "Person").unwrap();
        let scientist_pos = d.iter().position(|c| c == "Scientist").unwrap();
        assert!(person_pos < scientist_pos);
    }

    #[test]
    fn levels_are_shallowest_first() {
        let h = sample();
        let levels = h.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec!["Thing"]);
        assert_eq!(levels[1], vec!["Person", "Place"]);
        assert_eq!(levels[2], vec!["City", "Politician", "Scientist"]);
    }

    #[test]
    fn diamond_appears_once() {
        let mut h = sample();
        // Scientist also under Place (a nonsense diamond, but legal RDFS).
        h.add_edge("Scientist".into(), "Place".into());
        let levels = h.levels();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, h.len());
    }

    #[test]
    fn self_edge_is_ignored() {
        let mut h = ClassHierarchy::default();
        h.add_edge("A".into(), "A".into());
        assert_eq!(h.len(), 1);
        assert_eq!(h.roots(), vec!["A"]);
        assert!(h.subclasses("A").is_empty());
    }

    #[test]
    fn forest_with_two_roots() {
        let h = ClassHierarchy::from_pairs(vec![("B", "A"), ("D", "C")]);
        assert_eq!(h.roots(), vec!["A", "C"]);
    }
}
