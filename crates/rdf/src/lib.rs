//! # sapphire-rdf
//!
//! RDF data-model substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! Sapphire helps users write SPARQL queries over RDF datasets they do not
//! know. Everything in the paper ultimately stands on an RDF substrate: the
//! queried endpoints hold RDF graphs, initialization walks the RDFS class
//! hierarchy, and the QSM's structure relaxation explores the RDF graph
//! through SPARQL queries. This crate provides that substrate:
//!
//! * [`term`] — IRIs, literals (plain / language-tagged / datatyped), blank
//!   nodes, and N-Triples-style escaping.
//! * [`interner`] — dense `u32` term ids so triples are 12 bytes and joins are
//!   integer comparisons.
//! * [`graph`] — an in-memory graph with sorted columnar SPO/POS/OSP indexes
//!   (binary-search range scans, a B-tree delta overlay for incremental
//!   inserts, and a sealed bulk-build path).
//! * [`snapshot`] — a versioned, checksummed on-disk format whose layout is
//!   exactly the in-memory columns + interner table, so shards load a
//!   partition with one sequential read instead of regenerating it.
//! * [`ntriples`] / [`turtle`] — parsers and serializers for the text fixture
//!   formats.
//! * [`schema`] — `rdfs:subClassOf` hierarchy utilities that drive the
//!   paper's timeout-aware literal retrieval (§5.1).
//! * [`vocab`] — well-known IRIs (RDF/RDFS/OWL/XSD and the synthetic
//!   DBpedia-like namespaces).
//!
//! ## Example
//!
//! ```
//! use sapphire_rdf::{Graph, Term};
//!
//! let mut g = Graph::new();
//! g.insert(
//!     Term::iri("http://dbpedia.org/resource/New_York"),
//!     Term::iri("http://dbpedia.org/ontology/population"),
//!     Term::literal("8400000"),
//! );
//! let p = g.term_id(&Term::iri("http://dbpedia.org/ontology/population")).unwrap();
//! assert_eq!(g.matching(None, Some(p), None).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod interner;
pub mod ntriples;
pub mod partition;
pub mod schema;
pub mod snapshot;
pub mod term;
pub mod turtle;
pub mod vocab;

pub use graph::{Graph, IdTriple};
pub use interner::{FnvMap, Interner, TermId};
pub use partition::{shard_of, Partition, Partitioner};
pub use schema::ClassHierarchy;
pub use snapshot::SnapshotError;
pub use term::{Literal, Term};
