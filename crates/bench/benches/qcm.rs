//! QCM end-to-end benchmarks (§7.3.1): completion latency with the suffix
//! tree enabled vs disabled, and residual scan scaling with worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use sapphire_bench::{harvest_literals, harvest_predicates};
use sapphire_core::{CachedData, QueryCompletion, SapphireConfig};
use sapphire_datagen::{generate, DatasetConfig};

fn bench_completion(c: &mut Criterion) {
    let graph = generate(DatasetConfig::small(42));
    let literals = harvest_literals(&graph, "en", 80);
    let predicates = harvest_predicates(&graph);

    let mut group = c.benchmark_group("qcm_complete");
    group.sample_size(20);
    for (label, capacity) in [
        ("tree_40k", 40_000usize),
        ("tree_1k", 1_000),
        ("no_tree", 0),
    ] {
        let config = SapphireConfig {
            suffix_tree_capacity: capacity,
            processes: 4,
            ..SapphireConfig::default()
        };
        let cache = Arc::new(CachedData::from_raw(
            predicates.clone(),
            literals.clone(),
            &config,
        ));
        let qcm = QueryCompletion::new(cache, config);
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(qcm.complete(black_box("Ken")));
                black_box(qcm.complete(black_box("Spring")));
                black_box(qcm.complete(black_box("alma")));
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("qcm_scan_workers");
    group.sample_size(20);
    for p in [1usize, 2, 4, 8] {
        let config = SapphireConfig {
            suffix_tree_capacity: 0,
            processes: p,
            ..SapphireConfig::default()
        };
        let cache = Arc::new(CachedData::from_raw(
            predicates.clone(),
            literals.clone(),
            &config,
        ));
        let qcm = QueryCompletion::new(cache, config);
        group.bench_with_input(BenchmarkId::from_parameter(p), &qcm, |b, qcm| {
            b.iter(|| black_box(qcm.complete(black_box("ing"))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
