//! The evented serving front-end: thousands of open sessions on a small,
//! fixed worker pool.
//!
//! The paper's workload is interactive — users hold sessions open for
//! minutes and issue requests in sub-second bursts between long think
//! times. A thread-per-request tier spends its capacity *parked*: every
//! open session that is waiting for admission, or simply idle, pins a
//! stack. This module inverts that:
//!
//! * a **session** is a lightweight state machine (`session::SessionState`)
//!   — a FIFO queue of submitted requests plus a phase tag — never a
//!   thread;
//! * the **reactor** (`reactor::Reactor`) holds the sessions that have
//!   runnable work in one ready queue;
//! * a **worker pool** of `FrontendConfig::workers` threads pulls ready
//!   sessions and drives [`SapphireServer`] request execution to
//!   completion;
//! * **admission never parks a worker**: a full gate hands back an
//!   [`AdmissionTicket`](crate::admission::AdmissionTicket) and the
//!   *session* waits in `AwaitingGrant` — the queue wait lives in the
//!   reactor, not in a blocked thread
//!   ([`AdmissionController::admit_evented`](crate::admission::AdmissionController::admit_evented)).
//!
//! Per-session ordering is exactly submission order (one worker operates on
//! a session at a time), so the evented tier answers byte-for-byte like the
//! thread-per-request tier — pinned by the root `tests/frontend.rs` oracle.
//!
//! The front-end can also drive any other [`QueryService`] for raw queries
//! ([`FrontRequest::Query`]) — in particular a cluster edge router — so one
//! event loop fronts a single server and a sharded topology alike
//! ([`Frontend::with_raw_service`]).

pub(crate) mod reactor;
pub mod session;
mod worker;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use sapphire_endpoint::QueryService;

use crate::error::ServerError;
use crate::registry::SessionId;
use crate::server::SapphireServer;

pub use session::{FrontRequest, FrontResponse, ResponseCallback};

use session::{Phase, SessionState};

/// Tuning knobs of a [`Frontend`].
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Worker threads driving request execution. This is the front-end's
    /// whole thread budget — it does not grow with open sessions.
    pub workers: usize,
    /// Requests one session may have queued (its typing-burst backlog);
    /// submissions beyond it are rejected typed with
    /// [`ServerError::Overloaded`]. The bound is per-session back-pressure:
    /// a single runaway client cannot grow the front-end's memory.
    pub session_queue_depth: usize,
    /// Ready-queue depth beyond which the front-end sheds fidelity on its
    /// own initiative: dispatched runs carry degradation-tier floor 1 when
    /// the reactor's ready queue is deeper than this, floor 2 beyond twice
    /// it. The floor rides the server's `run_tiered` surface, so tier-0
    /// requests keep their no-shed guarantee. `None` (the default) leaves
    /// shedding to the server's own admission-queue signal.
    pub shed_ready_threshold: Option<usize>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(8)
                .min(8),
            session_queue_depth: 64,
            shed_ready_threshold: None,
        }
    }
}

impl FrontendConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        FrontendConfig {
            workers: 2,
            session_queue_depth: 64,
            shed_ready_threshold: None,
        }
    }
}

/// Point-in-time front-end observability snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendMetrics {
    /// Requests accepted by [`Frontend::submit`].
    pub submitted: u64,
    /// Responses delivered (every accepted request produces exactly one).
    pub completed: u64,
    /// Admission-controlled requests granted a free slot immediately.
    pub immediate_grants: u64,
    /// Admission-controlled requests that parked their session on a queued
    /// ticket instead of parking a worker thread.
    pub ticket_waits: u64,
    /// Parked sessions resumed by a grant callback.
    pub ticket_grants: u64,
    /// Grants that arrived in the same instant the deadline sweep fired —
    /// the slot is used, never bounced.
    pub late_grants: u64,
    /// Parked sessions settled to [`ServerError::QueueTimeout`].
    pub queue_timeouts: u64,
    /// Runs dispatched with a non-zero degradation-tier floor because the
    /// reactor's ready queue exceeded
    /// [`FrontendConfig::shed_ready_threshold`].
    pub shed_dispatches: u64,
    /// Sessions the front-end currently tracks.
    pub open_sessions: usize,
    /// Sessions in the ready queue right now.
    pub ready: usize,
    /// Sessions parked awaiting an admission grant right now.
    pub parked: usize,
    /// High-water mark of the ready queue.
    pub peak_ready: usize,
}

#[derive(Debug, Default)]
pub(crate) struct MetricCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    pub(crate) immediate_grants: AtomicU64,
    pub(crate) ticket_waits: AtomicU64,
    pub(crate) ticket_grants: AtomicU64,
    pub(crate) late_grants: AtomicU64,
    pub(crate) queue_timeouts: AtomicU64,
    pub(crate) shed_dispatches: AtomicU64,
}

/// The raw-query execution target.
pub(crate) enum RawTarget {
    /// The session server itself (evented admission applies).
    Server,
    /// An external service — e.g. a cluster edge router — with its own
    /// admission tiers.
    External(Arc<dyn QueryService>),
}

pub(crate) struct Shared {
    pub(crate) server: Arc<SapphireServer>,
    pub(crate) raw: RawTarget,
    pub(crate) config: FrontendConfig,
    pub(crate) reactor: reactor::Reactor,
    sessions: RwLock<HashMap<u64, Arc<Mutex<SessionState>>>>,
    pub(crate) counters: MetricCounters,
}

impl Shared {
    pub(crate) fn session(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        self.sessions.read().unwrap().get(&id).cloned()
    }

    pub(crate) fn forget_session(&self, id: u64) {
        self.sessions.write().unwrap().remove(&id);
    }

    /// Admission grant callback target: a parked session becomes ready.
    pub(crate) fn on_grant(&self, id: u64) {
        let Some(state_arc) = self.session(id) else {
            return;
        };
        let mut st = state_arc.lock().unwrap();
        if st.phase == Phase::AwaitingGrant {
            st.phase = Phase::Queued;
            drop(st);
            self.reactor.schedule(id);
        }
        // Any other phase: a worker owns the session right now and its
        // re-park path double-checks the ticket, so the wake is not lost.
    }

    /// Deliver one response (counts it; every accepted request passes
    /// through here exactly once).
    pub(crate) fn reply(
        &self,
        respond: ResponseCallback,
        result: Result<FrontResponse, ServerError>,
    ) {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        respond(result);
    }
}

/// The evented front-end: see the module docs.
pub struct Frontend {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Frontend {
    /// Stand a front-end over `server`; raw queries execute on the server
    /// itself.
    pub fn new(server: Arc<SapphireServer>, config: FrontendConfig) -> Self {
        Self::build(server, RawTarget::Server, config)
    }

    /// Stand a front-end whose raw-query requests execute on `raw` — any
    /// [`QueryService`], e.g. a cluster edge router — while session
    /// requests (QCM/QSM) stay on `server`. One event loop, multiple tiers.
    pub fn with_raw_service(
        server: Arc<SapphireServer>,
        raw: Arc<dyn QueryService>,
        config: FrontendConfig,
    ) -> Self {
        Self::build(server, RawTarget::External(raw), config)
    }

    fn build(server: Arc<SapphireServer>, raw: RawTarget, config: FrontendConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            server,
            raw,
            config,
            reactor: reactor::Reactor::new(),
            sessions: RwLock::new(HashMap::new()),
            counters: MetricCounters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sapphire-fe-{i}"))
                    .spawn(move || worker::worker_loop(shared))
                    .expect("worker thread spawns")
            })
            .collect();
        Frontend {
            shared,
            workers: handles,
        }
    }

    /// The server behind this front-end.
    pub fn server(&self) -> &Arc<SapphireServer> {
        &self.shared.server
    }

    /// Open an interactive session for `tenant` and register it with the
    /// event loop.
    pub fn open_session(&self, tenant: &str) -> Result<SessionId, ServerError> {
        if self.shared.reactor.is_shutdown() {
            return Err(ServerError::ShuttingDown);
        }
        let id = self.shared.server.open_session(tenant)?;
        self.shared
            .sessions
            .write()
            .unwrap()
            .insert(id.0, Arc::new(Mutex::new(SessionState::new())));
        Ok(id)
    }

    /// Submit one request on `id`'s queue. Never blocks.
    ///
    /// The callback fires exactly once — later, from a worker, with the
    /// response; or synchronously right here with the typed error when the
    /// submission itself is rejected (unknown/closed session, per-session
    /// queue full, front-end shutting down). The same error is also
    /// returned, so submit-loop callers can react without waiting.
    pub fn submit(
        &self,
        id: SessionId,
        request: FrontRequest,
        respond: ResponseCallback,
    ) -> Result<(), ServerError> {
        let reject = |e: ServerError, respond: ResponseCallback| {
            respond(Err(e.clone()));
            Err(e)
        };
        if self.shared.reactor.is_shutdown() {
            return reject(ServerError::ShuttingDown, respond);
        }
        let Some(state_arc) = self.shared.session(id.0) else {
            return reject(ServerError::UnknownSession(id), respond);
        };
        // Begin the sampled trace before taking the session lock (the tenant
        // lookup takes the registry lock). One relaxed load when sampling is
        // off — the default — so untraced submission pays nothing.
        let obs = self.shared.server.obs();
        let trace = if obs.sampling() == 0 {
            None
        } else {
            let tenant = self
                .shared
                .server
                .session_tenant(id)
                .unwrap_or_else(|_| String::new());
            obs.begin_trace(request.kind(), &tenant)
        };
        let mut st = state_arc.lock().unwrap();
        if st.closed {
            drop(st);
            return reject(ServerError::UnknownSession(id), respond);
        }
        if st.backlog() >= self.shared.config.session_queue_depth.max(1) {
            let depth = st.backlog();
            drop(st);
            return reject(
                ServerError::Overloaded {
                    in_flight: 0,
                    queue_depth: depth,
                },
                respond,
            );
        }
        st.queue.push_back(session::QueuedRequest {
            request,
            respond,
            enqueued: std::time::Instant::now(),
            trace,
        });
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let kick = st.phase == Phase::Idle;
        if kick {
            st.phase = Phase::Queued;
        }
        drop(st);
        if kick {
            self.shared.reactor.schedule(id.0);
        }
        Ok(())
    }

    /// Submit and wait for the response — the blocking convenience for
    /// tests and simple clients. Must not be called from inside a response
    /// callback (it would wait on the worker it runs on).
    pub fn call(&self, id: SessionId, request: FrontRequest) -> Result<FrontResponse, ServerError> {
        struct Slot {
            done: Mutex<Option<Result<FrontResponse, ServerError>>>,
            cv: Condvar,
        }
        let slot = Arc::new(Slot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let cb_slot = slot.clone();
        // The submission error also arrives through the callback; surface
        // the callback-delivered result either way so the two reporting
        // paths can never disagree.
        let _ = self.submit(
            id,
            request,
            Box::new(move |result| {
                *cb_slot.done.lock().unwrap() = Some(result);
                cb_slot.cv.notify_one();
            }),
        );
        let mut done = slot.done.lock().unwrap();
        while done.is_none() {
            done = slot.cv.wait(done).unwrap();
        }
        done.take().expect("loop exits only once filled")
    }

    /// Requests queued across all sessions plus sessions parked on
    /// admission — the front-end's total backlog.
    pub fn backlog(&self) -> usize {
        let sessions = self.shared.sessions.read().unwrap();
        sessions.values().map(|s| s.lock().unwrap().backlog()).sum()
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> FrontendMetrics {
        let (ready, parked, _busy) = self.shared.reactor.load();
        FrontendMetrics {
            submitted: self.shared.counters.submitted.load(Ordering::Relaxed),
            completed: self.shared.counters.completed.load(Ordering::Relaxed),
            immediate_grants: self
                .shared
                .counters
                .immediate_grants
                .load(Ordering::Relaxed),
            ticket_waits: self.shared.counters.ticket_waits.load(Ordering::Relaxed),
            ticket_grants: self.shared.counters.ticket_grants.load(Ordering::Relaxed),
            late_grants: self.shared.counters.late_grants.load(Ordering::Relaxed),
            queue_timeouts: self.shared.counters.queue_timeouts.load(Ordering::Relaxed),
            shed_dispatches: self.shared.counters.shed_dispatches.load(Ordering::Relaxed),
            open_sessions: self.shared.sessions.read().unwrap().len(),
            ready,
            parked,
            peak_ready: self.shared.reactor.peak_ready(),
        }
    }

    /// Everything this front-end and its server export, as one
    /// [`sapphire_obs::MetricsHub`] — server/cache/model counters, per-stage
    /// latency sections, and a `frontend` section — renderable as JSON or
    /// Prometheus text.
    pub fn export_metrics(&self) -> sapphire_obs::MetricsHub {
        let mut hub = self.shared.server.export_metrics();
        let m = self.metrics();
        hub.section("frontend")
            .field("submitted", m.submitted)
            .field("completed", m.completed)
            .field("immediate_grants", m.immediate_grants)
            .field("ticket_waits", m.ticket_waits)
            .field("ticket_grants", m.ticket_grants)
            .field("late_grants", m.late_grants)
            .field("queue_timeouts", m.queue_timeouts)
            .field("shed_dispatches", m.shed_dispatches)
            .field("open_sessions", m.open_sessions)
            .field("ready", m.ready)
            .field("parked", m.parked)
            .field("peak_ready", m.peak_ready);
        hub
    }

    /// Drain and stop: reject new intake typed ([`ServerError::ShuttingDown`]),
    /// finish every queued request and parked admission (each gets its
    /// response), then join the workers. Returns the final metrics —
    /// `completed == submitted` is the drain guarantee the shutdown test
    /// pins.
    pub fn shutdown(mut self) -> FrontendMetrics {
        self.shared.reactor.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().expect("front-end workers never panic");
        }
        self.metrics()
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains: otherwise queued
        // callbacks (and their callers) would silently never fire.
        self.shared.reactor.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use sapphire_core::prelude::*;
    use sapphire_core::session::TripleInput;
    use sapphire_core::InitMode;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn pum() -> Arc<PredictiveUserModel> {
        let graph = sapphire_rdf::turtle::parse(
            r#"res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en ."#,
        )
        .unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            graph,
            EndpointLimits::warehouse(),
        ));
        Arc::new(
            PredictiveUserModel::initialize(
                vec![ep],
                Lexicon::dbpedia_default(),
                SapphireConfig::for_tests(),
                InitMode::Federated,
            )
            .unwrap(),
        )
    }

    fn frontend(config: ServerConfig) -> Frontend {
        Frontend::new(
            Arc::new(SapphireServer::new(pum(), config)),
            FrontendConfig::for_tests(),
        )
    }

    #[test]
    fn requests_execute_in_submission_order_per_session() {
        let fe = frontend(ServerConfig::for_tests());
        let s = fe.open_session("alice").unwrap();
        fe.call(
            s,
            FrontRequest::SetRow {
                idx: 0,
                input: TripleInput::new("?p", "surname", "Kennedy"),
            },
        )
        .unwrap();
        let out = match fe.call(s, FrontRequest::Run).unwrap() {
            FrontResponse::Run(out) => out,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(out.executed);
        assert_eq!(out.answers.total_rows(), 1);
        assert_eq!(out.attempts, 1);
        let completion = match fe.call(
            s,
            FrontRequest::Complete {
                typed: "Kenn".into(),
            },
        ) {
            Ok(FrontResponse::Completion(c)) => c,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(!completion.suggestions.is_empty());
        assert!(matches!(
            fe.call(s, FrontRequest::Close),
            Ok(FrontResponse::Closed)
        ));
        assert_eq!(fe.server().metrics().open_sessions, 0);
    }

    #[test]
    fn workers_are_not_parked_by_a_full_admission_gate() {
        // One execution slot, held externally: an admitted-path request must
        // park its *session* on a ticket while both workers keep serving
        // other sessions' immediate requests.
        let fe = frontend(ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 8,
            queue_wait: Duration::from_secs(5),
            ..ServerConfig::for_tests()
        });
        let blocked = fe.open_session("alice").unwrap();
        let nimble = fe.open_session("bob").unwrap();
        let slot = fe.server().hold_slot().unwrap();

        let got_completion = Arc::new(AtomicUsize::new(0));
        let flag = got_completion.clone();
        fe.submit(
            blocked,
            FrontRequest::Complete {
                typed: "Kenn".into(),
            },
            Box::new(move |r| {
                r.expect("granted after the slot frees");
                flag.store(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        // Wait until the session is genuinely parked on its ticket.
        while fe.metrics().parked == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got_completion.load(Ordering::SeqCst), 0);

        // Both workers are free: immediate requests on another session
        // complete promptly even though the gate is full.
        let t = std::time::Instant::now();
        for i in 0..16 {
            fe.call(
                nimble,
                FrontRequest::SetRow {
                    idx: i,
                    input: TripleInput::new("?p", "name", "?n"),
                },
            )
            .unwrap();
        }
        assert!(
            t.elapsed() < Duration::from_millis(500),
            "immediate requests stalled behind a parked admission: {:?}",
            t.elapsed()
        );

        drop(slot);
        while got_completion.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let m = fe.metrics();
        assert_eq!(m.ticket_waits, 1, "the wait was a ticket, not a thread");
        assert_eq!(m.ticket_grants + m.late_grants, 1);
        assert_eq!(m.queue_timeouts, 0);
    }

    #[test]
    fn parked_session_times_out_typed_at_its_deadline() {
        let fe = frontend(ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 8,
            queue_wait: Duration::from_millis(30),
            ..ServerConfig::for_tests()
        });
        let s = fe.open_session("alice").unwrap();
        let slot = fe.server().hold_slot().unwrap();
        let err = fe
            .call(
                s,
                FrontRequest::Complete {
                    typed: "Kenn".into(),
                },
            )
            .expect_err("deadline passes while the slot is held");
        assert!(matches!(err, ServerError::QueueTimeout { .. }), "{err:?}");
        let m = fe.metrics();
        assert_eq!(m.queue_timeouts, 1);
        assert_eq!(m.parked, 0, "settled sessions leave the parked set");
        assert_eq!(
            fe.server().metrics().rejected_queue_timeout,
            1,
            "the server ledger sees evented rejections too"
        );
        drop(slot);
        // The session is healthy afterwards.
        fe.call(
            s,
            FrontRequest::Complete {
                typed: "Kenn".into(),
            },
        )
        .expect("slot free again");
    }

    #[test]
    fn session_queue_depth_is_typed_backpressure() {
        let fe = Frontend::new(
            Arc::new(SapphireServer::new(pum(), ServerConfig::for_tests())),
            FrontendConfig {
                workers: 1,
                session_queue_depth: 2,
                shed_ready_threshold: None,
            },
        );
        let s = fe.open_session("alice").unwrap();
        // Hold the single worker hostage with a parked admission on another
        // session? Simpler: saturate the queue faster than one worker can
        // drain by submitting from under the session's own lock-free burst.
        let accepted = Arc::new(AtomicUsize::new(0));
        let rejected = Arc::new(AtomicUsize::new(0));
        let mut overflowed = false;
        for i in 0..64 {
            let a = accepted.clone();
            let r = rejected.clone();
            let outcome = fe.submit(
                s,
                FrontRequest::SetRow {
                    idx: i % 4,
                    input: TripleInput::new("?p", "name", "?n"),
                },
                Box::new(move |result| {
                    match result {
                        Ok(_) => a.fetch_add(1, Ordering::SeqCst),
                        Err(_) => r.fetch_add(1, Ordering::SeqCst),
                    };
                }),
            );
            if let Err(e) = outcome {
                assert!(
                    matches!(e, ServerError::Overloaded { .. }),
                    "typed backlog rejection, got {e:?}"
                );
                overflowed = true;
            }
        }
        let m = fe.shutdown();
        assert_eq!(m.completed, m.submitted, "every accepted request answered");
        assert_eq!(
            accepted.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst),
            64,
            "every submission got exactly one callback"
        );
        assert!(
            overflowed || accepted.load(Ordering::SeqCst) == 64,
            "either the cap bit or the worker kept up"
        );
    }

    #[test]
    fn shutdown_drains_and_rejects_new_intake() {
        let fe = frontend(ServerConfig::for_tests());
        let s = fe.open_session("alice").unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = done.clone();
            fe.submit(
                s,
                FrontRequest::Complete {
                    typed: "Kenn".into(),
                },
                Box::new(move |r| {
                    r.expect("drained, not dropped");
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        let metrics = fe.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8, "every callback fired");
        assert_eq!(metrics.completed, metrics.submitted);
        assert_eq!(metrics.ready, 0);
        assert_eq!(metrics.parked, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_typed() {
        let fe = frontend(ServerConfig::for_tests());
        let s = fe.open_session("alice").unwrap();
        let shared = fe.shared.clone();
        shared.reactor.begin_shutdown();
        let cb_seen = Arc::new(AtomicUsize::new(0));
        let flag = cb_seen.clone();
        let err = fe
            .submit(
                s,
                FrontRequest::Run,
                Box::new(move |r| {
                    assert!(matches!(r, Err(ServerError::ShuttingDown)));
                    flag.store(1, Ordering::SeqCst);
                }),
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::ShuttingDown));
        assert_eq!(cb_seen.load(Ordering::SeqCst), 1, "callback still fired");
        assert!(matches!(
            fe.open_session("bob"),
            Err(ServerError::ShuttingDown)
        ));
    }

    #[test]
    fn ready_queue_backlog_sheds_tiers_but_never_onto_tier_zero() {
        // Front-end-initiated shedding: one worker, threshold 0, so ANY
        // ready-queue backlog at dispatch time floors the run's tier. The
        // worker is pinned deterministically by blocking inside the first
        // run's callback while the backlog is submitted behind it.
        let fe = Frontend::new(
            Arc::new(SapphireServer::new(pum(), ServerConfig::for_tests())),
            FrontendConfig {
                workers: 1,
                shed_ready_threshold: Some(0),
                ..FrontendConfig::for_tests()
            },
        );
        // Two literal rows: the QSM only honors a degradation tier when the
        // query has >= 2 literal groups to relax (a single-literal query
        // reports tier 0 at every tier by design).
        let rows = |fe: &Frontend, s: SessionId| {
            fe.call(
                s,
                FrontRequest::SetRow {
                    idx: 0,
                    input: TripleInput::new("?p", "surname", "Kennedy"),
                },
            )
            .unwrap();
            fe.call(
                s,
                FrontRequest::SetRow {
                    idx: 1,
                    input: TripleInput::new("?p", "name", "John F. Kennedy"),
                },
            )
            .unwrap();
        };
        let sessions: Vec<_> = (0..8)
            .map(|i| {
                let s = fe.open_session(&format!("user{i}")).unwrap();
                rows(&fe, s);
                s
            })
            .collect();

        // Pin the single worker: its first run's callback blocks until the
        // gate opens, so every later submission lands in the ready queue.
        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let tiers = Arc::new(std::sync::Mutex::new(Vec::new()));
        let pending = Arc::new(AtomicUsize::new(sessions.len()));
        {
            let gate = gate.clone();
            let tiers = tiers.clone();
            let pending = pending.clone();
            fe.submit(
                sessions[0],
                FrontRequest::Run,
                Box::new(move |r| {
                    let out = match r.expect("run succeeds") {
                        FrontResponse::Run(out) => out,
                        other => panic!("unexpected response {other:?}"),
                    };
                    tiers.lock().unwrap().push(out.suggestions.tier);
                    let (lock, cvar) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cvar.wait(open).unwrap();
                    }
                    pending.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        for &s in &sessions[1..] {
            let tiers = tiers.clone();
            let pending = pending.clone();
            fe.submit(
                s,
                FrontRequest::Run,
                Box::new(move |r| {
                    let out = match r.expect("run succeeds") {
                        FrontResponse::Run(out) => out,
                        other => panic!("unexpected response {other:?}"),
                    };
                    tiers.lock().unwrap().push(out.suggestions.tier);
                    pending.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        while pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }

        let tiers = tiers.lock().unwrap().clone();
        assert!(
            tiers.iter().any(|&t| t > 0),
            "a dispatch behind the pinned worker must have shed: {tiers:?}"
        );
        assert!(fe.metrics().shed_dispatches >= 1);

        // Tier-0 isolation: with the backlog drained, the same query run
        // fresh must come back full-fidelity — the tier-keyed caches never
        // leak a shed answer into a tier-0 lookup.
        let calm = fe.open_session("calm").unwrap();
        rows(&fe, calm);
        let out = match fe.call(calm, FrontRequest::Run).unwrap() {
            FrontResponse::Run(out) => out,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(out.suggestions.tier, 0, "tier-0 lookup saw a shed answer");
        assert!(!out.suggestions.degraded);
        assert!(out.executed);
    }
}
