//! Keyword extraction from IRIs and literals.
//!
//! Sapphire assumes "it is simpler and more intuitive for users to express
//! their information needs using keywords rather than using URIs" (§5.1), so
//! both the QCM and QSM match user keywords against the *surface forms* of
//! predicates and entities. This module turns
//! `http://dbpedia.org/ontology/almaMater` into `alma mater`.

/// The local name of an IRI: the segment after the last `#` or `/`.
pub fn local_name(iri: &str) -> &str {
    let after_hash = iri.rsplit('#').next().unwrap_or(iri);
    after_hash.rsplit('/').next().unwrap_or(after_hash)
}

/// Split an identifier into lowercase words on camelCase boundaries,
/// underscores, hyphens, and digit transitions.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c == '_' || c == '-' || c == ' ' || c == '.' {
            if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            prev_lower = false;
            continue;
        }
        if c.is_uppercase() && prev_lower && !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
        current.extend(c.to_lowercase());
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// The human-readable surface form of a predicate or entity IRI:
/// `…/almaMater` → `alma mater`, `…/New_York` → `new york`.
pub fn surface_form(iri: &str) -> String {
    split_identifier(local_name(iri)).join(" ")
}

/// Lowercased keywords of any text (literal values, user input).
pub fn keywords(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// A normalized form for keyword-level matching: lowercase, single-spaced.
pub fn normalize(text: &str) -> String {
    keywords(text).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_names() {
        assert_eq!(
            local_name("http://dbpedia.org/ontology/almaMater"),
            "almaMater"
        );
        assert_eq!(
            local_name("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            "type"
        );
        assert_eq!(local_name("plain"), "plain");
    }

    #[test]
    fn camel_case_split() {
        assert_eq!(split_identifier("almaMater"), vec!["alma", "mater"]);
        assert_eq!(split_identifier("birthPlace"), vec!["birth", "place"]);
        assert_eq!(split_identifier("New_York"), vec!["new", "york"]);
        assert_eq!(split_identifier("HTTPServer"), vec!["httpserver"]);
        assert_eq!(split_identifier("subClassOf"), vec!["sub", "class", "of"]);
        assert!(split_identifier("").is_empty());
    }

    #[test]
    fn surface_forms() {
        assert_eq!(
            surface_form("http://dbpedia.org/ontology/almaMater"),
            "alma mater"
        );
        assert_eq!(
            surface_form("http://dbpedia.org/resource/John_F._Kennedy"),
            "john f kennedy"
        );
    }

    #[test]
    fn keyword_extraction() {
        assert_eq!(
            keywords("How many people live in New York?"),
            vec!["how", "many", "people", "live", "in", "new", "york"]
        );
        assert_eq!(normalize("  New   York!  "), "new york");
        assert!(keywords("???").is_empty());
    }
}
