//! The Query Suggestion Module (§6.2).
//!
//! Invoked whenever a query executes. Produces suggestions in the paper's two
//! directions: **alternative terms** (Algorithm 2 — "did you mean
//! *predicate′* instead of *predicate*?") and **relaxed structure**
//! (Algorithm 3 — reconnect the query's literals through paths that actually
//! exist in the data). Both run against the federated processor, and
//! suggested queries arrive with their answers prefetched.

pub mod alternatives;
pub mod neighborhood;
pub mod relax;

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sapphire_endpoint::FederatedProcessor;
use sapphire_rdf::{Literal, Term};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, TermPattern};
use sapphire_text::Lexicon;

use crate::cache::CachedData;
use crate::config::SapphireConfig;

pub use alternatives::{AltCacheStats, AlteredPosition, AlternativeFinder, TermAlternative};
pub use neighborhood::{Neighbor, NeighborhoodCache, NeighborhoodStats};
pub use relax::{RelaxedQuery, StructureRelaxer};

/// A relaxed-structure suggestion with prefetched answers.
#[derive(Debug, Clone)]
pub struct StructureSuggestion {
    /// The relaxation result.
    pub relaxed: RelaxedQuery,
    /// Prefetched answers of the relaxed query.
    pub answers: Solutions,
}

/// Everything the QSM produced for one executed query.
#[derive(Debug, Clone, Default)]
pub struct QsmOutput {
    /// "Did you mean …" single-term rewrites.
    pub alternatives: Vec<TermAlternative>,
    /// Structure relaxations.
    pub relaxations: Vec<StructureSuggestion>,
    /// Every ranked rewrite candidate *before* the "returns answers" cut
    /// (answers not prefetched). A cluster edge merges these across shards
    /// and applies the cut against the global answer set; single-box users
    /// read [`alternatives`](Self::alternatives). Shared (`Arc`) because
    /// `QsmOutput` is cloned per run request on the serving hot path and the
    /// candidate list (one rewritten query per candidate) must stay a
    /// pointer bump there.
    pub candidates: Arc<Vec<TermAlternative>>,
    /// Wall-clock time spent producing the suggestions (§7.3.2 reports ~10 s
    /// on live DBpedia; ours is dominated by the simulated endpoint).
    pub elapsed: Duration,
    /// The budget-ladder tier the Steiner relaxation ran at
    /// (0 = the full [`SteinerConfig::query_budget`](crate::SteinerConfig)).
    pub tier: usize,
    /// True when [`tier`](Self::tier) > 0: the relaxation ran with a reduced
    /// budget because the serving layer chose to shed under load. A caching
    /// layer must key degraded output separately from full output — the two
    /// may legitimately differ for the same query.
    pub degraded: bool,
}

impl QsmOutput {
    /// True if the QSM found nothing to suggest.
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty() && self.relaxations.is_empty()
    }

    /// Total number of suggestions.
    pub fn len(&self) -> usize {
        self.alternatives.len() + self.relaxations.len()
    }
}

/// The Query Suggestion Module.
pub struct QuerySuggestion {
    finder: AlternativeFinder,
    config: SapphireConfig,
    /// Cross-request Steiner expansion cache, shared by every relaxation
    /// against this model (the model's data is immutable, so neighbor lists
    /// are pure functions of it — see [`neighborhood`]).
    neighborhood: Arc<NeighborhoodCache>,
    /// Observability handle installed by the serving tier (write-once).
    /// Purely additive: stage timings and trace spans land here, never
    /// anything that feeds back into what the QSM computes.
    obs: OnceLock<Arc<sapphire_obs::Obs>>,
}

impl QuerySuggestion {
    /// Build a QSM over a cache and lexicon.
    pub fn new(cache: Arc<CachedData>, lexicon: Lexicon, config: SapphireConfig) -> Self {
        QuerySuggestion {
            finder: AlternativeFinder::new(cache, lexicon, config.clone()),
            neighborhood: Arc::new(NeighborhoodCache::new(
                config.neighborhood_cache_shards,
                config.neighborhood_cache_capacity,
            )),
            config,
            obs: OnceLock::new(),
        }
    }

    /// Install the serving tier's observability handle (first caller wins;
    /// later installs are ignored so shared models behave deterministically).
    pub fn install_obs(&self, obs: Arc<sapphire_obs::Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Access the underlying alternative finder.
    pub fn finder(&self) -> &AlternativeFinder {
        &self.finder
    }

    /// The shared expansion cache (e.g. for observability snapshots).
    pub fn neighborhood(&self) -> &Arc<NeighborhoodCache> {
        &self.neighborhood
    }

    /// Produce suggestions for an executed query (full budget tier).
    pub fn suggest(&self, query: &SelectQuery, fed: &FederatedProcessor) -> QsmOutput {
        self.suggest_tiered(query, fed, 0)
    }

    /// Produce suggestions with the Steiner relaxation running at budget
    /// `tier` (see [`SteinerConfig::budget_for`](crate::SteinerConfig::budget_for)).
    /// Tier 0 is the full budget; higher tiers mark the output `degraded`.
    pub fn suggest_tiered(
        &self,
        query: &SelectQuery,
        fed: &FederatedProcessor,
        tier: usize,
    ) -> QsmOutput {
        let start = Instant::now();
        // Build the shared candidate list first (predicates lead, matching
        // the presentation order), then prefetch by borrowing slices of it —
        // the prefetch pass clones only the entries it keeps.
        let (predicate_candidates, literal_candidates) = self.finder.candidate_lists(query);
        let predicate_count = predicate_candidates.len();
        let candidates: Arc<Vec<TermAlternative>> = Arc::new(
            predicate_candidates
                .into_iter()
                .chain(literal_candidates)
                .collect(),
        );
        let half = (self.config.k / 2).max(1);
        let mut alternatives =
            self.finder
                .top_with_answers(&candidates[..predicate_count], half, fed);
        alternatives.extend(self.finder.top_with_answers(
            &candidates[predicate_count..],
            half,
            fed,
        ));

        // Structure relaxation: seed groups are each query literal plus its
        // top k−1 alternatives (Algorithm 3 line 3).
        let literals = query_literals(query);
        // The budget tier only touches the relaxation; a query that cannot
        // relax (fewer than two literal groups) produces the same bytes at
        // every tier and must not be labeled degraded — a wrong flag would
        // cost it cacheability (tier-keyed entries, and a cluster edge
        // declines to cache degraded merges) and over-count degraded runs.
        let tier = if literals.len() >= 2 { tier } else { 0 };
        let mut relaxations = Vec::new();
        if literals.len() >= 2 {
            let groups: Vec<Vec<Term>> = literals
                .iter()
                .map(|lit| {
                    let mut group = vec![ground_literal(lit, &self.config.language)];
                    for (alt, _) in self
                        .finder
                        .literal_alternatives(&lit.value)
                        .iter()
                        .take(self.config.steiner.seeds_per_group.saturating_sub(1))
                    {
                        group.push(Term::Literal(Literal::lang_tagged(
                            alt.clone(),
                            self.config.language.clone(),
                        )));
                    }
                    group
                })
                .collect();
            let preferred = preferred_predicates(query, &alternatives);
            let relaxer = StructureRelaxer::new(fed, self.config.steiner, preferred)
                .with_cache(self.neighborhood.clone())
                .at_tier(tier);
            let mut timer = self
                .obs
                .get()
                .map(|obs| obs.time(sapphire_obs::Stage::SteinerRelax));
            let relaxed = relaxer.relax(&groups);
            if let Some(t) = timer.as_mut() {
                t.tag(if tier > 0 { "degraded" } else { "full" });
            }
            drop(timer);
            if let Some(relaxed) = relaxed {
                let answers = match fed.execute_parsed(&Query::Select(relaxed.query.clone())) {
                    Ok(QueryResult::Solutions(s)) => s,
                    _ => Solutions::default(),
                };
                if !answers.is_empty() {
                    relaxations.push(StructureSuggestion { relaxed, answers });
                }
            }
        }

        QsmOutput {
            alternatives,
            relaxations,
            candidates,
            elapsed: start.elapsed(),
            tier,
            degraded: tier > 0,
        }
    }
}

/// Ground literals appearing as objects in the query.
fn query_literals(query: &SelectQuery) -> Vec<Literal> {
    let mut out = Vec::new();
    for tp in &query.pattern.triples {
        if let TermPattern::Term(Term::Literal(l)) = &tp.object {
            if !out.contains(l) {
                out.push(l.clone());
            }
        }
    }
    out
}

/// A literal as it appears in the data: cached literals carry the configured
/// language tag.
fn ground_literal(lit: &Literal, language: &str) -> Term {
    match &lit.lang {
        Some(_) => Term::Literal(lit.clone()),
        None => Term::Literal(Literal::lang_tagged(lit.value.clone(), language)),
    }
}

/// The query's own predicates plus every predicate suggested by Algorithm 2 —
/// these get weight `w_q` during expansion.
fn preferred_predicates(query: &SelectQuery, alternatives: &[TermAlternative]) -> HashSet<String> {
    let mut out = HashSet::new();
    for tp in &query.pattern.triples {
        if let TermPattern::Term(Term::Iri(iri)) = &tp.predicate {
            out.insert(iri.clone());
        }
    }
    for alt in alternatives {
        if alt.position == AlteredPosition::Predicate {
            if let TermPattern::Term(Term::Iri(iri)) =
                &alt.query.pattern.triples[alt.triple_index].predicate
            {
                out.insert(iri.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{Endpoint, EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;
    use sapphire_sparql::parse_select;

    const DATA: &str = r#"
res:Kerouac a dbo:Writer ; dbo:name "Jack Kerouac"@en .
res:VikingPress a dbo:Publisher ; rdfs:label "Viking Press"@en .
res:OnTheRoad a dbo:Book ; dbo:name "On The Road"@en ; dbo:author res:Kerouac ; dbo:publisher res:VikingPress .
res:DoorWideOpen a dbo:Book ; dbo:name "Door Wide Open"@en ; dbo:author res:Kerouac ; dbo:publisher res:VikingPress .
"#;

    fn setup() -> (QuerySuggestion, FederatedProcessor) {
        let config = SapphireConfig {
            processes: 2,
            ..SapphireConfig::for_tests()
        };
        let graph = turtle::parse(DATA).unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "books",
            graph,
            EndpointLimits::warehouse(),
        ));
        let fed = FederatedProcessor::single(ep);
        let cache = CachedData::from_raw(
            vec![
                ("http://dbpedia.org/ontology/author".into(), 0),
                ("http://dbpedia.org/ontology/publisher".into(), 0),
                ("http://dbpedia.org/ontology/writer".into(), 0),
                ("http://dbpedia.org/ontology/name".into(), 4),
            ],
            vec![
                ("Jack Kerouac".into(), 5),
                ("Viking Press".into(), 4),
                ("On The Road".into(), 1),
                ("Door Wide Open".into(), 1),
            ],
            &config,
        );
        (
            QuerySuggestion::new(Arc::new(cache), Lexicon::dbpedia_default(), config),
            fed,
        )
    }

    #[test]
    fn figure_6_relaxation_end_to_end() {
        let (qsm, fed) = setup();
        // The user's (structurally wrong) query: book directly connected to
        // both literals.
        let q = parse_select(
            r#"SELECT ?book WHERE { ?book dbo:writer "Jack Kerouac"@en . ?book dbo:publisher "Viking Press"@en }"#,
        )
        .unwrap();
        // Direct execution returns nothing.
        assert!(fed
            .select(&format_query(&q))
            .map(|s| s.is_empty())
            .unwrap_or(true));
        let out = qsm.suggest(&q, &fed);
        assert!(!out.relaxations.is_empty(), "structure relaxation expected");
        let answers = &out.relaxations[0].answers;
        assert!(
            answers.len() >= 2,
            "both Viking Press books:\n{}",
            answers.to_table()
        );
        assert!(out.relaxations[0].relaxed.complete);
    }

    // A tiny serializer so the test can execute the same parsed query via the
    // string interface.
    fn format_query(q: &SelectQuery) -> String {
        let mut s = String::from("SELECT * WHERE { ");
        for t in &q.pattern.triples {
            s.push_str(&t.to_string());
            s.push(' ');
        }
        s.push('}');
        s
    }

    #[test]
    fn no_relaxation_for_single_literal_queries() {
        let (qsm, fed) = setup();
        let q = parse_select(r#"SELECT ?b WHERE { ?b dbo:name "On The Road"@en }"#).unwrap();
        let out = qsm.suggest(&q, &fed);
        assert!(out.relaxations.is_empty());
    }

    #[test]
    fn qsm_output_counts() {
        let (qsm, fed) = setup();
        let q = parse_select(r#"SELECT ?b WHERE { ?b dbo:name "On The Rod"@en }"#).unwrap();
        let out = qsm.suggest(&q, &fed);
        assert!(!out.is_empty());
        assert_eq!(out.len(), out.alternatives.len() + out.relaxations.len());
        // The literal typo should be corrected.
        assert!(out
            .alternatives
            .iter()
            .any(|a| a.replacement == "On The Road"));
    }
}
