//! A label → entity index shared by the QA baselines.
//!
//! QAKiS and KBQA both need to spot entity mentions in natural-language
//! questions. The originals mine Wikipedia anchors; we build the analogue by
//! harvesting the dataset's own label predicates through the endpoint.

use std::collections::HashMap;

use sapphire_endpoint::Endpoint;
use sapphire_text::normalize;

/// Maps normalized labels to entity IRIs.
#[derive(Debug, Default, Clone)]
pub struct EntityIndex {
    labels: HashMap<String, Vec<String>>,
}

/// Predicates harvested as entity labels.
pub const LABEL_PREDICATES: &[&str] = &[
    "http://dbpedia.org/ontology/name",
    "http://www.w3.org/2000/01/rdf-schema#label",
    "http://dbpedia.org/ontology/nickname",
    "http://dbpedia.org/ontology/surname",
];

impl EntityIndex {
    /// Harvest labels from an endpoint.
    pub fn build(endpoint: &dyn Endpoint) -> Self {
        let mut index = EntityIndex::default();
        for pred in LABEL_PREDICATES {
            let q = format!("SELECT ?s ?o WHERE {{ ?s <{pred}> ?o }}");
            let Ok(sols) = endpoint.select(&q) else {
                continue;
            };
            for r in 0..sols.len() {
                let (Some(s), Some(o)) = (sols.get(r, "s"), sols.get(r, "o")) else {
                    continue;
                };
                if !o.is_literal() {
                    continue;
                }
                let key = normalize(o.lexical());
                if key.is_empty() {
                    continue;
                }
                let entry = index.labels.entry(key).or_default();
                let iri = s.lexical().to_string();
                if !entry.contains(&iri) {
                    entry.push(iri);
                }
            }
        }
        index
    }

    /// Entities whose label exactly matches the normalized phrase.
    pub fn lookup(&self, phrase: &str) -> &[String] {
        self.labels
            .get(&normalize(phrase))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Find the longest label occurring as a word subsequence of the
    /// question; returns `(matched words, entities)`.
    pub fn longest_mention<'a>(&'a self, question: &str) -> Option<(String, &'a [String])> {
        let words: Vec<String> = sapphire_text::keywords(question);
        let mut best: Option<(String, &[String])> = None;
        for start in 0..words.len() {
            for end in (start + 1..=words.len()).rev() {
                let phrase = words[start..end].join(" ");
                if let Some(entities) = self.labels.get(&phrase) {
                    let better = match &best {
                        None => true,
                        Some((b, _)) => phrase.len() > b.len(),
                    };
                    if better {
                        best = Some((phrase.clone(), entities.as_slice()));
                    }
                }
            }
        }
        best
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};

    fn endpoint() -> LocalEndpoint {
        let g = sapphire_rdf::turtle::parse(
            r#"
res:JFK a dbo:Person ; dbo:name "John F. Kennedy"@en ; dbo:surname "Kennedy"@en .
res:SLC a dbo:City ; dbo:name "Salt Lake City"@en .
"#,
        )
        .unwrap();
        LocalEndpoint::new("t", g, EndpointLimits::warehouse())
    }

    #[test]
    fn build_and_lookup() {
        let idx = EntityIndex::build(&endpoint());
        assert!(!idx.is_empty());
        assert_eq!(
            idx.lookup("john f. kennedy"),
            &["http://dbpedia.org/resource/JFK".to_string()]
        );
        assert_eq!(idx.lookup("Salt  Lake CITY").len(), 1);
        assert!(idx.lookup("atlantis").is_empty());
    }

    #[test]
    fn longest_mention_prefers_longer_labels() {
        let idx = EntityIndex::build(&endpoint());
        let (phrase, ents) = idx
            .longest_mention("What is the time zone of Salt Lake City?")
            .expect("mention found");
        assert_eq!(phrase, "salt lake city");
        assert_eq!(ents.len(), 1);
        // "Kennedy" (surname) vs "John F. Kennedy" (name): longer wins.
        let (phrase, _) = idx
            .longest_mention("Who was John F. Kennedy's vice president?")
            .unwrap();
        assert_eq!(phrase, "john f kennedy");
    }
}
