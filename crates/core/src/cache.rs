//! The per-endpoint data cache assembled during initialization (§5).
//!
//! Holds the three structures the PUM reads: the predicate table (all
//! predicates — there are few), the suffix tree (predicates + the most
//! significant literals), and the residual bins (every other cached literal,
//! keyed by length).

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

use sapphire_suffix::SuffixTree;
use sapphire_text::{jaro_winkler_ci, surface_form};

use crate::bins::{LitId, ResidualBins};
use crate::config::SapphireConfig;

/// Hit/miss/eviction counters of a [`BoundedCache`].
///
/// The init-time structures in this module ([`CachedData`]) are bounded by
/// construction — the suffix tree is capped at
/// [`SapphireConfig::suffix_tree_capacity`] strings and the residual bins
/// hold the remainder of a corpus fixed at initialization, so neither grows
/// at serving time. Anything cached *per request* (QCM completions, QSM run
/// results) would grow without bound, which is why the serving layer's
/// response cache is built on [`BoundedCache`] below.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an evicted entry).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Hash `key` onto one of `n` shards — shared by this crate's sharded maps
/// (the QSM's cross-request caches) so shard selection lives in one place.
pub(crate) fn shard_index<K: Hash + ?Sized>(key: &K, n: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % n
}

/// A sharded, concurrent [`BoundedCache`]: each shard is an independently
/// locked LRU, so contention is proportional to key collisions rather than
/// total traffic. The building block of this crate's cross-request QSM
/// caches (the Steiner [`NeighborhoodCache`](crate::qsm::NeighborhoodCache)
/// and the Algorithm-2 alternative memos), mirroring the serving tier's
/// response cache.
#[derive(Debug)]
pub(crate) struct ShardedLru<K, V> {
    shards: Vec<std::sync::Mutex<BoundedCache<K, V>>>,
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedLru<K, V> {
    /// `shards` independent LRUs of `capacity_per_shard` entries each.
    pub(crate) fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardedLru {
            shards: (0..shards.clamp(1, 1024))
                .map(|_| std::sync::Mutex::new(BoundedCache::new(capacity_per_shard)))
                .collect(),
        }
    }

    /// Cached value for `key`, if present (counts a hit or miss, refreshes
    /// recency). Accepts borrowed key forms, like [`BoundedCache::get`].
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        let shard = &self.shards[shard_index(key, self.shards.len())];
        shard.lock().unwrap().get(key).cloned()
    }

    /// Insert (or replace) an entry.
    pub(crate) fn insert(&self, key: K, value: V) {
        let shard = &self.shards[shard_index(&key, self.shards.len())];
        shard.lock().unwrap().insert(key, value);
    }

    /// Live entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Aggregated counters across all shards.
    pub(crate) fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }
}

/// A capacity-bounded LRU map with hit/miss/eviction counters.
///
/// Recency is tracked with monotonically increasing stamps plus a lazily
/// pruned queue, giving amortized O(1) `get`/`insert` without a linked list.
/// The structure is single-threaded by design; concurrent users (the server's
/// sharded response cache) wrap shards in their own locks.
#[derive(Debug)]
pub struct BoundedCache<K, V> {
    capacity: usize,
    entries: HashMap<K, (V, u64)>,
    /// `(stamp, key)` in stamp order; stale pairs (stamp no longer current
    /// for the key) are skipped during eviction.
    order: VecDeque<(u64, K)>,
    next_stamp: u64,
    stats: CacheStats,
}

impl<K: Clone + Eq + Hash, V> BoundedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of live entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(&mut self, key: K) -> u64 {
        // Keep the queue from accumulating unbounded stale pairs. This runs
        // here rather than in insert() because get() also touches: a
        // hit-dominated steady state (the response cache's target workload)
        // may go arbitrarily long between inserts, and the queue must stay
        // bounded regardless. Compact *before* pushing so the fresh pair —
        // not yet reflected in `entries` — survives the retain.
        if self.order.len() > self.capacity.saturating_mul(4).max(64) {
            self.compact();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.push_back((stamp, key));
        stamp
    }

    /// Look up `key`, refreshing its recency on a hit. Accepts borrowed key
    /// forms (`&str` for `String` keys) so hot paths don't allocate just to
    /// probe the cache.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        if self.entries.contains_key(key) {
            self.stats.hits += 1;
            let stamp = self.touch(key.to_owned());
            let entry = self.entries.get_mut(key).expect("entry present");
            entry.1 = stamp;
            Some(&entry.0)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Look up `key` *without* counting a hit/miss or refreshing recency.
    ///
    /// For re-checks that must not distort observability — e.g. a
    /// single-flight leader confirming nobody filled the cache between its
    /// counted miss and its election; counting that probe would charge every
    /// cold key two misses.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.entries.get(key).map(|(value, _)| value)
    }

    /// Insert (or replace) an entry, evicting the least recently used entry
    /// if the cache is over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        let stamp = self.touch(key.clone());
        self.entries.insert(key, (value, stamp));
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some((stamp, key)) => {
                    // Only evict if this is the key's *current* stamp;
                    // otherwise the pair is a stale residue of a later touch.
                    if self.entries.get(&key).is_some_and(|(_, s)| *s == stamp) {
                        self.entries.remove(&key);
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    fn compact(&mut self) {
        let entries = &self.entries;
        self.order
            .retain(|(stamp, key)| entries.get(key).is_some_and(|(_, s)| s == stamp));
    }
}

/// A cached RDFS/OWL class, discovered by initialization query Q2 (or the
/// Q3 type fallback). Users express `rdf:type` constraints with keywords
/// ("scientist"), which resolve against these surface forms — the paper's
/// intro example requires exactly this mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedClass {
    /// Full class IRI.
    pub iri: String,
    /// Keyword surface form (`ChessPlayer` → `chess player`).
    pub surface: String,
}

/// A cached RDF predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPredicate {
    /// Full predicate IRI.
    pub iri: String,
    /// Human-readable surface form (`almaMater` → `alma mater`), the text
    /// users type keywords against.
    pub surface: String,
    /// Number of literals associated with this predicate (from init query
    /// Q4); drives retrieval priority.
    pub literal_count: u64,
}

/// What a suffix-tree string refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEntry {
    /// Index into [`CachedData::predicates`].
    Predicate(usize),
    /// A significant literal.
    Literal,
}

/// Where a completion/alternative was found — reported so response-time
/// experiments can attribute latency (§7.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchSource {
    /// Hit in the suffix tree.
    SuffixTree,
    /// Found by scanning residual bins.
    ResidualBins,
}

/// A string from the cache matching a lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheMatch {
    /// The matched text (predicate surface form or literal value).
    pub text: String,
    /// Predicate IRI if the match is a predicate.
    pub predicate_iri: Option<String>,
    /// Where it came from.
    pub source: MatchSource,
}

/// The assembled cache for one endpoint.
pub struct CachedData {
    /// All predicates of the dataset (Q1/Q4 results), most-frequent first.
    pub predicates: Vec<CachedPredicate>,
    /// Residual literals in length bins.
    pub bins: ResidualBins,
    /// Suffix tree over predicate surfaces + significant literals.
    pub tree: SuffixTree,
    /// Parallel to the tree's string ids.
    tree_entries: Vec<TreeEntry>,
    /// The significant literals (also indexed in the tree), with scores.
    pub significant: Vec<(String, u64)>,
    /// Known classes (for rdf:type keyword resolution).
    pub classes: Vec<CachedClass>,
}

impl CachedData {
    /// Assemble a cache from initialization results.
    ///
    /// `literals` pairs each cached literal with its significance score
    /// (Definition 1); the top [`SapphireConfig::suffix_tree_capacity`] by
    /// score go into the suffix tree and the rest become residual.
    pub fn assemble(
        predicates: Vec<CachedPredicate>,
        mut literals: Vec<(String, u64)>,
        config: &SapphireConfig,
    ) -> Self {
        // Deduplicate literal values, keeping the highest score.
        literals.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        literals.dedup_by(|a, b| a.0 == b.0);
        // Significance order: highest score first, ties by shorter text.
        literals.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.len().cmp(&b.0.len()))
                .then(a.0.cmp(&b.0))
        });

        let split = literals.len().min(config.suffix_tree_capacity);
        let significant: Vec<(String, u64)> = literals[..split].to_vec();
        let residual = &literals[split..];

        let mut tree = SuffixTree::new();
        let mut tree_entries = Vec::new();
        for (i, p) in predicates.iter().enumerate() {
            tree.insert(p.surface.clone());
            tree_entries.push(TreeEntry::Predicate(i));
        }
        for (text, _) in &significant {
            tree.insert(text.clone());
            tree_entries.push(TreeEntry::Literal);
        }

        let mut bins = ResidualBins::new();
        for (text, _) in residual {
            bins.add(text.clone());
        }

        CachedData {
            predicates,
            bins,
            tree,
            tree_entries,
            significant,
            classes: Vec::new(),
        }
    }

    /// Attach the classes discovered during initialization.
    pub fn with_classes(mut self, classes: Vec<CachedClass>) -> Self {
        self.classes = classes;
        self
    }

    /// Classes whose surface form is Jaro-Winkler-similar to `s`.
    pub fn similar_classes(&self, s: &str, theta: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let score = jaro_winkler_ci(s, &c.surface);
                (score >= theta).then_some((i, score))
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Build a cache directly from raw predicate IRIs and literal/score pairs
    /// (used by tests and the warehouse path).
    pub fn from_raw(
        predicate_iris: Vec<(String, u64)>,
        literals: Vec<(String, u64)>,
        config: &SapphireConfig,
    ) -> Self {
        let predicates = predicate_iris
            .into_iter()
            .map(|(iri, literal_count)| CachedPredicate {
                surface: surface_form(&iri),
                iri,
                literal_count,
            })
            .collect();
        Self::assemble(predicates, literals, config)
    }

    /// Total number of cached literals (significant + residual).
    pub fn literal_count(&self) -> usize {
        self.significant.len() + self.bins.len()
    }

    /// Number of strings in the suffix tree (predicates + significant
    /// literals; the paper reports 43K = 3K + 40K for DBpedia).
    pub fn tree_string_count(&self) -> usize {
        self.tree.len()
    }

    /// Substring lookup in the suffix tree, capped at `limit`.
    pub fn tree_lookup(&self, t: &str, limit: usize) -> Vec<CacheMatch> {
        self.tree
            .find_containing(t, limit)
            .into_iter()
            .map(|sid| {
                let text = self.tree.string(sid).to_string();
                let predicate_iri = match self.tree_entries[sid as usize] {
                    TreeEntry::Predicate(i) => Some(self.predicates[i].iri.clone()),
                    TreeEntry::Literal => None,
                };
                CacheMatch {
                    text,
                    predicate_iri,
                    source: MatchSource::SuffixTree,
                }
            })
            .collect()
    }

    /// Case-insensitive substring scan of the residual bins restricted to
    /// lengths `|t| ..= |t| + gamma`, parallelized over `processes` workers.
    /// Returns matched literal ids (scores unused for containment).
    pub fn residual_lookup(&self, t: &str, gamma: usize, processes: usize) -> Vec<LitId> {
        let len = t.chars().count();
        let needle = t.to_lowercase();
        self.bins
            .scan_parallel(len..len + gamma + 1, processes, |lit| {
                lit.to_lowercase().contains(&needle).then_some(0.0)
            })
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Predicates whose surface form (or their lexica, supplied by the
    /// caller) is Jaro-Winkler-similar to `s` at threshold `theta`.
    /// Predicates are few, so this is a plain scan (the paper stores them
    /// entirely in memory for the same reason).
    pub fn similar_predicates(&self, s: &str, theta: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .predicates
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let score = jaro_winkler_ci(s, &p.surface);
                (score >= theta).then_some((i, score))
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Literals (residual bins *and* significant set) Jaro-Winkler-similar to
    /// `l` at threshold `theta`, searching lengths `|l|-alpha ..= |l|+beta`.
    pub fn similar_literals(
        &self,
        l: &str,
        alpha: usize,
        beta: usize,
        theta: f64,
        processes: usize,
    ) -> Vec<(String, f64)> {
        let len = l.chars().count();
        let lo = len.saturating_sub(alpha);
        let hi = len + beta;
        let mut out: Vec<(String, f64)> = self
            .bins
            .scan_parallel(lo..hi + 1, processes, |lit| {
                let score = jaro_winkler_ci(l, lit);
                (score >= theta).then_some(score)
            })
            .into_iter()
            .map(|(id, score)| (self.bins.literal(id).to_string(), score))
            .collect();
        for (text, _) in &self.significant {
            let tlen = text.chars().count();
            if tlen < lo || tlen > hi {
                continue;
            }
            let score = jaro_winkler_ci(l, text);
            if score >= theta {
                out.push((text.clone(), score));
            }
        }
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Look up a predicate by IRI.
    pub fn predicate_by_iri(&self, iri: &str) -> Option<&CachedPredicate> {
        self.predicates.iter().find(|p| p.iri == iri)
    }
}

// --- Normalized request keys -----------------------------------------------
//
// QCM and QSM answers over an immutable model are pure functions of the
// request, so every layer that memoizes or deduplicates them (the serving
// tier's response cache, its single-flight coalescer) must agree on what
// "the same request" means. These helpers are that single definition:
// trivially different spellings of one request map to one key, and the
// class prefix (separated by an unprintable byte) keeps QCM and QSM keys
// from ever colliding.

/// Normalize a QCM completion term into a request key: trimmed — and
/// nothing more — so `" Kennedy "` and `"Kennedy"` share one cache entry
/// and one in-flight scan.
///
/// Deliberately **case-preserving**: the suffix-tree stage of
/// [`complete_top`](crate::qcm::QueryCompletion::complete_top) matches
/// case-sensitively (only the residual-bin stage folds case), so `"T"` and
/// `"t"` are *different requests* with different answers. An earlier
/// lowercasing key conflated them, and under concurrency whichever spelling
/// scanned first poisoned the shared cache entry for the other — the
/// evented-front-end oracle test caught the divergence as nondeterminism.
pub fn completion_request_key(term: &str) -> String {
    format!("qcm\u{1}{}", term.trim())
}

/// Normalize a built query into a request key. Uses the query's structural
/// debug rendering, which is stable and canonical for our AST (keyword
/// predicates are already resolved to IRIs by the time a query is built).
pub fn run_request_key(query: &impl std::fmt::Debug) -> String {
    format!("run\u{1}{query:?}")
}

/// [`run_request_key`] suffixed with the QSM budget tier the run executes
/// at. Tier 0 (the full budget — the only tier a non-shedding deployment
/// ever runs) keeps the plain key, so existing entries and oracles are
/// untouched; degraded tiers get a distinct key, so a response cache or
/// single-flight coalescer can never hand full-budget callers a degraded
/// payload or vice versa — the same never-disagree key discipline the
/// QCM/QSM split uses.
pub fn run_request_key_tier(query: &impl std::fmt::Debug, tier: usize) -> String {
    let base = run_request_key(query);
    if tier == 0 {
        base
    } else {
        format!("{base}\u{1}tier{tier}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cache() -> CachedData {
        let config = SapphireConfig {
            suffix_tree_capacity: 3,
            processes: 2,
            ..SapphireConfig::for_tests()
        };
        CachedData::from_raw(
            vec![
                ("http://dbpedia.org/ontology/almaMater".into(), 50),
                ("http://dbpedia.org/ontology/birthPlace".into(), 40),
                ("http://dbpedia.org/ontology/spouse".into(), 30),
            ],
            vec![
                ("New York".into(), 100),
                ("Kennedy".into(), 90),
                ("Boston".into(), 80),
                ("Kennedys of Massachusetts".into(), 2),
                ("Kenneth".into(), 1),
                ("York Minster".into(), 1),
            ],
            &config,
        )
    }

    #[test]
    fn assemble_splits_by_significance() {
        let c = sample_cache();
        assert_eq!(c.significant.len(), 3);
        assert_eq!(c.significant[0].0, "New York");
        assert_eq!(c.bins.len(), 3);
        // Tree holds 3 predicates + 3 significant literals.
        assert_eq!(c.tree_string_count(), 6);
        assert_eq!(c.literal_count(), 6);
    }

    #[test]
    fn tree_lookup_distinguishes_predicates() {
        let c = sample_cache();
        let matches = c.tree_lookup("mater", 10);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].text, "alma mater");
        assert_eq!(
            matches[0].predicate_iri.as_deref(),
            Some("http://dbpedia.org/ontology/almaMater")
        );
        let matches = c.tree_lookup("York", 10);
        assert!(matches.iter().all(|m| m.predicate_iri.is_none()));
        assert_eq!(matches.len(), 1, "York Minster is residual, not in tree");
    }

    #[test]
    fn residual_lookup_is_case_insensitive_and_length_bounded() {
        let c = sample_cache();
        // "kenne" (5 chars) with gamma 10 covers lengths 5..=15: "Kenneth" (7).
        let ids = c.residual_lookup("kenne", 10, 2);
        let texts: Vec<&str> = ids.iter().map(|&id| c.bins.literal(id)).collect();
        assert_eq!(texts, vec!["Kenneth"]);
        // Gamma large enough to reach "Kennedys of Massachusetts" (25).
        let ids = c.residual_lookup("kenne", 20, 2);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn similar_predicates_ranked_by_jw() {
        let c = sample_cache();
        let sims = c.similar_predicates("birth place", 0.7);
        assert!(!sims.is_empty());
        assert_eq!(
            c.predicates[sims[0].0].iri,
            "http://dbpedia.org/ontology/birthPlace"
        );
    }

    #[test]
    fn similar_literals_finds_kennedy_for_kennedys() {
        let c = sample_cache();
        let sims = c.similar_literals("Kennedys", 2, 3, 0.7, 2);
        assert!(
            sims.iter().any(|(t, _)| t == "Kennedy"),
            "significant literal reachable: {sims:?}"
        );
        assert!(
            sims.iter().any(|(t, _)| t == "Kenneth"),
            "residual literal reachable"
        );
        // Sorted by score: "Kennedy" ranks above "Kenneth".
        let kennedy = sims.iter().position(|(t, _)| t == "Kennedy").unwrap();
        let kenneth = sims.iter().position(|(t, _)| t == "Kenneth").unwrap();
        assert!(kennedy < kenneth);
    }

    #[test]
    fn duplicate_literals_keep_highest_score() {
        let config = SapphireConfig {
            suffix_tree_capacity: 1,
            ..SapphireConfig::for_tests()
        };
        let c = CachedData::from_raw(
            vec![],
            vec![("dup".into(), 1), ("dup".into(), 99), ("other".into(), 5)],
            &config,
        );
        assert_eq!(c.literal_count(), 2);
        assert_eq!(c.significant[0], ("dup".to_string(), 99));
    }

    #[test]
    fn predicate_by_iri() {
        let c = sample_cache();
        assert!(c
            .predicate_by_iri("http://dbpedia.org/ontology/spouse")
            .is_some());
        assert!(c.predicate_by_iri("http://nope/").is_none());
    }

    #[test]
    fn bounded_cache_evicts_lru() {
        let mut c: BoundedCache<&str, u32> = BoundedCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh "a" — "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None, "least recently used entry evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        let stats = c.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn bounded_cache_replace_does_not_grow() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        for i in 0..100 {
            c.insert(1, i);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&99));
        assert_eq!(c.stats().evictions, 0, "replacing a key never evicts");
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(8);
        for i in 0..1000 {
            c.insert(i % 50, i);
            assert!(c.len() <= 8);
            // Interleave lookups so recency stamps churn the order queue.
            c.get(&(i % 7));
        }
        assert!(c.order.len() <= 8 * 4 + 50, "stale stamps are compacted");
        assert!(c.stats().hit_ratio() > 0.0);
    }

    #[test]
    fn bounded_cache_hit_only_workload_keeps_order_bounded() {
        // A long-running server serving mostly cache hits never inserts, so
        // the recency queue must be pruned on get() too, not only on insert().
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        for i in 0..100_000u32 {
            assert!(c.get(&(i % 4)).is_some());
        }
        // Compaction triggers past max(capacity * 4, 64) pairs; one more pair
        // may land after the trigger check.
        assert!(
            c.order.len() <= 65,
            "recency queue leaked under hits: {} pairs",
            c.order.len()
        );
        assert_eq!(c.stats().hits, 100_000);
    }

    #[test]
    fn bounded_cache_hit_ratio_bounds() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(2);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.insert(1, 1);
        c.get(&1);
        assert!((c.stats().hit_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn request_keys_normalize_and_never_collide_across_classes() {
        assert_eq!(
            completion_request_key("  Kennedy "),
            completion_request_key("Kennedy")
        );
        assert_ne!(
            completion_request_key("kennedy"),
            completion_request_key("kennedys")
        );
        // Case-preserving on purpose: the suffix-tree stage matches
        // case-sensitively, so differently-cased terms are different
        // requests and must never share a memoized answer.
        assert_ne!(
            completion_request_key("Kennedy"),
            completion_request_key("kennedy")
        );
        // A completion for the literal text of a query rendering must not
        // collide with that query's run key.
        let q = "anything";
        assert_ne!(completion_request_key(&format!("run\u{1}{q:?}")), {
            run_request_key(&q)
        });
    }

    #[test]
    fn tier_suffixed_run_keys_never_mix_degraded_and_full_output() {
        let q = "SELECT-shape";
        // Tier 0 is the plain run key: the default no-shed posture keys
        // exactly as before this knob existed.
        assert_eq!(run_request_key_tier(&q, 0), run_request_key(&q));
        // Every degraded tier is distinct from the full key and from every
        // other tier.
        let keys: Vec<String> = (0..4).map(|t| run_request_key_tier(&q, t)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "tiers must never share a cache entry");
            }
        }
        // A different query at the same tier still gets its own key.
        assert_ne!(run_request_key_tier(&q, 1), run_request_key_tier(&"x", 1));
    }
}
