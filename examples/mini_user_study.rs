//! A miniature of the §7.1 user study: four simulated participants answer
//! Appendix-B questions with Sapphire and with QAKiS; success rates, attempts,
//! and modeled time are printed per difficulty. The full 16-participant study
//! is `cargo run -p sapphire-bench --bin user_study --release`.
//!
//! Run with: `cargo run -p sapphire-bench --example mini_user_study`

use sapphire_baselines::ComparisonHarness;
use sapphire_core::SapphireConfig;
use sapphire_datagen::userstudy::{run_study, StudyConfig};
use sapphire_datagen::workload::{appendix_b, gold_answers, Difficulty};
use sapphire_datagen::DatasetConfig;

fn main() {
    println!("building harness (dataset + Sapphire init + QAKiS)…");
    let harness = ComparisonHarness::build(DatasetConfig::tiny(42), SapphireConfig::default());
    let questions = appendix_b();
    let config = StudyConfig {
        participants: 4,
        ..StudyConfig::default()
    };
    let endpoint = harness.endpoint.clone();
    let gold = |q: &sapphire_datagen::workload::Question| gold_answers(q, endpoint.as_ref());

    let (sapphire, qakis) = run_study(&harness.pum, &harness.qakis, &questions, &gold, &config);

    println!(
        "\n{:<12} {:>18} {:>18}",
        "difficulty", "QAKiS success", "Sapphire success"
    );
    for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Difficult] {
        println!(
            "{:<12} {:>17.0}% {:>17.0}%",
            d.to_string(),
            qakis.success_rate(d),
            sapphire.success_rate(d)
        );
    }
    println!(
        "\n{:<12} {:>18} {:>18}",
        "difficulty", "QAKiS attempts", "Sapphire attempts"
    );
    for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Difficult] {
        println!(
            "{:<12} {:>18.1} {:>18.1}",
            d.to_string(),
            qakis.avg_attempts(d),
            sapphire.avg_attempts(d)
        );
    }
    let (pred, lit, relax, any) = sapphire.suggestion_usage();
    println!("\nQSM usage: {pred:.0}% alt-predicates, {lit:.0}% alt-literals, {relax:.0}% relaxations, {any:.0}% any");
}
