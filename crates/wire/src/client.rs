//! `WireClient`: a shard replica behind a socket, presented to the cluster
//! router as just another [`ShardService`].
//!
//! Design rules, in order:
//!
//! 1. **The router owns failover.** The client never retries a request on
//!    another *replica* — it maps every transport failure onto the typed
//!    [`ServerError::Unreachable`] and lets the router's bounded retry /
//!    hedging machinery (built long before this crate existed) decide. The
//!    one exception is a *stale pooled connection*: if the request write
//!    itself fails on a connection checked out of the pool, the far side
//!    most likely closed it while idle, so the client redials once and
//!    replays — the request provably never reached the replica. Once the
//!    write has succeeded the request may be executing, so any later
//!    failure (a read timeout on a slow replica especially) surfaces
//!    directly instead of silently doubling the replica's work and the
//!    caller's latency; the router's bounded retry decides what happens
//!    next.
//! 2. **Load probes never block.** [`ShardService::admission_load`] and
//!    [`ShardService::shed_pressure_tier`] are answered from the load
//!    header piggybacked on the last reply (see
//!    [`LoadHeader`](crate::codec::LoadHeader)), not a round trip.
//! 3. **Every failure is counted.** `connects` / `reconnects` /
//!    `io_errors` / `corrupt_frames` feed the cluster report's transport
//!    section, so a flaky link is visible even when retries hide it from
//!    latency numbers.
//!
//! [`ServerError::Unreachable`]: sapphire_server::ServerError::Unreachable

use std::collections::{HashMap, HashSet};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_server::{RunPayload, ServerError, ShardService, TransportStats};
use sapphire_sparql::{Query, QueryResult, SelectQuery};

use crate::codec::{
    decode_hello_ok, decode_reply, encode_hello, encode_request, WireReply, WireRequest,
};
use crate::frame::{self, kind, WireError, MAX_FRAME, WIRE_VERSION, WIRE_VERSION_PIPELINED};

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct WireClientConfig {
    /// Deadline for one TCP connect + handshake.
    pub connect_timeout: Duration,
    /// Deadline for one request/reply exchange (the read side).
    pub call_timeout: Duration,
    /// Idle connections kept for reuse **on the legacy v1 path**, where
    /// each in-flight call holds one connection exclusively; this then
    /// also bounds the client's socket-level concurrency against the
    /// replica. A pipelined (v2) replica is reached over one shared
    /// connection instead, bounded by `pipeline_depth`.
    pub max_pool: usize,
    /// Largest frame payload accepted from the server.
    pub max_frame: u32,
    /// Newest protocol version offered in the HELLO. Defaults to
    /// [`frame::WIRE_VERSION_MAX`]; pin to 1 to force the legacy pooled
    /// protocol even against a pipelining-capable server.
    pub max_version: u32,
    /// Cap on in-flight requests sharing the pipelined connection; callers
    /// past it wait for a reply slot (the socket-level analogue of
    /// `max_pool`).
    pub pipeline_depth: usize,
}

impl Default for WireClientConfig {
    fn default() -> Self {
        WireClientConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(10),
            max_pool: 4,
            max_frame: MAX_FRAME,
            max_version: frame::WIRE_VERSION_MAX,
            pipeline_depth: 128,
        }
    }
}

/// How often the demux reader re-checks the failure flag while its socket
/// is idle. Failure paths also shoot the socket, so this is a backstop,
/// not the primary wake-up.
const READER_POLL: Duration = Duration::from_millis(100);

/// Cap on remembered timed-out correlation ids. Late replies to remembered
/// ids are dropped silently; once the set is full the link is considered
/// sick and the connection is failed rather than risking an unrecognized
/// id being misread as a protocol violation.
const TOMBSTONE_CAP: usize = 1024;

/// A reconnecting, pooling client for one replica's [`WireServer`]
/// (see the module docs).
///
/// [`WireServer`]: crate::WireServer
pub struct WireClient {
    addr: SocketAddr,
    config: WireClientConfig,
    name: String,
    k: usize,
    pool: Mutex<Vec<TcpStream>>,
    /// The pipelined (v2) connection, when the replica negotiated one.
    /// Replaced wholesale on failure; in-flight callers keep their `Arc`
    /// to the dead one and surface its error.
    pipe: Mutex<Option<Arc<PipeConn>>>,
    /// Set once a handshake lands on protocol v1 — the replica will never
    /// speak v2, so later dials offer v1 directly instead of burning a
    /// doomed offer + retry on every reconnect.
    negotiated_v1: AtomicBool,
    /// Set on an IO failure, cleared by the next successful dial — that
    /// dial is a *re*connect.
    broken: AtomicBool,
    connects: AtomicU64,
    reconnects: AtomicU64,
    io_errors: AtomicU64,
    /// Shared with the demux reader thread, which counts protocol
    /// violations (orphan correlation ids, unexpected frame kinds) that no
    /// single caller can be blamed for.
    corrupt_frames: Arc<AtomicU64>,
    load_in_flight: AtomicUsize,
    load_queued: AtomicUsize,
    load_pressure: AtomicUsize,
}

impl WireClient {
    /// Dial `addr` and handshake, learning the replica's name, top-k, and
    /// protocol version. On v2 the handshaken connection becomes the
    /// pipelined connection; on v1 it seeds the pool.
    pub fn connect(addr: SocketAddr, config: WireClientConfig) -> Result<WireClient, WireError> {
        let mut client = WireClient {
            addr,
            config,
            name: String::new(),
            k: 0,
            pool: Mutex::new(Vec::new()),
            pipe: Mutex::new(None),
            negotiated_v1: AtomicBool::new(false),
            broken: AtomicBool::new(false),
            connects: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            corrupt_frames: Arc::new(AtomicU64::new(0)),
            load_in_flight: AtomicUsize::new(0),
            load_queued: AtomicUsize::new(0),
            load_pressure: AtomicUsize::new(0),
        };
        let (stream, name, k, version) = client.dial()?;
        client.name = name;
        client.k = k;
        client.adopt(stream, version);
        Ok(client)
    }

    /// The replica address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The protocol version in use: 2 when a pipelined connection is live,
    /// 1 on the legacy pooled path (or before any v2 dial).
    pub fn protocol_version(&self) -> u32 {
        if self.pipe.lock().unwrap().is_some() {
            WIRE_VERSION_PIPELINED
        } else {
            WIRE_VERSION
        }
    }

    /// File a freshly handshaken connection where its protocol version
    /// says it belongs.
    fn adopt(&self, stream: TcpStream, version: u32) {
        if version >= WIRE_VERSION_PIPELINED {
            // A try_clone failure just drops the stream; the next call
            // redials.
            if let Ok(p) = PipeConn::spawn(stream, self.config.max_frame, &self.corrupt_frames) {
                *self.pipe.lock().unwrap() = Some(p);
            }
        } else {
            self.negotiated_v1.store(true, Ordering::Relaxed);
            self.check_in(stream);
        }
    }

    /// TCP connect + HELLO/HELLO_OK handshake, negotiating the protocol
    /// version. Offers the configured max; an old server that predates
    /// negotiation answers an unknown version by disconnecting, so a
    /// failed v2+ offer is retried once at v1 (and the downgrade is
    /// remembered).
    fn dial(&self) -> Result<(TcpStream, String, usize, u32), WireError> {
        let offer = if self.negotiated_v1.load(Ordering::Relaxed) {
            WIRE_VERSION
        } else {
            self.config
                .max_version
                .clamp(WIRE_VERSION, frame::WIRE_VERSION_MAX)
        };
        match self.dial_version(offer) {
            Ok(out) => {
                if out.3 < WIRE_VERSION_PIPELINED {
                    self.negotiated_v1.store(true, Ordering::Relaxed);
                }
                Ok(out)
            }
            Err(e) if offer > WIRE_VERSION && e.is_transport() => {
                let out = self.dial_version(WIRE_VERSION)?;
                self.negotiated_v1.store(true, Ordering::Relaxed);
                Ok(out)
            }
            Err(e) => Err(e),
        }
    }

    fn dial_version(&self, offer: u32) -> Result<(TcpStream, String, usize, u32), WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(
            |e| match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
                kind => WireError::Io(kind, e.to_string()),
            },
        )?;
        stream.set_nodelay(true).ok();
        frame::set_deadline(&stream, Some(self.config.connect_timeout))?;
        let mut s = &stream;
        frame::write_frame(&mut s, kind::HELLO, &encode_hello(offer))?;
        let (k, payload) = frame::read_frame(&mut s, self.config.max_frame)?;
        if k != kind::HELLO_OK {
            return Err(WireError::Corrupt(format!("expected HELLO_OK, got {k}")));
        }
        let (name, top_k, _server_max, chosen) = decode_hello_ok(&payload)?;
        if !(WIRE_VERSION..=offer).contains(&chosen) {
            return Err(WireError::Corrupt(format!("negotiated version {chosen}")));
        }
        self.connects.fetch_add(1, Ordering::Relaxed);
        if self.broken.swap(false, Ordering::Relaxed) {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok((stream, name, top_k, chosen))
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().unwrap().pop()
    }

    fn check_in(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.config.max_pool {
            pool.push(stream);
        }
    }

    /// One request/reply exchange on one connection. `wrote` is set once
    /// the request write has succeeded — past that point the replica may
    /// be executing the request, so a failure is no longer provably
    /// pre-delivery (see [`call`](Self::call)).
    fn exchange(
        &self,
        stream: &TcpStream,
        payload: &[u8],
        wrote: &mut bool,
    ) -> Result<Result<WireReply, ServerError>, WireError> {
        frame::set_deadline(stream, Some(self.config.call_timeout))?;
        let mut s = stream;
        frame::write_frame(&mut s, kind::REQUEST, payload)?;
        *wrote = true;
        let (k, reply) = frame::read_frame(&mut s, self.config.max_frame)?;
        if k != kind::REPLY {
            return Err(WireError::Corrupt(format!("expected REPLY, got {k}")));
        }
        let (load, result) = decode_reply(&reply)?;
        self.load_in_flight
            .store(load.in_flight as usize, Ordering::Relaxed);
        self.load_queued
            .store(load.queued as usize, Ordering::Relaxed);
        self.load_pressure
            .store(load.pressure as usize, Ordering::Relaxed);
        Ok(result)
    }

    /// Issue one request, with the stale-pool redial described in the
    /// module docs, mapping transport failures onto typed errors. On a
    /// pipelined replica the request shares the live v2 connection with
    /// every other in-flight call; otherwise it checks a connection out of
    /// the legacy pool.
    pub fn call(&self, req: &WireRequest) -> Result<WireReply, ServerError> {
        let payload = encode_request(req);
        if self.config.max_version >= WIRE_VERSION_PIPELINED
            && !self.negotiated_v1.load(Ordering::Relaxed)
        {
            if let Some(result) = self.call_pipelined(&payload) {
                return result;
            }
            // The dial negotiated down to v1 mid-call; the fresh stream is
            // already pooled. Fall through to the legacy path.
        }
        let mut fresh = false;
        let mut stream = match self.checkout() {
            Some(s) => s,
            None => {
                fresh = true;
                self.dial().map_err(|e| self.fail(e))?.0
            }
        };
        loop {
            let mut wrote = false;
            match self.exchange(&stream, &payload, &mut wrote) {
                Ok(result) => {
                    self.check_in(stream);
                    return result;
                }
                Err(e) if !e.is_transport() => {
                    // Protocol violation: the connection may be desynced,
                    // never reuse it.
                    self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    return Err(e.to_server_error());
                }
                Err(e) if fresh || wrote => {
                    // Once the request write succeeded the replica may be
                    // executing it; replaying here would double its work
                    // (and stack a second call_timeout on top) exactly
                    // when it is slow. Surface the typed failure and let
                    // the router's bounded retry decide.
                    return Err(self.fail(e));
                }
                Err(_) => {
                    // The request write failed on a pooled connection: it
                    // died while idle (replica restarted, proxy killed
                    // it) and the request provably never reached the
                    // replica, so one redial is safe.
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.broken.store(true, Ordering::Relaxed);
                    fresh = true;
                    stream = self.dial().map_err(|e| self.fail(e))?.0;
                }
            }
        }
    }

    /// The pipelined analogue of the `call` loop. `None` means the dial
    /// discovered a v1-only replica (the stream went into the pool);
    /// the caller falls back to the legacy path.
    fn call_pipelined(&self, payload: &[u8]) -> Option<Result<WireReply, ServerError>> {
        let mut retried = false;
        loop {
            let (pipe, fresh) = match self.get_pipe() {
                Ok(Some(p)) => p,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            };
            let mut wrote = false;
            let reply = pipe.call(
                payload,
                self.config.pipeline_depth,
                self.config.call_timeout,
                &mut wrote,
            );
            match reply {
                Ok(bytes) => return Some(self.finish_reply(&bytes)),
                Err(e) if !e.is_transport() => {
                    self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    return Some(Err(e.to_server_error()));
                }
                Err(e) if fresh || wrote || retried => return Some(Err(self.fail(e))),
                Err(_) => {
                    // Same rule as the pooled path: the enqueue/write
                    // failed on a connection that predates this call, so
                    // the request provably never reached the replica and
                    // one redial is safe.
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.broken.store(true, Ordering::Relaxed);
                    retried = true;
                }
            }
        }
    }

    /// The live pipelined connection, dialing a replacement if the current
    /// one is dead or absent. `Ok(Some((conn, fresh)))` on success
    /// (`fresh` = this call dialed it); `Ok(None)` when the replica turned
    /// out to be v1-only.
    fn get_pipe(&self) -> Result<Option<(Arc<PipeConn>, bool)>, ServerError> {
        let mut guard = self.pipe.lock().unwrap();
        if let Some(p) = guard.as_ref() {
            if !p.failed.load(Ordering::SeqCst) {
                return Ok(Some((p.clone(), false)));
            }
        }
        // Dead or absent: replace it. The dial happens under the lock so
        // concurrent callers hitting the same dead connection produce one
        // reconnect, not a stampede.
        let (stream, _, _, version) = self.dial().map_err(|e| self.fail(e))?;
        if version < WIRE_VERSION_PIPELINED {
            *guard = None;
            self.check_in(stream);
            return Ok(None);
        }
        if let Some(old) = guard.take() {
            // Its reader saw the failure (the socket is shot) and is
            // exiting; reclaim the thread.
            old.join_reader();
        }
        let p = PipeConn::spawn(stream, self.config.max_frame, &self.corrupt_frames)
            .map_err(|e| self.fail(e))?;
        *guard = Some(p.clone());
        Ok(Some((p, true)))
    }

    /// Decode a reply's load header + result and fold the header into the
    /// lock-free load probes.
    fn finish_reply(&self, reply: &[u8]) -> Result<WireReply, ServerError> {
        let (load, result) = match decode_reply(reply) {
            Ok(ok) => ok,
            Err(e) => {
                self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                return Err(e.to_server_error());
            }
        };
        self.load_in_flight
            .store(load.in_flight as usize, Ordering::Relaxed);
        self.load_queued
            .store(load.queued as usize, Ordering::Relaxed);
        self.load_pressure
            .store(load.pressure as usize, Ordering::Relaxed);
        result
    }

    fn fail(&self, e: WireError) -> ServerError {
        if e.is_transport() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            self.broken.store(true, Ordering::Relaxed);
        } else {
            self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
        }
        e.to_server_error()
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        if let Some(p) = self.pipe.lock().unwrap().take() {
            // Shooting the socket wakes the demux reader out of its read;
            // join it so no thread outlives the client.
            p.fail();
            p.join_reader();
        }
    }
}

/// One pipelined (protocol v2) connection: many in-flight requests share
/// one socket, each tagged with a correlation id; a demux reader thread
/// routes replies — in whatever order the replica finishes them — to the
/// callers parked on per-request channels.
struct PipeConn {
    writer: Mutex<TcpStream>,
    state: Mutex<PipeState>,
    /// Signalled when a reply (or failure) frees an in-flight slot.
    room: Condvar,
    next_corr: AtomicU64,
    failed: AtomicBool,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    corrupt: Arc<AtomicU64>,
}

struct PipeState {
    /// Reply routes for in-flight correlation ids.
    waiters: HashMap<u64, mpsc::Sender<Vec<u8>>>,
    /// Ids whose caller hit its deadline and left. A late reply to one is
    /// dropped silently; an id in neither map is a protocol violation.
    tombstones: HashSet<u64>,
}

impl PipeConn {
    fn spawn(
        stream: TcpStream,
        max_frame: u32,
        corrupt: &Arc<AtomicU64>,
    ) -> Result<Arc<PipeConn>, WireError> {
        frame::set_deadline(&stream, Some(READER_POLL))?;
        let writer = stream
            .try_clone()
            .map_err(|e| WireError::Io(e.kind(), e.to_string()))?;
        let conn = Arc::new(PipeConn {
            writer: Mutex::new(writer),
            state: Mutex::new(PipeState {
                waiters: HashMap::new(),
                tombstones: HashSet::new(),
            }),
            room: Condvar::new(),
            next_corr: AtomicU64::new(1),
            failed: AtomicBool::new(false),
            reader: Mutex::new(None),
            corrupt: corrupt.clone(),
        });
        let handle = {
            let conn = conn.clone();
            std::thread::Builder::new()
                .name("sapphire-wire-demux".into())
                .spawn(move || reader_loop(&conn, stream, max_frame))
                .map_err(|e| WireError::Io(e.kind(), e.to_string()))?
        };
        *conn.reader.lock().unwrap() = Some(handle);
        Ok(conn)
    }

    /// One pipelined exchange. `wrote` is set once the request frame hit
    /// the socket — past that point the replica may be executing it, so
    /// the caller must not replay (same contract as `exchange`).
    fn call(
        &self,
        payload: &[u8],
        depth: usize,
        timeout: Duration,
        wrote: &mut bool,
    ) -> Result<Vec<u8>, WireError> {
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.state.lock().unwrap();
            while st.waiters.len() >= depth.max(1) {
                if self.failed.load(Ordering::SeqCst) {
                    return Err(pipe_down());
                }
                st = self.room.wait(st).unwrap();
            }
            if self.failed.load(Ordering::SeqCst) {
                return Err(pipe_down());
            }
            st.waiters.insert(corr, tx);
        }
        {
            let mut w = self.writer.lock().unwrap();
            if let Err(e) = frame::write_frame_corr(&mut *w, kind::REQUEST, corr, payload) {
                drop(w);
                self.state.lock().unwrap().waiters.remove(&corr);
                // A failed write leaves the stream state unknown; the whole
                // connection is done.
                self.fail();
                return Err(e);
            }
        }
        *wrote = true;
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let mut st = self.state.lock().unwrap();
                if st.waiters.remove(&corr).is_some() {
                    // Leave a tombstone so the late reply is recognized
                    // and dropped instead of read as an orphan.
                    st.tombstones.insert(corr);
                    let overflow = st.tombstones.len() > TOMBSTONE_CAP;
                    drop(st);
                    self.room.notify_one();
                    if overflow {
                        self.fail();
                    }
                }
                Err(WireError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(pipe_down()),
        }
    }

    /// Tear the connection down: every parked caller's channel drops (they
    /// see a transport error), future callers get refused, and the shot
    /// socket wakes the demux reader so it exits.
    fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().unwrap().shutdown(Shutdown::Both);
        let mut st = self.state.lock().unwrap();
        st.waiters.clear();
        st.tombstones.clear();
        drop(st);
        self.room.notify_all();
    }

    fn join_reader(&self) {
        if let Some(h) = self.reader.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

fn pipe_down() -> WireError {
    WireError::Io(
        std::io::ErrorKind::BrokenPipe,
        "pipelined connection failed".into(),
    )
}

fn reader_loop(conn: &PipeConn, mut stream: TcpStream, max_frame: u32) {
    let mut reader = frame::FrameReader::new();
    reader.set_version(WIRE_VERSION_PIPELINED);
    loop {
        if conn.failed.load(Ordering::SeqCst) {
            return;
        }
        let (k, corr, payload) = match reader.read_frame_corr(&mut stream, max_frame) {
            Ok(f) => f,
            Err(WireError::Timeout) => continue, // idle poll tick
            Err(_) => {
                conn.fail();
                return;
            }
        };
        if k != kind::REPLY {
            conn.corrupt.fetch_add(1, Ordering::Relaxed);
            conn.fail();
            return;
        }
        let mut st = conn.state.lock().unwrap();
        if let Some(tx) = st.waiters.remove(&corr) {
            drop(st);
            // The caller may have just timed out and dropped its receiver;
            // that narrow race reads as a timeout there, drop here.
            let _ = tx.send(payload);
            conn.room.notify_one();
        } else if st.tombstones.remove(&corr) {
            // Late reply to a timed-out call: swallowed by design.
        } else {
            drop(st);
            // A correlation id this client never issued (or already
            // settled): the demux map is authoritative, so the stream can
            // no longer be trusted.
            conn.corrupt.fetch_add(1, Ordering::Relaxed);
            conn.fail();
            return;
        }
    }
}

impl ShardService for WireClient {
    fn shard_name(&self) -> String {
        self.name.clone()
    }

    fn top_k(&self) -> usize {
        self.k
    }

    fn complete_top(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError> {
        match self.call(&WireRequest::Complete {
            tenant: tenant.to_string(),
            term: typed.to_string(),
            fetch: k,
        })? {
            WireReply::Completion(c) => Ok(c),
            other => Err(protocol_mismatch("Completion", &other)),
        }
    }

    fn run_select_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        tier: usize,
        budget: Option<Duration>,
    ) -> Result<std::sync::Arc<RunPayload>, ServerError> {
        match self.call(&WireRequest::Run {
            tenant: tenant.to_string(),
            query: query.clone(),
            tier,
            budget,
        })? {
            WireReply::Run(p) => Ok(std::sync::Arc::new(p)),
            other => Err(protocol_mismatch("Run", &other)),
        }
    }

    fn execute_raw(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServerError> {
        match self.call(&WireRequest::Raw {
            tenant: tenant.to_string(),
            query: query.clone(),
        })? {
            WireReply::Raw(qr) => Ok(qr),
            other => Err(protocol_mismatch("Raw", &other)),
        }
    }

    fn admission_load(&self) -> (usize, usize) {
        (
            self.load_in_flight.load(Ordering::Relaxed),
            self.load_queued.load(Ordering::Relaxed),
        )
    }

    fn shed_pressure_tier(&self) -> usize {
        self.load_pressure.load(Ordering::Relaxed)
    }

    fn transport(&self) -> &'static str {
        "wire"
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
        }
    }
}

fn protocol_mismatch(want: &str, got: &WireReply) -> ServerError {
    let got = match got {
        WireReply::Completion(_) => "Completion",
        WireReply::Run(_) => "Run",
        WireReply::Raw(_) => "Raw",
    };
    ServerError::Backend(format!("protocol: expected {want} reply, got {got}"))
}
