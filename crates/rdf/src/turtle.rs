//! A Turtle-subset parser.
//!
//! Supports the constructs the reproduction's fixtures and examples use:
//! `@prefix` directives, prefixed names, `a` for `rdf:type`, `;` predicate
//! lists, `,` object lists, quoted literals with `@lang`/`^^` datatypes, and
//! bare integers/decimals. Collections and blank-node property lists are out
//! of scope (the synthetic DBpedia data never produces them).

use std::collections::HashMap;

use crate::graph::Graph;
use crate::term::{unescape_literal, Literal, Term};
use crate::vocab;

/// Error with byte-offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Parse a Turtle document into a fresh graph.
pub fn parse(input: &str) -> Result<Graph, TurtleError> {
    let mut g = Graph::new();
    parse_into(input, &mut g)?;
    Ok(g)
}

/// Parse a Turtle document into an existing graph.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), TurtleError> {
    let mut p = Parser {
        input,
        pos: 0,
        prefixes: vocab::standard_prefixes()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    };
    p.document(graph)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> TurtleError {
        TurtleError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_trivia();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TurtleError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', found {:?}", self.peek())))
        }
    }

    fn document(&mut self, graph: &mut Graph) -> Result<(), TurtleError> {
        loop {
            self.skip_trivia();
            if self.rest().is_empty() {
                return Ok(());
            }
            if self.rest().starts_with("@prefix") {
                self.directive()?;
            } else {
                self.triples_block(graph)?;
            }
        }
    }

    fn directive(&mut self) -> Result<(), TurtleError> {
        self.pos += "@prefix".len();
        self.skip_trivia();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        let name = self.input[start..self.pos].to_string();
        self.expect(':')?;
        self.skip_trivia();
        if self.peek() != Some('<') {
            return Err(self.err("expected IRI after prefix name"));
        }
        let iri = self.iri_ref()?;
        self.expect('.')?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn triples_block(&mut self, graph: &mut Graph) -> Result<(), TurtleError> {
        let subject = self.term()?;
        if subject.is_literal() {
            return Err(self.err("literal in subject position"));
        }
        loop {
            let predicate = self.predicate()?;
            loop {
                let object = self.term()?;
                graph.insert(subject.clone(), predicate.clone(), object);
                if !self.eat(',') {
                    break;
                }
            }
            if !self.eat(';') {
                break;
            }
            // Allow a trailing ';' before '.'
            self.skip_trivia();
            if self.peek() == Some('.') {
                break;
            }
        }
        self.expect('.')
    }

    fn predicate(&mut self) -> Result<Term, TurtleError> {
        self.skip_trivia();
        // `a` shorthand for rdf:type.
        if self.rest().starts_with('a')
            && self
                .rest()
                .chars()
                .nth(1)
                .is_some_and(|c| c.is_whitespace())
        {
            self.bump();
            return Ok(Term::iri(vocab::rdf::TYPE));
        }
        let t = self.term()?;
        if !t.is_iri() {
            return Err(self.err("predicate must be an IRI"));
        }
        Ok(t)
    }

    fn term(&mut self) -> Result<Term, TurtleError> {
        self.skip_trivia();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.iri_ref()?)),
            Some('"') => Ok(Term::Literal(self.literal()?)),
            Some('_') => self.blank(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            Some(_) => self.prefixed_name(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn iri_ref(&mut self) -> Result<String, TurtleError> {
        self.expect('<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let iri = self.input[start..self.pos].to_string();
                self.bump();
                return Ok(iri);
            }
            self.bump();
        }
        Err(self.err("unterminated IRI"))
    }

    fn literal(&mut self) -> Result<Literal, TurtleError> {
        self.expect('"')?;
        let start = self.pos;
        let mut escaped = false;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(c) => {
                    if escaped {
                        escaped = false;
                        self.bump();
                    } else if c == '\\' {
                        escaped = true;
                        self.bump();
                    } else if c == '"' {
                        break;
                    } else {
                        self.bump();
                    }
                }
            }
        }
        let body = &self.input[start..self.pos];
        self.bump(); // closing quote
        let value = unescape_literal(body).map_err(|e| self.err(e))?;
        if self.peek() == Some('@') {
            self.bump();
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                self.bump();
            }
            if self.pos == start {
                return Err(self.err("empty language tag"));
            }
            return Ok(Literal::lang_tagged(value, &self.input[start..self.pos]));
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            self.skip_trivia();
            let dt = if self.peek() == Some('<') {
                self.iri_ref()?
            } else {
                match self.prefixed_name()? {
                    Term::Iri(iri) => iri,
                    _ => unreachable!("prefixed_name returns IRIs"),
                }
            };
            return Ok(Literal::typed(value, dt));
        }
        Ok(Literal::simple(value))
    }

    fn blank(&mut self) -> Result<Term, TurtleError> {
        if !self.rest().starts_with("_:") {
            return Err(self.err("expected '_:'"));
        }
        self.pos += 2;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::blank(self.input[start..self.pos].to_string()))
    }

    fn number(&mut self) -> Result<Term, TurtleError> {
        let start = self.pos;
        if matches!(self.peek(), Some('-') | Some('+')) {
            self.bump();
        }
        let mut is_decimal = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == '.' && !is_decimal {
                // Only treat '.' as a decimal point if a digit follows;
                // otherwise it terminates the statement.
                let mut it = self.rest().chars();
                it.next();
                if it.next().is_some_and(|d| d.is_ascii_digit()) {
                    is_decimal = true;
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        // Exponent part: 1.5E8, 8E7, 3e-2 — xsd:double.
        let mut is_double = false;
        if matches!(self.peek(), Some('e') | Some('E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some('-') | Some('+')) {
                self.bump();
            }
            let digits_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            if self.pos == digits_start {
                self.pos = save; // not an exponent after all
            } else {
                is_double = true;
            }
        }
        let text = &self.input[start..self.pos];
        if text.is_empty() || text == "-" || text == "+" {
            return Err(self.err("malformed number"));
        }
        let dt = if is_double {
            vocab::xsd::DOUBLE
        } else if is_decimal {
            vocab::xsd::DECIMAL
        } else {
            vocab::xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(text.to_string(), dt)))
    }

    fn prefixed_name(&mut self) -> Result<Term, TurtleError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        let prefix = self.input[start..self.pos].to_string();
        if self.peek() != Some(':') {
            return Err(self.err(format!("expected ':' in prefixed name after {prefix:?}")));
        }
        self.bump();
        let local_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            // A '.' at the end of a local name terminates the statement.
            if c_is_terminal_dot(self.rest()) {
                break;
            }
            self.bump();
        }
        let local = &self.input[local_start..self.pos];
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.err(format!("unknown prefix: {prefix:?}")))?;
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

/// True if the cursor is at a '.' that ends the statement (followed by
/// whitespace/EOF) rather than an inner dot of a local name.
fn c_is_terminal_dot(rest: &str) -> bool {
    let mut chars = rest.chars();
    if chars.next() != Some('.') {
        return false;
    }
    match chars.next() {
        None => true,
        Some(c) => c.is_whitespace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_prefixes_and_a() {
        let doc = r#"
@prefix ex: <http://example.org/> .
ex:alice a ex:Person ;
    ex:name "Alice"@en ;
    ex:knows ex:bob, ex:carol .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.contains(
            &Term::iri("http://example.org/alice"),
            &Term::iri(vocab::rdf::TYPE),
            &Term::iri("http://example.org/Person")
        ));
        assert!(g.contains(
            &Term::iri("http://example.org/alice"),
            &Term::iri("http://example.org/knows"),
            &Term::iri("http://example.org/carol")
        ));
    }

    #[test]
    fn standard_prefixes_preloaded() {
        let doc = "dbo:Scientist rdfs:subClassOf owl:Thing .";
        let g = parse(doc).unwrap();
        assert!(g.contains(
            &Term::iri("http://dbpedia.org/ontology/Scientist"),
            &Term::iri(vocab::rdfs::SUB_CLASS_OF),
            &Term::iri(vocab::owl::THING)
        ));
    }

    #[test]
    fn numbers_become_typed_literals() {
        let doc = "@prefix ex: <http://x/> . ex:nyc ex:population 8400000 . ex:nyc ex:area 302.6 .";
        let g = parse(doc).unwrap();
        assert!(g.contains(
            &Term::iri("http://x/nyc"),
            &Term::iri("http://x/population"),
            &Term::Literal(Literal::typed("8400000", vocab::xsd::INTEGER))
        ));
        assert!(g.contains(
            &Term::iri("http://x/nyc"),
            &Term::iri("http://x/area"),
            &Term::Literal(Literal::typed("302.6", vocab::xsd::DECIMAL))
        ));
    }

    #[test]
    fn typed_literal_with_prefixed_datatype() {
        let doc = r#"@prefix ex: <http://x/> . ex:e ex:born "1945-05-08"^^xsd:date ."#;
        let g = parse(doc).unwrap();
        assert!(g.contains(
            &Term::iri("http://x/e"),
            &Term::iri("http://x/born"),
            &Term::Literal(Literal::date("1945-05-08"))
        ));
    }

    #[test]
    fn errors_on_unknown_prefix() {
        let err = parse("nope:a nope:b nope:c .").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
    }

    #[test]
    fn comments_are_skipped() {
        let doc =
            "# leading comment\n@prefix ex: <http://x/> . # trailing\nex:a ex:b ex:c . # done\n";
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
    }
}
