//! # sapphire-text
//!
//! Text-matching substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! * [`similarity`] — Jaro and Jaro-Winkler similarity (the QSM's ranking
//!   measure with threshold θ = 0.7, §6.2.1), plus Levenshtein for the
//!   ablation bench.
//! * [`tokenize`] — IRI → keyword surface forms (`almaMater` → `alma mater`),
//!   since Sapphire matches user *keywords*, not URIs (§5.1).
//! * [`lexicon`] — a Lemon-style verbalization lexicon standing in for the
//!   DBpedia Lemon lexicon the paper uses (see DESIGN.md substitutions).

#![warn(missing_docs)]

pub mod lexicon;
pub mod similarity;
pub mod tokenize;

pub use lexicon::Lexicon;
pub use similarity::{jaro, jaro_winkler, jaro_winkler_ci, levenshtein, levenshtein_similarity};
pub use tokenize::{keywords, local_name, normalize, split_identifier, surface_form};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Similarity measures stay in [0, 1] and are symmetric.
        #[test]
        fn similarity_bounds_and_symmetry(a in ".{0,12}", b in ".{0,12}") {
            for f in [jaro, jaro_winkler, levenshtein_similarity] {
                let x = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&x), "{} out of range", x);
                prop_assert!((x - f(&b, &a)).abs() < 1e-9);
            }
        }

        /// Identity scores 1.0 on every measure.
        #[test]
        fn identity_is_one(a in ".{0,16}") {
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-9);
            prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-9);
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        /// Levenshtein satisfies the triangle inequality.
        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// Winkler's prefix boost never lowers the Jaro score.
        #[test]
        fn winkler_boost_is_monotone(a in ".{0,12}", b in ".{0,12}") {
            prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-9);
        }
    }
}
