//! Typed failures of the serving tier.

use sapphire_core::session::SessionError;
use sapphire_endpoint::{EndpointError, FederationError, ServiceError};

use crate::registry::SessionId;

/// Everything that can go wrong serving a request.
///
/// Overload conditions are *typed*, not stringly: load generators and
/// clients match on [`ServerError::Overloaded`] / [`ServerError::QueueTimeout`]
/// / [`ServerError::QuotaExhausted`] to distinguish back-pressure (retry
/// later, shed load) from real failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Admission control rejected the request outright: the in-flight limit
    /// was reached and the wait queue was already full.
    Overloaded {
        /// Requests in flight at rejection time.
        in_flight: usize,
        /// Requests already queued at rejection time.
        queue_depth: usize,
    },
    /// The request was queued by admission control but no slot freed up
    /// before its wait deadline.
    QueueTimeout {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
    },
    /// The request was admitted but its execution blew a work budget at the
    /// backend — the service-level surfacing of
    /// [`sapphire_endpoint::EndpointError::Timeout`].
    Timeout {
        /// Work units consumed before the backend gave up.
        work_used: u64,
    },
    /// The tenant exhausted its work budget for the current accounting
    /// window (the service-level analogue of a per-query `WorkBudget`).
    QuotaExhausted {
        /// Offending tenant.
        tenant: String,
        /// Work units charged in this window, including this request.
        used: u64,
        /// The per-window budget.
        budget: u64,
    },
    /// No session with this id exists (never created, or closed).
    UnknownSession(SessionId),
    /// The server's session registry is full.
    SessionLimit {
        /// Sessions currently open.
        open: usize,
        /// Registry capacity.
        limit: usize,
    },
    /// A "did you mean" accept referenced a suggestion that does not exist
    /// (no run yet, or the index is out of range).
    UnknownSuggestion {
        /// Requested alternative index.
        index: usize,
        /// How many alternatives the last run produced.
        available: usize,
    },
    /// The evented front-end is draining and no longer accepts new
    /// requests; queued work is still completed (see
    /// [`crate::frontend::Frontend::shutdown`]).
    ShuttingDown,
    /// The session's text boxes do not form a valid query.
    Session(SessionError),
    /// A remote replica could not be reached, or the connection died
    /// mid-call (connect refused, reset, read deadline, short read) — the
    /// typed surfacing of a wire-transport failure. Retryable: the request
    /// never completed on the other side's *data* path, so failing over to
    /// a sibling replica is safe and is exactly what the cluster router's
    /// bounded retry does with it.
    Unreachable {
        /// Short machine-stable reason: `"connect"`, `"reset"`, `"timeout"`,
        /// `"short read"`, `"closed"`.
        reason: String,
    },
    /// The shared model's backend (federation/endpoints) failed.
    Backend(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded {
                in_flight,
                queue_depth,
            } => {
                write!(
                    f,
                    "server overloaded ({in_flight} in flight, {queue_depth} queued)"
                )
            }
            ServerError::QueueTimeout { waited_ms } => {
                write!(
                    f,
                    "request timed out after {waited_ms}ms in the admission queue"
                )
            }
            ServerError::Timeout { work_used } => {
                write!(f, "backend timed out after {work_used} work units")
            }
            ServerError::QuotaExhausted {
                tenant,
                used,
                budget,
            } => {
                write!(
                    f,
                    "tenant {tenant:?} exhausted work budget ({used}/{budget})"
                )
            }
            ServerError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            ServerError::SessionLimit { open, limit } => {
                write!(f, "session registry full ({open}/{limit})")
            }
            ServerError::UnknownSuggestion { index, available } => {
                write!(f, "no suggestion at index {index} ({available} available)")
            }
            ServerError::ShuttingDown => write!(f, "front-end shutting down"),
            ServerError::Session(e) => write!(f, "session error: {e}"),
            ServerError::Unreachable { reason } => {
                write!(f, "replica unreachable ({reason})")
            }
            ServerError::Backend(m) => write!(f, "backend failure: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        ServerError::Session(e)
    }
}

impl ServerError {
    /// True for back-pressure rejections (overload, queue timeout, backend
    /// work-budget timeout, quota) — the request was turned away or cut off
    /// by a resource limit and may be retried later.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ServerError::Overloaded { .. }
                | ServerError::QueueTimeout { .. }
                | ServerError::Timeout { .. }
                | ServerError::QuotaExhausted { .. }
                | ServerError::Unreachable { .. }
        )
    }

    /// Convert for the [`sapphire_endpoint::QueryService`] surface.
    pub fn into_service_error(self) -> ServiceError {
        match self {
            ServerError::Overloaded {
                in_flight,
                queue_depth,
            } => ServiceError::Overloaded {
                in_flight,
                queue_depth,
            },
            ServerError::QueueTimeout { waited_ms } => ServiceError::QueueTimeout { waited_ms },
            ServerError::Timeout { work_used } => ServiceError::Timeout { work_used },
            ServerError::QuotaExhausted {
                tenant,
                used,
                budget,
            } => ServiceError::QuotaExhausted {
                tenant,
                used,
                budget,
            },
            ServerError::Unreachable { reason } => {
                ServiceError::Backend(EndpointError::Unreachable { reason })
            }
            other => ServiceError::Backend(EndpointError::Eval(other.to_string())),
        }
    }

    /// Flatten a service-surface failure back into a `ServerError`,
    /// preserving every typed back-pressure variant — the inverse of
    /// [`into_service_error`](Self::into_service_error) for the variants
    /// that survive the round trip. Used by tiers that consume a
    /// [`QueryService`](sapphire_endpoint::QueryService) but account in
    /// server-error terms (the cluster router's raw scatter path).
    pub fn from_service(e: ServiceError) -> ServerError {
        match e {
            ServiceError::Overloaded {
                in_flight,
                queue_depth,
            } => ServerError::Overloaded {
                in_flight,
                queue_depth,
            },
            ServiceError::Timeout { work_used } => ServerError::Timeout { work_used },
            ServiceError::QueueTimeout { waited_ms } => ServerError::QueueTimeout { waited_ms },
            ServiceError::QuotaExhausted {
                tenant,
                used,
                budget,
            } => ServerError::QuotaExhausted {
                tenant,
                used,
                budget,
            },
            ServiceError::Backend(EndpointError::Unreachable { reason }) => {
                ServerError::Unreachable { reason }
            }
            ServiceError::Backend(e) => ServerError::Backend(e.to_string()),
        }
    }
}

/// Flatten a federation failure into a `ServerError`, preserving the typed
/// back-pressure variants from the endpoint layer.
pub fn from_federation(e: FederationError) -> ServerError {
    match e {
        // Endpoint-side resource limits are back-pressure, not data errors.
        FederationError::AllSourcesFailed(EndpointError::Timeout { work_used }) => {
            ServerError::Timeout { work_used }
        }
        FederationError::AllSourcesFailed(EndpointError::Overloaded { in_flight }) => {
            ServerError::Overloaded {
                in_flight,
                queue_depth: 0,
            }
        }
        FederationError::AllSourcesFailed(EndpointError::Unreachable { reason }) => {
            ServerError::Unreachable { reason }
        }
        other => ServerError::Backend(other.to_string()),
    }
}
