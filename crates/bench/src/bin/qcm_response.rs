//! Regenerates the **§7.3.1 QCM response-time experiment**: suffix-tree
//! lookup latency, parallel residual-bin scan scaling over core counts,
//! suffix-tree hit ratio vs. tree size, and the fraction of literals
//! eliminated by the length filter.
//!
//! Usage: `cargo run -p sapphire-bench --bin qcm_response --release [--scale tiny|small|medium]`

use std::sync::Arc;
use std::time::Instant;

use sapphire_bench::{
    experiment_config, harvest_literals, harvest_predicates, heading, scale_from_args,
};
use sapphire_core::{CachedData, QueryCompletion, SapphireConfig};
use sapphire_datagen::generate;

/// Lookup terms modeled on user-study keystrokes (prefixes of entity names
/// and predicate keywords at various lengths).
fn probe_terms() -> Vec<&'static str> {
    vec![
        "Ken",
        "Kenn",
        "Kennedy",
        "New",
        "Sal",
        "Salt Lake",
        "alma",
        "birth",
        "spo",
        "pop",
        "Viking",
        "Kerouac",
        "Char",
        "Thatcher",
        "Aus",
        "pres",
        "Spiel",
        "East",
        "Gold",
        "Lake",
    ]
}

fn main() {
    let dataset = scale_from_args();
    println!("(generating dataset and harvesting literal corpus…)");
    let graph = generate(dataset);
    let literals = harvest_literals(&graph, "en", 80);
    let predicates = harvest_predicates(&graph);
    println!(
        "corpus: {} predicates, {} distinct literals",
        predicates.len(),
        literals.len()
    );

    let base = experiment_config();

    // ---- Hit ratio & latency vs suffix-tree size (paper: 40K literals → 50% hit ratio) ----
    println!(
        "{}",
        heading("QCM: suffix-tree size vs hit ratio and latency")
    );
    println!(
        "{:<12} {:>12} {:>10} {:>14} {:>14} {:>12}",
        "tree size", "tree strings", "hit ratio", "tree time/op", "bins time/op", "tree bytes"
    );
    for capacity in [0usize, 1_000, 5_000, 20_000, 40_000] {
        let config = SapphireConfig {
            suffix_tree_capacity: capacity,
            ..base.clone()
        };
        let cache = Arc::new(CachedData::from_raw(
            predicates.clone(),
            literals.clone(),
            &config,
        ));
        let qcm = QueryCompletion::new(cache.clone(), config);
        let mut hits = 0usize;
        let mut tree_ns = 0u128;
        let mut bins_ns = 0u128;
        let terms = probe_terms();
        for t in &terms {
            let r = qcm.complete(t);
            hits += usize::from(r.tree_hit);
            tree_ns += r.tree_time.as_nanos();
            bins_ns += r.bins_time.as_nanos();
        }
        println!(
            "{:<12} {:>12} {:>9.0}% {:>11.3} µs {:>11.3} µs {:>12}",
            capacity,
            cache.tree_string_count(),
            100.0 * hits as f64 / terms.len() as f64,
            tree_ns as f64 / terms.len() as f64 / 1_000.0,
            bins_ns as f64 / terms.len() as f64 / 1_000.0,
            cache.tree.approx_bytes(),
        );
    }

    // ---- Parallel scan scaling (paper: 0.6 s @ 1 core → 0.16 s @ 8 cores,
    // over 21M residual literals). The generated corpus is small, so the
    // worker sweep uses an enlarged synthetic residual corpus where scan time
    // dominates thread-coordination overhead, as it does at DBpedia scale.
    println!(
        "{}",
        heading("QCM: residual-bin scan time vs worker count (tree disabled)")
    );
    let scan_corpus: Vec<(String, u64)> = {
        // Variants stay close to the original lengths so they land in the
        // length bands the probe terms search.
        let mut big: Vec<(String, u64)> = Vec::with_capacity(1_200_000);
        for (i, (l, _)) in literals.iter().cycle().take(1_200_000).enumerate() {
            big.push((format!("{l} {}", i % 997), 0));
        }
        big
    };
    println!("synthetic residual corpus: {} literals", scan_corpus.len());
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    println!("host cores: {cores} (the paper's 0.6 s → 0.16 s scaling needs ≥8; on a");
    println!("single-core host this sweep verifies Algorithm 1's work division and");
    println!("measures coordination overhead instead of speedup)");
    println!("{:<8} {:>14} {:>10}", "P", "avg scan time", "speedup");
    let mut t1 = 0.0f64;
    for p in [1usize, 2, 4, 8] {
        let config = SapphireConfig {
            suffix_tree_capacity: 0,
            processes: p,
            ..base.clone()
        };
        let cache = Arc::new(CachedData::from_raw(
            predicates.clone(),
            scan_corpus.clone(),
            &config,
        ));
        // Measure the Algorithm-1 scan itself (what §7.3.1 times): the rest
        // of complete() — top-k selection — is measured in the tree sweep.
        for t in probe_terms() {
            let _ = cache.residual_lookup(t, config.gamma, p);
        }
        let start = Instant::now();
        let rounds = 3;
        for _ in 0..rounds {
            for t in probe_terms() {
                let _ = cache.residual_lookup(t, config.gamma, p);
            }
        }
        let per_op = start.elapsed().as_secs_f64() / (rounds * probe_terms().len()) as f64;
        if p == 1 {
            t1 = per_op;
        }
        println!(
            "{:<8} {:>11.3} ms {:>9.2}x",
            p,
            per_op * 1_000.0,
            t1 / per_op
        );
    }

    // ---- Length-filter elimination (paper: ≈46% on average) ----
    println!(
        "{}",
        heading("QCM: % of residual literals eliminated by the length filter")
    );
    let config = SapphireConfig {
        suffix_tree_capacity: 0,
        ..base
    };
    let cache = Arc::new(CachedData::from_raw(predicates, literals, &config));
    let qcm = QueryCompletion::new(cache, config);
    let mut total = 0.0;
    let mut n = 0usize;
    for t in probe_terms() {
        let ratio = qcm.filter_elimination_ratio(t.chars().count());
        total += ratio;
        n += 1;
    }
    println!(
        "average over {} probe terms: {:.0}% eliminated (paper: ≈46%)",
        n,
        100.0 * total / n as f64
    );
}
