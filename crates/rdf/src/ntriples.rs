//! N-Triples parsing and serialization.
//!
//! Line-oriented, one triple per line, terminated by `.`. This is the
//! interchange format used by the reproduction's dataset snapshots.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::term::{unescape_literal, Literal, Term};

/// A parse error with 1-based line number context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an N-Triples document into a new [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    parse_into(input, &mut graph)?;
    Ok(graph)
}

/// Parse an N-Triples document, inserting into an existing graph.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), ParseError> {
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(trimmed).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
        graph.insert(s, p, o);
    }
    Ok(())
}

fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cur = Cursor {
        input: line,
        pos: 0,
    };
    let s = cur.term()?;
    cur.skip_ws();
    let p = cur.term()?;
    cur.skip_ws();
    let o = cur.term()?;
    cur.skip_ws();
    if !cur.eat('.') {
        return Err("expected terminating '.'".into());
    }
    cur.skip_ws();
    if !cur.at_end() {
        return Err(format!("trailing content after '.': {:?}", cur.rest()));
    }
    if s.is_literal() {
        return Err("literal in subject position".into());
    }
    if !p.is_iri() {
        return Err("predicate must be an IRI".into());
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some('<') => self.iri().map(Term::Iri),
            Some('"') => self.literal().map(Term::Literal),
            Some('_') => self.blank(),
            other => Err(format!("unexpected start of term: {other:?}")),
        }
    }

    fn iri(&mut self) -> Result<String, String> {
        assert!(self.eat('<'));
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let iri = self.input[start..self.pos].to_string();
                self.pos += 1;
                return Ok(iri);
            }
            self.pos += c.len_utf8();
        }
        Err("unterminated IRI".into())
    }

    fn quoted(&mut self) -> Result<String, String> {
        assert!(self.eat('"'));
        let start = self.pos;
        let mut escaped = false;
        while let Some(c) = self.peek() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                let body = &self.input[start..self.pos];
                self.pos += 1;
                return unescape_literal(body);
            }
            self.pos += c.len_utf8();
        }
        Err("unterminated string literal".into())
    }

    fn literal(&mut self) -> Result<Literal, String> {
        let value = self.quoted()?;
        if self.eat('@') {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                self.pos += 1;
            }
            if self.pos == start {
                return Err("empty language tag".into());
            }
            let lang = self.input[start..self.pos].to_string();
            return Ok(Literal::lang_tagged(value, lang));
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            if self.peek() != Some('<') {
                return Err("datatype must be an IRI".into());
            }
            let dt = self.iri()?;
            return Ok(Literal::typed(value, dt));
        }
        Ok(Literal::simple(value))
    }

    fn blank(&mut self) -> Result<Term, String> {
        if !self.rest().starts_with("_:") {
            return Err("expected blank node '_:'".into());
        }
        self.pos += 2;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("empty blank node label".into());
        }
        Ok(Term::blank(self.input[start..self.pos].to_string()))
    }
}

/// Serialize a graph to N-Triples. Output lines are sorted by the graph's
/// internal index order, which is deterministic for a given insertion set.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for (s, p, o) in graph.iter_terms() {
        let _ = writeln!(out, "{s} {p} {o} .");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_triples() {
        let doc = r#"
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/name> "Alice"@en .
<http://x/s> <http://x/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://x/p> "plain" .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.contains(
            &Term::iri("http://x/s"),
            &Term::iri("http://x/name"),
            &Term::en("Alice")
        ));
        assert!(g.contains(
            &Term::blank("b0"),
            &Term::iri("http://x/p"),
            &Term::literal("plain")
        ));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("<a> <b> .").is_err());
        assert!(parse("<a> <b> <c>").is_err());
        assert!(parse("\"lit\" <b> <c> .").is_err());
        assert!(parse("<a> \"lit\" <c> .").is_err());
        assert!(parse("<a> <b> \"unterminated .").is_err());
        assert!(parse("<a> <b> <c> . garbage").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let doc = "<a> <b> <c> .\nbroken line\n";
        let err = parse(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let doc = concat!(
            "<http://x/s> <http://x/p> \"with \\\"quotes\\\" and \\n newline\"@en .\n",
            "<http://x/s> <http://x/p> \"1945-05-08\"^^<http://www.w3.org/2001/XMLSchema#date> .\n",
            "_:n1 <http://x/q> <http://x/o> .\n"
        );
        let g = parse(doc).unwrap();
        let ser = serialize(&g);
        let g2 = parse(&ser).unwrap();
        assert_eq!(g.len(), g2.len());
        for (s, p, o) in g.iter_terms() {
            assert!(g2.contains(s, p, o), "missing {s} {p} {o}");
        }
    }

    #[test]
    fn escaped_quote_inside_literal() {
        let g = parse(r#"<s> <p> "say \"hi\"" ."#).unwrap();
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri("p"),
            &Term::literal("say \"hi\"")
        ));
    }
}
