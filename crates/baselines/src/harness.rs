//! The §7.2 comparison protocol: run every system on the 50-question set.
//!
//! Protocol fidelity notes (all from §7.2):
//! * QAKiS gets up to 3 attempts with paraphrases that do not inject
//!   vocabulary knowledge.
//! * KBQA answers from its templates only.
//! * S4 receives queries whose predicates and literals are correct ("we use
//!   Sapphire to help us find predicates and literals") but whose structure
//!   follows the question naively — we feed it the *flattened* session script
//!   when one exists.
//! * SPARQLByE receives two example answers for questions with enough gold
//!   answers, with the gold standard as the feedback oracle.
//! * Sapphire is driven with terms from the question only, accepting QSM
//!   suggestions as needed.

use std::sync::Arc;

use sapphire_core::init::InitMode;
use sapphire_core::pum::PredictiveUserModel;
use sapphire_core::session::Session;
use sapphire_core::SapphireConfig;
use sapphire_datagen::userstudy::{flatten, NlQaSystem};
use sapphire_datagen::workload::{gold_answers, grade, qald_style_50, Grade, Question};
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{Endpoint, EndpointLimits, LocalEndpoint};
use sapphire_text::Lexicon;

use crate::kbqa::Kbqa;
use crate::qakis::QaKis;
use crate::s4::S4;
use crate::scoring::SystemScore;
use crate::sparqlbye::SparqlByE;

/// Everything the Table 1 experiment needs, pre-built.
pub struct ComparisonHarness {
    /// The shared simulated endpoint.
    pub endpoint: Arc<LocalEndpoint>,
    /// Sapphire, fully initialized.
    pub pum: PredictiveUserModel,
    /// QAKiS baseline.
    pub qakis: QaKis,
    /// KBQA baseline.
    pub kbqa: Kbqa,
    /// S4 baseline.
    pub s4: S4,
    /// SPARQLByE baseline.
    pub sparqlbye: SparqlByE,
    /// The 50-question set.
    pub questions: Vec<Question>,
}

impl ComparisonHarness {
    /// Generate the dataset, initialize Sapphire, and build all baselines.
    pub fn build(dataset: DatasetConfig, sapphire_config: SapphireConfig) -> Self {
        let graph = generate(dataset);
        let endpoint = Arc::new(LocalEndpoint::new(
            "dbpedia",
            graph,
            EndpointLimits::warehouse(),
        ));
        let ep_dyn: Arc<dyn Endpoint> = endpoint.clone();
        let lexicon = Lexicon::dbpedia_default();
        let pum = PredictiveUserModel::initialize(
            vec![ep_dyn.clone()],
            lexicon.clone(),
            sapphire_config,
            InitMode::Federated,
        )
        .expect("initialization succeeds on the simulated endpoint");
        let qakis = QaKis::build(ep_dyn.clone(), &lexicon);
        let kbqa = Kbqa::build(ep_dyn.clone());
        let s4 = S4::build(ep_dyn.clone());
        let sparqlbye = SparqlByE::build(ep_dyn);
        ComparisonHarness {
            endpoint,
            pum,
            qakis,
            kbqa,
            s4,
            sparqlbye,
            questions: qald_style_50(),
        }
    }

    /// Gold answers for a question.
    pub fn gold(&self, q: &Question) -> Vec<String> {
        gold_answers(q, self.endpoint.as_ref())
    }

    /// Run the full comparison; returns measured rows in Table 1 order.
    pub fn run(&self) -> Vec<SystemScore> {
        let total = self.questions.len();
        let mut qakis = SystemScore::new("QAKiS", total);
        let mut kbqa = SystemScore::new("KBQA", total);
        let mut s4 = SystemScore::new("S4", total);
        let mut bye = SystemScore::new("SPARQLByE", total);
        let mut sapphire = SystemScore::new("Sapphire", total);

        for q in &self.questions {
            let gold = self.gold(q);

            // --- QAKiS: up to 3 paraphrase attempts. ---
            let mut best = Grade::Wrong;
            let mut answered = false;
            for phrasing in q.paraphrases.iter().take(3) {
                let answers = self.qakis.answer(phrasing);
                if !answers.is_empty() {
                    answered = true;
                    let g = grade(&answers, &gold);
                    if rank(g) > rank(best) {
                        best = g;
                    }
                    if best == Grade::Correct {
                        break;
                    }
                }
            }
            qakis.record(answered, best);

            // --- KBQA: one shot, templates only. ---
            let answers = self.kbqa.answer(&q.text);
            kbqa.record(!answers.is_empty(), grade(&answers, &gold));

            // --- S4: correct terms, naive structure. ---
            let g = self.run_s4(q, &gold);
            s4.record(g.0, g.1);

            // --- SPARQLByE: example-driven. ---
            let g = self.run_sparqlbye(q, &gold);
            bye.record(g.0, g.1);

            // --- Sapphire: expert restricted to question terms. ---
            let g = self.run_sapphire(q, &gold);
            sapphire.record(g.0, g.1);
        }
        vec![qakis, kbqa, s4, bye, sapphire]
    }

    /// S4 protocol: build the (possibly structurally naive) query through the
    /// session so terms are resolved, then let S4 rewrite and execute.
    fn run_s4(&self, q: &Question, gold: &[String]) -> (bool, Grade) {
        // S4 consumes *approximate structured queries*: a plain BGP over the
        // question's terms with naive structure — no filters, superlatives,
        // or aggregates (outside its query model, like the systems in [31]).
        let script = flatten(&q.script).unwrap_or_else(|| q.script.clone());
        let mut session = Session::new(&self.pum);
        for (i, row) in script.rows.iter().enumerate() {
            session.set_row(i, row.clone());
        }
        session.modifiers.distinct = true;
        let Ok(query) = session.build_query() else {
            return (false, Grade::Wrong);
        };
        let answers = self.s4.answer(&query);
        (!answers.is_empty(), grade(&answers, gold))
    }

    /// SPARQLByE protocol: two gold answers as examples, gold as the oracle.
    fn run_sparqlbye(&self, _q: &Question, gold: &[String]) -> (bool, Grade) {
        if gold.len() < 2 {
            return (false, Grade::Wrong);
        }
        let examples: Vec<String> = gold.iter().take(2).cloned().collect();
        let oracle = |candidate: &str| gold.iter().any(|g| g == candidate);
        match self.sparqlbye.learn(&examples, &oracle) {
            Some(answers) if !answers.is_empty() => (true, grade(&answers, gold)),
            _ => (false, Grade::Wrong),
        }
    }

    /// Sapphire protocol: ideal script (terms from the question), accept the
    /// best QSM suggestion when the direct query falls short.
    fn run_sapphire(&self, q: &Question, gold: &[String]) -> (bool, Grade) {
        let mut session = Session::new(&self.pum);
        for (i, row) in q.script.rows.iter().enumerate() {
            session.set_row(i, row.clone());
        }
        session.modifiers.distinct = true;
        session.modifiers.order_by = q.script.order_by.clone();
        session.modifiers.limit = q.script.limit;
        session.modifiers.count = q.script.count;
        session.modifiers.filters = q.script.filters.clone();
        let Ok(run) = session.run() else {
            return (false, Grade::Wrong);
        };
        let mut best = grade(run.answers.solutions(), gold);
        let mut answered = !run.answers.solutions().is_empty();
        if best != Grade::Correct {
            for alt in &run.suggestions.alternatives {
                let g = grade(&alt.answers, gold);
                if rank(g) > rank(best) {
                    best = g;
                    answered = true;
                }
            }
            for rel in &run.suggestions.relaxations {
                let g = grade(&rel.answers, gold);
                if rank(g) > rank(best) {
                    best = g;
                    answered = true;
                }
            }
        }
        (answered, best)
    }
}

fn rank(g: Grade) -> u8 {
    match g {
        Grade::Correct => 2,
        Grade::Partial => 1,
        Grade::Wrong => 0,
    }
}

/// Convenience: QAKiS wrapped for the user-study harness.
pub fn qakis_for_study(harness: &ComparisonHarness) -> &dyn NlQaSystem {
    &harness.qakis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> ComparisonHarness {
        ComparisonHarness::build(
            DatasetConfig::tiny(42),
            SapphireConfig {
                processes: 2,
                suffix_tree_capacity: 2_000,
                ..SapphireConfig::for_tests()
            },
        )
    }

    #[test]
    fn table1_shape_holds() {
        let h = harness();
        let rows = h.run();
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();
        let sapphire = get("Sapphire");
        let qakis = get("QAKiS");
        let kbqa = get("KBQA");
        let s4 = get("S4");
        let bye = get("SPARQLByE");

        // The paper's headline orderings:
        // 1. Sapphire dominates every measured system on recall and F1.
        for other in [&qakis, &kbqa, &s4, &bye] {
            assert!(
                sapphire.recall() > other.recall(),
                "Sapphire recall {} vs {} {}",
                sapphire.recall(),
                other.name,
                other.recall()
            );
            assert!(sapphire.f1() > other.f1());
        }
        // 2. KBQA: perfect precision, low recall (factoid-only).
        assert!(
            kbqa.precision() >= 0.99,
            "KBQA precision {}",
            kbqa.precision()
        );
        assert!(kbqa.recall() < sapphire.recall());
        // 3. S4 beats the NL systems on precision (correct terms given).
        assert!(s4.precision() > qakis.precision());
        // 4. SPARQLByE answers the fewest questions.
        assert!(bye.processed <= qakis.processed);
        assert!(bye.recall() < s4.recall());
        // 5. Sapphire's precision is 1.0 (it only shows what the data holds).
        assert!(
            sapphire.precision() > 0.95,
            "Sapphire precision {}",
            sapphire.precision()
        );
    }

    #[test]
    fn sapphire_answers_most_questions() {
        let h = harness();
        let rows = h.run();
        let sapphire = rows.iter().find(|r| r.name == "Sapphire").unwrap();
        assert!(
            sapphire.recall() >= 0.8,
            "Sapphire should answer ≥80% of the set, got {}",
            sapphire.recall()
        );
    }
}
