//! Integration-test host crate; see the repository-root `tests/` directory.
