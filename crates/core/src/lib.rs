//! # sapphire-core
//!
//! The primary contribution of *Sapphire: Querying RDF Data Made Simple*
//! (El-Roby, Ammar, Aboulnaga, Lin — VLDB 2016), reproduced in Rust.
//!
//! Sapphire is an interactive tool that helps users write syntactically and
//! semantically correct SPARQL queries over RDF datasets they do not know.
//! Its core is the **Predictive User Model** (PUM), built on data cached from
//! the queried endpoints:
//!
//! * [`init`] — initialization for a new endpoint (§5, Appendix A Q1–Q10):
//!   cache all predicates and a language/length-filtered subset of literals,
//!   partitioned along the RDFS class hierarchy with timeout-driven descent
//!   and pagination; identify *most significant literals* (Definition 1).
//! * [`cache`] / [`bins`] — the cache: predicate table, a suffix tree over
//!   predicates + significant literals, and length-keyed residual bins with
//!   the Algorithm 1 parallel scan.
//! * [`qcm`] — the Query Completion Module (§6.1, Figure 5): per-keystroke
//!   auto-complete, suffix tree first, parallel residual scan second.
//! * [`qsm`] — the Query Suggestion Module (§6.2): alternative terms via
//!   lexica + Jaro-Winkler (Algorithm 2), and structure relaxation via a
//!   budgeted Steiner-tree search over the remote graph (Algorithm 3).
//! * [`pum`] / [`session`] / [`answers`] — the facade and the interactive
//!   query-composition workflow of §4 (text box per triple part, Run,
//!   suggestions, answer table).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use sapphire_core::prelude::*;
//!
//! // 1. Stand up an endpoint (in production this is a remote SPARQL server).
//! let graph = sapphire_rdf::turtle::parse(
//!     r#"res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ."#,
//! ).unwrap();
//! let ep: Arc<dyn Endpoint> =
//!     Arc::new(LocalEndpoint::new("dbpedia", graph, EndpointLimits::warehouse()));
//!
//! // 2. Register it with Sapphire (runs §5 initialization).
//! let pum = PredictiveUserModel::initialize(
//!     vec![ep], Lexicon::dbpedia_default(), SapphireConfig::for_tests(), InitMode::Federated,
//! ).unwrap();
//!
//! // 3. Type a query with auto-complete, run it, take suggestions.
//! let mut session = Session::new(&pum);
//! session.set_row(0, TripleInput::new("?who", "surname", "Kennedys"));
//! let result = session.run().unwrap();
//! assert!(result.suggestions.alternatives.iter().any(|a| a.replacement == "Kennedy"));
//! ```

#![warn(missing_docs)]

pub mod answers;
pub mod bins;
pub mod cache;
pub mod config;
pub mod exec;
pub mod init;
pub mod pum;
pub mod qcm;
pub mod qsm;
pub mod session;

pub use answers::AnswerTable;
pub use cache::{
    completion_request_key, run_request_key, run_request_key_tier, BoundedCache, CacheMatch,
    CacheStats, CachedClass, CachedData, CachedPredicate, MatchSource,
};
pub use config::{SapphireConfig, SteinerConfig};
pub use exec::{ExecStats, Executor, TaskHandle};
pub use init::{InitError, InitMode, InitStats, Initializer};
pub use pum::{PredictiveUserModel, PumError, RunOutcome};
pub use qcm::{Completion, CompletionResult, QueryCompletion};
pub use qsm::{
    AltCacheStats, NeighborhoodCache, NeighborhoodStats, QsmOutput, QuerySuggestion, RelaxedQuery,
    StructureSuggestion, TermAlternative,
};
pub use session::{Modifiers, RunResult, Session, SessionError, TripleInput};

// The serving layer shares one `PredictiveUserModel` (and its `CachedData`)
// across every worker thread behind an `Arc`, so these types must stay
// `Send + Sync`. Interior mutability in any hot read path would silently
// break that; fail compilation instead.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PredictiveUserModel>();
    assert_send_sync::<CachedData>();
    assert_send_sync::<QueryCompletion>();
    assert_send_sync::<QuerySuggestion>();
    assert_send_sync::<BoundedCache<String, String>>();
    assert_send_sync::<NeighborhoodCache>();
};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::answers::AnswerTable;
    pub use crate::cache::CachedData;
    pub use crate::config::SapphireConfig;
    pub use crate::init::{InitMode, Initializer};
    pub use crate::pum::PredictiveUserModel;
    pub use crate::qcm::QueryCompletion;
    pub use crate::qsm::QuerySuggestion;
    pub use crate::session::{Session, TripleInput};
    pub use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
    pub use sapphire_text::Lexicon;
}
