//! Frame layer: the only thing that ever touches a socket.
//!
//! Every message is one frame. Version 1 frames (and every handshake frame,
//! regardless of what gets negotiated):
//!
//! ```text
//! +-------+-------+-----------------+------------------+
//! | magic | kind  | len (u32 LE)    | payload (len B)  |
//! | 0xC5  | 1 B   | 4 B             | codec-encoded    |
//! +-------+-------+-----------------+------------------+
//! ```
//!
//! Version 2 — negotiated in HELLO/HELLO_OK — adds a `u64` correlation id
//! so one connection can carry many in-flight requests (pipelining): the
//! client stamps each REQUEST, the server echoes the stamp on the matching
//! REPLY, and replies may arrive in any order:
//!
//! ```text
//! +-------+-------+--------------+-------------------+------------------+
//! | magic | kind  | len (u32 LE) | corr id (u64 LE)  | payload (len B)  |
//! | 0xC5  | 1 B   | 4 B          | 8 B               | codec-encoded    |
//! +-------+-------+--------------+-------------------+------------------+
//! ```
//!
//! The magic byte catches desynchronized streams immediately (a reader that
//! lost frame alignment sees garbage where 0xC5 should be, not a plausible
//! length it would block on), and the length prefix is validated against a
//! hard cap *before* any allocation, so a corrupt or hostile length can
//! neither hang the reader nor balloon memory.

use std::io::{Read, Write};
use std::time::Duration;

/// First byte of every frame.
pub const MAGIC: u8 = 0xC5;

/// The baseline protocol version: 6-byte headers, one request in flight
/// per connection. Every HELLO/HELLO_OK is framed at this version — the
/// handshake must be readable before any negotiation has happened.
pub const WIRE_VERSION: u32 = 1;

/// The pipelined protocol version: 14-byte headers carrying a `u64`
/// correlation id, many requests in flight per connection, replies in any
/// order.
pub const WIRE_VERSION_PIPELINED: u32 = 2;

/// The newest version this build speaks. Peers negotiate down to the
/// smaller of their maxima in the HELLO handshake.
pub const WIRE_VERSION_MAX: u32 = WIRE_VERSION_PIPELINED;

/// Default upper bound on one frame's payload (64 MiB) — generous for a
/// shard reply full of prefetched suggestion answers, tiny next to what a
/// corrupt 4-byte length can claim.
pub const MAX_FRAME: u32 = 64 << 20;

/// Frame kinds.
pub mod kind {
    /// Client → server, first frame on a connection: `[version u32]`.
    pub const HELLO: u8 = 1;
    /// Server → client handshake ack: `[name][k u32][max_frame u32]`.
    pub const HELLO_OK: u8 = 2;
    /// Client → server: one encoded [`WireRequest`](crate::WireRequest).
    pub const REQUEST: u8 = 3;
    /// Server → client: load header + one encoded result.
    pub const REPLY: u8 = 4;
}

/// Every way the transport can fail, kept distinct so each maps onto the
/// right typed [`ServerError`](sapphire_server::ServerError) (see
/// [`WireError::to_server_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The OS-level IO failure (connect refused, reset, broken pipe, ...).
    Io(std::io::ErrorKind, String),
    /// The peer closed the connection mid-frame.
    ShortRead,
    /// A read or connect deadline expired.
    Timeout,
    /// The bytes violate the protocol (bad magic, bad tag, length overruns
    /// the payload, non-UTF-8 string, unknown enum discriminant).
    Corrupt(String),
    /// The announced payload length exceeds the frame cap.
    TooLarge {
        /// Announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, m) => write!(f, "io error ({kind:?}): {m}"),
            WireError::ShortRead => write!(f, "connection closed mid-frame"),
            WireError::Timeout => write!(f, "deadline expired"),
            WireError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame too large ({len} bytes, cap {max})")
            }
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True for failures of the *link* (the request may never have reached
    /// the peer's data path): safe to fail over to a sibling replica.
    /// False for protocol violations, which retrying cannot fix.
    pub fn is_transport(&self) -> bool {
        !matches!(self, WireError::Corrupt(_) | WireError::TooLarge { .. })
    }

    /// The machine-stable reason string carried inside
    /// [`ServerError::Unreachable`](sapphire_server::ServerError::Unreachable).
    pub fn reason(&self) -> &'static str {
        match self {
            WireError::Io(std::io::ErrorKind::ConnectionRefused, _) => "connect",
            WireError::Io(std::io::ErrorKind::ConnectionReset, _)
            | WireError::Io(std::io::ErrorKind::ConnectionAborted, _)
            | WireError::Io(std::io::ErrorKind::BrokenPipe, _) => "reset",
            WireError::Io(_, _) => "reset",
            WireError::ShortRead => "short read",
            WireError::Timeout => "timeout",
            WireError::Closed => "closed",
            WireError::Corrupt(_) | WireError::TooLarge { .. } => "corrupt",
        }
    }

    /// Map onto the serving tier's typed error surface: transport failures
    /// become the retryable
    /// [`ServerError::Unreachable`](sapphire_server::ServerError::Unreachable)
    /// (the cluster router fails them over to a sibling replica); protocol
    /// violations become a non-retryable
    /// [`ServerError::Backend`](sapphire_server::ServerError::Backend).
    pub fn to_server_error(&self) -> sapphire_server::ServerError {
        if self.is_transport() {
            sapphire_server::ServerError::Unreachable {
                reason: self.reason().to_string(),
            }
        } else {
            sapphire_server::ServerError::Backend(self.to_string())
        }
    }
}

fn io_error(e: std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
        kind => WireError::Io(kind, e.to_string()),
    }
}

/// Incremental frame reader whose partial progress survives read
/// deadlines.
///
/// [`read_frame`] forgets any bytes it already consumed when the socket's
/// read deadline fires mid-frame — fine for a client whose deadline covers
/// the whole exchange (the connection is discarded on timeout), fatal for
/// a server using a short poll-style deadline to check a shutdown flag
/// between frames: a frame arriving in chunks spaced wider than the poll
/// interval would desync the stream, and the next read would parse payload
/// bytes as a header. This reader keeps the header/payload cursor across
/// calls, so after a [`WireError::Timeout`] the caller can simply call
/// again and resume exactly where the stream left off.
pub struct FrameReader {
    /// Big enough for a v2 header; only the first `header_len()` bytes are
    /// ever used.
    header: [u8; 14],
    header_have: usize,
    /// Allocated once the header is complete and validated.
    payload: Option<Vec<u8>>,
    payload_have: usize,
    version: u32,
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader {
            header: [0; 14],
            header_have: 0,
            payload: None,
            payload_have: 0,
            version: WIRE_VERSION,
        }
    }
}

impl FrameReader {
    /// A reader positioned at a frame boundary, expecting v1 frames.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Switch the expected header layout after version negotiation. Only
    /// legal at a frame boundary — the handshake frames preceding the
    /// switch are always v1-framed, so this is called right after HELLO_OK.
    pub fn set_version(&mut self, version: u32) {
        assert!(!self.mid_frame(), "version switch mid-frame would desync");
        self.version = version;
    }

    fn header_len(&self) -> usize {
        if self.version >= WIRE_VERSION_PIPELINED {
            14
        } else {
            6
        }
    }

    /// True when part of the next frame has already been consumed (a
    /// deadline that fires now interrupted a frame mid-arrival, it did not
    /// find the connection idle).
    pub fn mid_frame(&self) -> bool {
        self.header_have > 0 || self.payload.is_some()
    }

    /// Read (or continue reading) one frame, validating magic and length
    /// cap before allocating. Returns `(kind, corr, payload)` — `corr` is 0
    /// on a v1 stream — and resets to the next frame boundary on success.
    /// On [`WireError::Timeout`] all partial progress is kept — call again
    /// to resume. Any other error is fatal for the connection (the stream
    /// position is unspecified).
    pub fn read_frame_corr(
        &mut self,
        r: &mut impl Read,
        max_frame: u32,
    ) -> Result<(u8, u64, Vec<u8>), WireError> {
        let header_len = self.header_len();
        while self.header_have < header_len {
            match r.read(&mut self.header[self.header_have..header_len]) {
                // EOF exactly on a frame boundary is a graceful close;
                // mid-header (or mid-payload below) it is a short read.
                Ok(0) => {
                    return Err(if self.mid_frame() {
                        WireError::ShortRead
                    } else {
                        WireError::Closed
                    })
                }
                Ok(n) => self.header_have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_error(e)),
            }
        }
        if self.payload.is_none() {
            if self.header[0] != MAGIC {
                return Err(WireError::Corrupt(format!(
                    "bad magic 0x{:02X} (want 0x{MAGIC:02X})",
                    self.header[0]
                )));
            }
            let len = u32::from_le_bytes([
                self.header[2],
                self.header[3],
                self.header[4],
                self.header[5],
            ]);
            if len > max_frame {
                return Err(WireError::TooLarge {
                    len,
                    max: max_frame,
                });
            }
            self.payload = Some(vec![0u8; len as usize]);
            self.payload_have = 0;
        }
        let payload = self.payload.as_mut().expect("payload allocated above");
        while self.payload_have < payload.len() {
            match r.read(&mut payload[self.payload_have..]) {
                Ok(0) => return Err(WireError::ShortRead),
                Ok(n) => self.payload_have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_error(e)),
            }
        }
        let kind = self.header[1];
        let corr = if header_len == 14 {
            u64::from_le_bytes(
                self.header[6..14]
                    .try_into()
                    .expect("slice is exactly 8 bytes"),
            )
        } else {
            0
        };
        let payload = self.payload.take().expect("payload allocated above");
        self.header_have = 0;
        self.payload_have = 0;
        Ok((kind, corr, payload))
    }

    /// [`Self::read_frame_corr`] for v1 streams, dropping the (always-zero)
    /// correlation id.
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
        max_frame: u32,
    ) -> Result<(u8, Vec<u8>), WireError> {
        self.read_frame_corr(r, max_frame)
            .map(|(kind, _corr, payload)| (kind, payload))
    }
}

/// Write one v1 frame. The header and payload go out in a single
/// `write_all` so a concurrent reader never sees a torn header.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    let mut frame = Vec::with_capacity(6 + payload.len());
    frame.push(MAGIC);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Write one v2 (pipelined) frame carrying a correlation id. Single
/// `write_all`, same torn-header guarantee as [`write_frame`] — which is
/// what lets many threads interleave whole frames on one connection under
/// a write lock.
pub fn write_frame_corr(
    w: &mut impl Write,
    kind: u8,
    corr: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut frame = Vec::with_capacity(14 + payload.len());
    frame.push(MAGIC);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&corr.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Read one frame, validating magic and length cap before allocating.
/// Returns `(kind, payload)`. One-shot: a deadline that fires mid-frame
/// loses the bytes already consumed, so only use this where a timeout is
/// fatal for the connection — pollers must hold a [`FrameReader`].
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<(u8, Vec<u8>), WireError> {
    FrameReader::new().read_frame(r, max_frame)
}

/// A read deadline for the next frame(s) on a socket. `None` blocks forever.
pub fn set_deadline(stream: &std::net::TcpStream, d: Option<Duration>) -> Result<(), WireError> {
    stream.set_read_timeout(d).map_err(io_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::REQUEST, b"hello").unwrap();
        let (k, p) = read_frame(&mut &buf[..], MAX_FRAME).unwrap();
        assert_eq!(k, kind::REQUEST);
        assert_eq!(p, b"hello");
    }

    #[test]
    fn v2_round_trip_carries_the_correlation_id() {
        let mut buf = Vec::new();
        write_frame_corr(&mut buf, kind::REQUEST, 0xDEAD_BEEF_0042, b"pipelined").unwrap();
        let mut reader = FrameReader::new();
        reader.set_version(WIRE_VERSION_PIPELINED);
        let (k, corr, p) = reader.read_frame_corr(&mut &buf[..], MAX_FRAME).unwrap();
        assert_eq!(k, kind::REQUEST);
        assert_eq!(corr, 0xDEAD_BEEF_0042);
        assert_eq!(p, b"pipelined");
    }

    #[test]
    fn version_switch_after_a_v1_handshake_frame() {
        // A v1 HELLO_OK followed by v2 traffic on the same stream — exactly
        // the negotiation sequence.
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::HELLO_OK, b"ok").unwrap();
        write_frame_corr(&mut buf, kind::REPLY, 7, b"first").unwrap();
        write_frame_corr(&mut buf, kind::REPLY, 3, b"second").unwrap();
        let mut src = &buf[..];
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.read_frame(&mut src, MAX_FRAME).unwrap(),
            (kind::HELLO_OK, b"ok".to_vec())
        );
        reader.set_version(WIRE_VERSION_PIPELINED);
        assert_eq!(
            reader.read_frame_corr(&mut src, MAX_FRAME).unwrap(),
            (kind::REPLY, 7, b"first".to_vec())
        );
        assert_eq!(
            reader.read_frame_corr(&mut src, MAX_FRAME).unwrap(),
            (kind::REPLY, 3, b"second".to_vec())
        );
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let buf = [0xFFu8, 1, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![MAGIC, kind::REPLY];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::TooLarge { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn truncated_payload_is_short_read_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::REPLY, &[9; 100]).unwrap();
        buf.truncate(20);
        assert_eq!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(WireError::ShortRead)
        );
    }

    #[test]
    fn eof_between_frames_is_a_clean_close() {
        assert_eq!(read_frame(&mut &[][..], MAX_FRAME), Err(WireError::Closed));
    }

    /// Yields `data` a few bytes at a time with a `WouldBlock` (= read
    /// deadline fired) between chunks — a frame arriving slower than a
    /// poll-style timeout.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut data = Vec::new();
        write_frame(&mut data, kind::REQUEST, &[7; 100]).unwrap();
        write_frame(&mut data, kind::REQUEST, b"second").unwrap();
        // 3-byte chunks split both the header and the payload across many
        // timeout ticks; every boundary must be survivable.
        let mut src = Trickle {
            data,
            pos: 0,
            chunk: 3,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0;
        while frames.len() < 2 {
            match reader.read_frame(&mut src, MAX_FRAME) {
                Ok(f) => frames.push(f),
                Err(WireError::Timeout) => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames[0], (kind::REQUEST, vec![7; 100]));
        assert_eq!(frames[1], (kind::REQUEST, b"second".to_vec()));
        assert!(timeouts > 10, "the trickle must actually have timed out");
    }

    #[test]
    fn frame_reader_reports_mid_frame_progress() {
        let mut data = Vec::new();
        write_frame(&mut data, kind::REPLY, &[1; 10]).unwrap();
        data.truncate(3); // half a header
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        assert_eq!(
            reader.read_frame(&mut &data[..], MAX_FRAME),
            Err(WireError::ShortRead)
        );
        assert!(reader.mid_frame());
    }
}
