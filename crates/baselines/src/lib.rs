//! # sapphire-baselines
//!
//! Comparison systems for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! §7.2 compares Sapphire against four runnable systems; each is
//! reimplemented here faithful to its *capability class* (see DESIGN.md):
//!
//! * [`qakis`] — QAKiS \[7\]: relational-pattern NL QA. Entity mention +
//!   relation pattern → single-relation SPARQL. No joins, no aggregates.
//! * [`kbqa`] — KBQA \[10\]: template-based factoid QA. Exact template match
//!   only → perfect precision, low recall.
//! * [`s4`] — S4 \[31\]: type-level summary graph; rewrites structurally naive
//!   queries whose predicates/terms are correct.
//! * [`sparqlbye`] — SPARQLByE [4, 11]: reverse-engineers queries from
//!   example answers with oracle feedback.
//! * [`scoring`] / [`harness`] — the QALD measures and the §7.2 protocol
//!   driver regenerating Table 1.

#![warn(missing_docs)]

pub mod entity_index;
pub mod harness;
pub mod kbqa;
pub mod qakis;
pub mod s4;
pub mod scoring;
pub mod sparqlbye;

pub use entity_index::EntityIndex;
pub use harness::ComparisonHarness;
pub use kbqa::Kbqa;
pub use qakis::QaKis;
pub use s4::S4;
pub use scoring::{paper_measured_rows, quoted_rows, SystemScore};
pub use sparqlbye::SparqlByE;
