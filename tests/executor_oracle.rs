//! Byte-identity oracle for the shared scatter/scan executor.
//!
//! The executor moved the cluster scatter, hedging, and the residual-bin
//! parallel scans off per-request `thread::spawn`/`thread::scope` and onto
//! a fixed work-stealing pool. None of that is allowed to be observable:
//! this suite drives the Appendix-B workload through two routers over the
//! same dataset — one on the executor (the default), one forced back onto
//! the spawn-per-request reference path — and requires every reply to be
//! byte-identical, including runs traced at sampling 1 (the `TraceScope`
//! parenting that used to ride on spawned threads now crosses the
//! executor's queue and must still attach per-shard spans to their
//! request's trace).

use std::sync::Arc;

use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_core::qsm::TermAlternative;
use sapphire_core::session::{Modifiers, Session};
use sapphire_core::{InitMode, PredictiveUserModel, SapphireConfig};
use sapphire_datagen::workload::appendix_b;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::EndpointLimits;
use sapphire_obs::Stage;
use sapphire_server::ServerConfig;
use sapphire_sparql::SelectQuery;
use sapphire_text::Lexicon;

fn sapphire_config() -> SapphireConfig {
    SapphireConfig {
        processes: 2,
        ..SapphireConfig::default()
    }
}

/// A 4-shard router over the fixed tiny dataset. `reference_spawns`
/// selects the comparison arm: the old spawn-per-request scatter instead
/// of the shared executor.
fn router(reference_spawns: bool) -> ClusterRouter {
    let graph = generate(DatasetConfig::tiny(42));
    let cluster = Cluster::build(
        "edge",
        &graph,
        4,
        1,
        &Lexicon::dbpedia_default(),
        &sapphire_config(),
        &ServerConfig::for_tests(),
    )
    .unwrap();
    let mut router = ClusterRouter::new(
        cluster,
        ClusterConfig {
            // Hedging off: identical replies must come from identical
            // primary calls, not a hedge racing ahead on one arm.
            hedge_after: None,
            ..ClusterConfig::for_tests()
        },
    );
    router.set_reference_spawns(reference_spawns);
    router
}

/// The scripted QSM queries, built once against a local model (the
/// predicate vocabulary is dataset-wide, so the built queries are valid on
/// both routers).
fn workload_queries() -> Vec<SelectQuery> {
    let pum = Arc::new(
        PredictiveUserModel::initialize_local(
            "oracle",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            sapphire_config(),
            InitMode::Federated,
        )
        .unwrap(),
    );
    appendix_b()
        .iter()
        .map(|q| {
            let modifiers = Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            };
            Session::resume(&pum, q.script.rows.clone(), modifiers, 0)
                .build_query()
                .expect("workload scripts build")
        })
        .collect()
}

/// Field-by-field equality for "did you mean" lists (`TermAlternative`
/// carries no `PartialEq`; prefetched answers included).
fn assert_alternatives_equal(a: &[TermAlternative], b: &[TermAlternative], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: alternative count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.position, y.position, "{ctx}");
        assert_eq!(x.replacement, y.replacement, "{ctx}");
        assert_eq!(x.original, y.original, "{ctx}");
        assert_eq!(x.triple_index, y.triple_index, "{ctx}");
        assert!((x.similarity - y.similarity).abs() < f64::EPSILON, "{ctx}");
        assert_eq!(x.query, y.query, "{ctx}");
        assert_eq!(x.answers, y.answers, "{ctx}: prefetched answers");
    }
}

/// The whole Appendix-B workload — per-keystroke QCM completions and every
/// scripted QSM run — answered byte-identically by the executor-driven
/// scatter and the spawn-per-request reference.
#[test]
fn executor_scatter_matches_spawn_per_request_reference() {
    let exec_router = router(false);
    let ref_router = router(true);

    let mut prefixes = 0;
    for q in appendix_b() {
        for input in &q.script.rows {
            let keyword = input.object.trim_start_matches('?');
            for end in 1..=keyword.chars().count().min(3) {
                let prefix: String = keyword.chars().take(end).collect();
                let on_exec = exec_router.complete("alice", &prefix).unwrap();
                let on_ref = ref_router.complete("alice", &prefix).unwrap();
                assert_eq!(
                    on_exec.suggestions, on_ref.suggestions,
                    "prefix {prefix:?}: completions diverged"
                );
                prefixes += 1;
            }
        }
    }
    assert!(prefixes > 30, "the QCM comparison covered the workload");

    for (i, query) in workload_queries().iter().enumerate() {
        let on_exec = exec_router.run("alice", query).unwrap();
        let on_ref = ref_router.run("alice", query).unwrap();
        assert_eq!(on_exec.answers, on_ref.answers, "question {i}: answers");
        assert_alternatives_equal(
            &on_exec.alternatives,
            &on_ref.alternatives,
            &format!("question {i}"),
        );
        assert_eq!(on_exec.executed, on_ref.executed, "question {i}");
    }

    // Both arms really scattered to all 4 shards.
    for (label, r) in [("exec", &exec_router), ("reference", &ref_router)] {
        let m = r.metrics();
        assert_eq!(m.fanout_per_shard.len(), 4, "{label}: shard fanout");
        assert_eq!(m.rejected_after_retry, 0, "{label}: no rejections");
    }
}

/// Traced runs (sampling 1) stay byte-identical, and the per-shard
/// `shard_rtt` spans still land inside their request's trace after the
/// scatter crossed the executor queue instead of a spawned thread.
#[test]
fn traced_runs_match_and_keep_shard_spans_through_the_executor() {
    let exec_router = router(false);
    let ref_router = router(true);
    exec_router.obs().set_sampling(1);
    ref_router.obs().set_sampling(1);

    for (i, query) in workload_queries().iter().take(5).enumerate() {
        let on_exec = exec_router.run("alice", query).unwrap();
        let on_ref = ref_router.run("alice", query).unwrap();
        assert_eq!(on_exec.answers, on_ref.answers, "traced question {i}");
        assert_alternatives_equal(
            &on_exec.alternatives,
            &on_ref.alternatives,
            &format!("traced question {i}"),
        );
    }

    let recorder = exec_router.obs().recorder();
    assert!(recorder.recorded() > 0, "sampling 1 records every request");
    let shard_span_name = Stage::ShardRtt.name();
    let traced_scatters = recorder
        .recent()
        .iter()
        .filter(|t| t.spans.iter().any(|s| s.name == shard_span_name))
        .count();
    assert!(
        traced_scatters > 0,
        "executor-run shard calls must attach their spans to the request trace"
    );
}
