//! Versioned, checksummed graph snapshots: the columnar [`Graph`] on disk.
//!
//! The on-disk layout is exactly the in-memory representation — the interner's
//! term table in id order followed by the three sorted columns as raw
//! little-endian `u32` rows — so a shard loads its partition with one
//! sequential read and three `Vec` fills instead of re-generating and
//! re-interning its dataset. (The column sections are 4-byte-aligned
//! fixed-stride arrays precisely so an mmap-based loader could point at them
//! in place; this build reads sequentially, which is already the cheap part.)
//!
//! ## File format (version 1)
//!
//! | offset | size | contents |
//! |--------|------|----------|
//! | 0      | 8    | magic `b"SAPHSNAP"` |
//! | 8      | 4    | format version, `u32` LE (currently 1) |
//! | 12     | 4    | reserved, must be 0 |
//! | 16     | 8    | term count, `u64` LE |
//! | 24     | 8    | triple count, `u64` LE |
//! | 32     | …    | term table: `term_count` tagged terms in id order |
//! | …      | 12·n | SPO column: `(s, p, o)` rows, each `u32` LE |
//! | …      | 12·n | POS column: `(p, o, s)` rows |
//! | …      | 12·n | OSP column: `(o, s, p)` rows |
//! | end−8  | 8    | FNV-1a-64 checksum of every preceding byte, `u64` LE |
//!
//! Each term is a tag byte — 0 IRI, 1 blank node, 2 literal — followed by
//! `u32`-length-prefixed UTF-8 strings (IRI text, blank label, or literal
//! lexical form plus a presence mask for language tag and datatype).
//!
//! Loading validates magic, version, checksum, column sortedness, rotation
//! consistency (POS and OSP must be permutations of SPO), and id bounds; any
//! violation is a typed [`SnapshotError`], never a panic, so a corrupt or
//! truncated file can't take down a shard at bring-up.

use std::fmt;
use std::io;
use std::path::Path;

use crate::graph::Graph;
use crate::interner::Interner;
use crate::term::{Literal, Term};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SAPHSNAP";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_LITERAL: u8 = 2;

const LIT_HAS_LANG: u8 = 1;
const LIT_HAS_DATATYPE: u8 = 2;

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error reading or writing the snapshot file.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(
        /// The version the file declared.
        u32,
    ),
    /// The file ends before the declared contents do.
    Truncated {
        /// Bytes the current field needed.
        needed: usize,
        /// Bytes actually remaining in the file.
        available: usize,
    },
    /// The trailing checksum does not match the file's contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the file's bytes.
        computed: u64,
    },
    /// The contents are structurally invalid (bad tag, unsorted column,
    /// out-of-range id, …) despite a matching checksum.
    Corrupt(
        /// What invariant was violated.
        &'static str,
    ),
    /// The graph still has triples in its delta overlay; call
    /// [`Graph::seal`] before writing.
    Unsealed,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {available} available"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Unsealed => {
                write!(
                    f,
                    "graph has unsealed delta triples; seal() before snapshotting"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The canonical file name for one shard's snapshot of a dataset scale:
/// `"<scale>-s<shard>of<shards>.snap"`. Builders and loaders both go through
/// this so they can never disagree about where a shard's bytes live.
pub fn shard_file_name(scale: &str, shard: usize, shards: usize) -> String {
    format!("{scale}-s{shard}of{shards}.snap")
}

/// Serialize a sealed graph into the version-1 snapshot byte layout.
pub fn encode(graph: &Graph) -> Result<Vec<u8>, SnapshotError> {
    let (spo, pos, osp) = graph.sealed_columns().ok_or(SnapshotError::Unsealed)?;
    let interner = graph.interner();
    let mut buf = Vec::with_capacity(64 + interner.len() * 24 + spo.len() * 36);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&(interner.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(spo.len() as u64).to_le_bytes());
    for (_, term) in interner.iter() {
        encode_term(&mut buf, term);
    }
    for column in [spo, pos, osp] {
        for &(a, b, c) in column {
            buf.extend_from_slice(&a.to_le_bytes());
            buf.extend_from_slice(&b.to_le_bytes());
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    let checksum = fnv1a64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(buf)
}

/// Write a sealed graph's snapshot to `path`, returning the byte size.
pub fn write(graph: &Graph, path: &Path) -> Result<u64, SnapshotError> {
    let bytes = encode(graph)?;
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Load a graph from a snapshot file with one sequential read.
pub fn load(path: &Path) -> Result<Graph, SnapshotError> {
    decode(&std::fs::read(path)?)
}

/// Reconstruct a graph from snapshot bytes, validating everything.
pub fn decode(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    // The checksum is verified first: everything after this line can trust
    // that the bytes are what the writer produced (or a deliberately crafted
    // file, which the structural checks below still reject without panicking).
    if bytes.len() < MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated {
            needed: MAGIC.len() + 8,
            available: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if body[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut cur = Cursor {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = cur.u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if cur.u32()? != 0 {
        return Err(SnapshotError::Corrupt("reserved header field is nonzero"));
    }
    let term_count = cur.u64_len()?;
    let triple_count = cur.u64_len()?;
    if u64::try_from(term_count).is_err() || term_count > u64::from(u32::MAX) as usize {
        return Err(SnapshotError::Corrupt("term count exceeds u32 id space"));
    }

    // Each term takes at least 5 bytes (tag + one length), so a hostile
    // term_count cannot force an allocation larger than the file itself.
    let mut terms = Vec::with_capacity(term_count.min(cur.remaining() / 5 + 1));
    for _ in 0..term_count {
        terms.push(decode_term(&mut cur)?);
    }

    let column_bytes = triple_count
        .checked_mul(12)
        .ok_or(SnapshotError::Corrupt("triple count overflows"))?;
    let needed = column_bytes
        .checked_mul(3)
        .ok_or(SnapshotError::Corrupt("triple count overflows"))?;
    if cur.remaining() != needed {
        return Err(SnapshotError::Truncated {
            needed,
            available: cur.remaining(),
        });
    }
    let read_column = |cur: &mut Cursor<'_>| -> Result<Vec<(u32, u32, u32)>, SnapshotError> {
        let raw = cur.take(column_bytes)?;
        let mut col = Vec::with_capacity(triple_count);
        for row in raw.chunks_exact(12) {
            col.push((
                u32::from_le_bytes(row[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(row[4..8].try_into().expect("4 bytes")),
                u32::from_le_bytes(row[8..12].try_into().expect("4 bytes")),
            ));
        }
        Ok(col)
    };
    let spo = read_column(&mut cur)?;
    let pos = read_column(&mut cur)?;
    let osp = read_column(&mut cur)?;

    // Structural validation: sortedness, rotation consistency, id bounds.
    for (col, name) in [
        (&spo, "spo column not strictly sorted"),
        (&pos, "pos column not strictly sorted"),
        (&osp, "osp column not strictly sorted"),
    ] {
        if !col.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(name));
        }
    }
    let max_id = term_count as u64;
    if spo.iter().any(|&(s, p, o)| {
        u64::from(s) >= max_id || u64::from(p) >= max_id || u64::from(o) >= max_id
    }) {
        return Err(SnapshotError::Corrupt("triple id out of term-table range"));
    }
    let mut expect_pos: Vec<(u32, u32, u32)> = spo.iter().map(|&(s, p, o)| (p, o, s)).collect();
    expect_pos.sort_unstable();
    if expect_pos != pos {
        return Err(SnapshotError::Corrupt(
            "pos column is not a rotation of spo",
        ));
    }
    let mut expect_osp: Vec<(u32, u32, u32)> = spo.iter().map(|&(s, p, o)| (o, s, p)).collect();
    expect_osp.sort_unstable();
    if expect_osp != osp {
        return Err(SnapshotError::Corrupt(
            "osp column is not a rotation of spo",
        ));
    }

    let interner = Interner::from_terms_checked(terms)
        .ok_or(SnapshotError::Corrupt("duplicate term in term table"))?;
    Ok(Graph::from_columns(interner, spo, pos, osp))
}

fn encode_term(buf: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(s) => {
            buf.push(TAG_IRI);
            encode_str(buf, s);
        }
        Term::Blank(s) => {
            buf.push(TAG_BLANK);
            encode_str(buf, s);
        }
        Term::Literal(lit) => {
            buf.push(TAG_LITERAL);
            encode_str(buf, &lit.value);
            let mask = lit.lang.as_ref().map_or(0, |_| LIT_HAS_LANG)
                | lit.datatype.as_ref().map_or(0, |_| LIT_HAS_DATATYPE);
            buf.push(mask);
            if let Some(lang) = &lit.lang {
                encode_str(buf, lang);
            }
            if let Some(dt) = &lit.datatype {
                encode_str(buf, dt);
            }
        }
    }
}

fn encode_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn decode_term(cur: &mut Cursor<'_>) -> Result<Term, SnapshotError> {
    match cur.u8()? {
        TAG_IRI => Ok(Term::Iri(cur.string()?)),
        TAG_BLANK => Ok(Term::Blank(cur.string()?)),
        TAG_LITERAL => {
            let value = cur.string()?;
            let mask = cur.u8()?;
            if mask & !(LIT_HAS_LANG | LIT_HAS_DATATYPE) != 0 {
                return Err(SnapshotError::Corrupt("unknown literal flag bits"));
            }
            let lang = (mask & LIT_HAS_LANG != 0)
                .then(|| cur.string())
                .transpose()?;
            let datatype = (mask & LIT_HAS_DATATYPE != 0)
                .then(|| cur.string())
                .transpose()?;
            Ok(Term::Literal(Literal {
                value,
                lang,
                datatype,
            }))
        }
        _ => Err(SnapshotError::Corrupt("unknown term tag")),
    }
}

/// Bounds-checked reader over the checksum-verified body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A `u64` header count, narrowed to `usize` (64-bit everywhere we run,
    /// but a 32-bit target would reject oversized counts as corrupt rather
    /// than wrap).
    fn u64_len(&mut self) -> Result<usize, SnapshotError> {
        let v = u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"));
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("count exceeds address space"))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 in term table"))
    }
}

/// FNV-1a 64-bit over a byte slice — the same mixing the interner's hasher
/// uses, written out so the on-disk checksum is pinned independently of any
/// `Hasher` implementation details.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sealed() -> Graph {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://x/s1"),
            Term::iri("http://x/p"),
            Term::en("one"),
        );
        g.insert(
            Term::iri("http://x/s1"),
            Term::iri("http://x/p"),
            Term::literal("plain"),
        );
        g.insert(
            Term::iri("http://x/s2"),
            Term::iri("http://x/p"),
            Term::Literal(Literal::integer(42)),
        );
        g.insert(
            Term::iri("http://x/s2"),
            Term::iri("http://x/q"),
            Term::blank("b0"),
        );
        g.seal();
        g
    }

    /// Recompute and overwrite the trailing checksum after a test mutation,
    /// so structural checks (not the checksum) are what reject the bytes.
    fn refresh_checksum(bytes: &mut [u8]) {
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn roundtrip_preserves_triples_ids_and_answers() {
        let g = sample_sealed();
        let loaded = decode(&encode(&g).unwrap()).unwrap();
        assert_eq!(loaded.len(), g.len());
        assert_eq!(
            loaded.matching(None, None, None),
            g.matching(None, None, None)
        );
        for (id, term) in g.interner().iter() {
            assert_eq!(loaded.interner().resolve(id), term);
        }
        let p = g.term_id(&Term::iri("http://x/p")).unwrap();
        assert_eq!(
            loaded.matching(None, Some(p), None),
            g.matching(None, Some(p), None)
        );
    }

    #[test]
    fn unsealed_graph_is_rejected() {
        let mut g = Graph::new();
        g.insert(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(matches!(encode(&g), Err(SnapshotError::Unsealed)));
        g.seal();
        assert!(encode(&g).is_ok());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let loaded = decode(&encode(&g).unwrap()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode(&sample_sealed()).unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = encode(&sample_sealed()).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_truncation_point_fails_typed() {
        let bytes = encode(&sample_sealed()).unwrap();
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated file must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::Corrupt(_)
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_fails_or_roundtrips_identically() {
        // Flipping any single bit must either be caught (almost always by
        // the checksum) — never a panic, never a silently different graph.
        let g = sample_sealed();
        let bytes = encode(&g).unwrap();
        for byte in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1;
            assert!(
                decode(&mutated).is_err(),
                "bit flip in byte {byte} was not detected"
            );
        }
    }

    #[test]
    fn crafted_unsorted_column_is_structurally_rejected() {
        let g = sample_sealed();
        let mut bytes = encode(&g).unwrap();
        // Swap the first two SPO rows (each 12 bytes) and fix the checksum:
        // the checksum now matches, so only the sortedness check can object.
        let columns_start = bytes.len() - 8 - g.len() * 36;
        let (a, b) = (columns_start, columns_start + 12);
        let row: Vec<u8> = bytes[a..a + 12].to_vec();
        bytes.copy_within(b..b + 12, a);
        bytes[b..b + 12].copy_from_slice(&row);
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::Corrupt("spo column not strictly sorted"))
        ));
    }

    #[test]
    fn crafted_rotation_mismatch_is_rejected() {
        let g = sample_sealed();
        let mut bytes = encode(&g).unwrap();
        // Point the last OSP row at a different (valid, in-range) value.
        let osp_last = bytes.len() - 8 - 12;
        let old = u32::from_le_bytes(bytes[osp_last..osp_last + 4].try_into().unwrap());
        bytes[osp_last..osp_last + 4].copy_from_slice(&(old.wrapping_add(1)).to_le_bytes());
        refresh_checksum(&mut bytes);
        assert!(matches!(decode(&bytes), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sapphire-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(shard_file_name("tiny", 0, 2));
        let g = sample_sealed();
        let size = write(&g, &path).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        let loaded = load(&path).unwrap();
        assert_eq!(
            loaded.matching(None, None, None),
            g.matching(None, None, None)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/sapphire.snap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn shard_file_names_are_canonical() {
        assert_eq!(shard_file_name("tiny", 0, 4), "tiny-s0of4.snap");
        assert_eq!(shard_file_name("large", 3, 4), "large-s3of4.snap");
    }
}
