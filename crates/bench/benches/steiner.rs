//! Steiner-tree relaxation benchmarks (Algorithm 3): expansion cost on the
//! Figure 6 workload as the query budget and seed-group size vary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;

use sapphire_core::qsm::StructureRelaxer;
use sapphire_core::SteinerConfig;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
use sapphire_rdf::Term;

fn bench_relax(c: &mut Criterion) {
    let graph = generate(DatasetConfig::tiny(42));
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let fed = FederatedProcessor::single(endpoint);
    let preferred: HashSet<String> = ["author", "publisher", "writer"]
        .iter()
        .map(|p| format!("http://dbpedia.org/ontology/{p}"))
        .collect();
    let groups = vec![
        vec![Term::en("Jack Kerouac")],
        vec![Term::en("Viking Press")],
    ];

    let mut group = c.benchmark_group("steiner_relax");
    group.sample_size(10);
    for budget in [10usize, 50, 100] {
        let config = SteinerConfig {
            query_budget: budget,
            ..SteinerConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(budget), &config, |b, config| {
            let relaxer = StructureRelaxer::new(&fed, *config, preferred.clone());
            b.iter(|| black_box(relaxer.relax(black_box(&groups))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relax);
criterion_main!(benches);
