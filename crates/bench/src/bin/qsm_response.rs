//! Regenerates the **§7.3.2 QSM response-time experiment**: per-query
//! suggestion latency over the user-study workload, broken down by which
//! suggestion machinery fires.
//!
//! Usage: `cargo run -p sapphire-bench --bin qsm_response --release [--scale tiny|small|medium]`

use sapphire_baselines::ComparisonHarness;
use sapphire_bench::{experiment_config, heading, scale_from_args};
use sapphire_core::session::Session;
use sapphire_datagen::userstudy::flatten;
use sapphire_datagen::workload::appendix_b;

fn main() {
    let dataset = scale_from_args();
    println!("(building harness…)");
    let harness = ComparisonHarness::build(dataset, experiment_config());

    println!(
        "{}",
        heading("QSM: suggestion latency per executed query (§7.3.2)")
    );
    println!(
        "{:<6} {:>9} {:>10} {:>8} {:>8} {:>10}",
        "qid", "latency", "relax-qrys", "#alts", "#relax", "flattened"
    );

    let mut latencies = Vec::new();
    for q in appendix_b() {
        // Run the QSM on the *flattened* (structurally naive) script when one
        // exists — those are the queries that exercise structure relaxation,
        // which dominates QSM latency in the paper.
        let (script, flattened) = match flatten(&q.script) {
            Some(f) => (f, true),
            None => (q.script.clone(), false),
        };
        let mut session = Session::new(&harness.pum);
        for (i, row) in script.rows.iter().enumerate() {
            session.set_row(i, row.clone());
        }
        session.modifiers.distinct = true;
        let Ok(query) = session.build_query() else {
            continue;
        };
        let out = harness.pum.qsm().suggest(&query, harness.pum.federation());
        let relax_queries: usize = out.relaxations.iter().map(|r| r.relaxed.queries_used).sum();
        latencies.push(out.elapsed.as_secs_f64());
        println!(
            "{:<6} {:>6.1} ms {:>10} {:>8} {:>8} {:>10}",
            q.id,
            out.elapsed.as_secs_f64() * 1_000.0,
            relax_queries,
            out.alternatives.len(),
            out.relaxations.len(),
            flattened,
        );
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let avg = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let p95 = latencies
        .get(
            latencies
                .len()
                .saturating_sub(1)
                .min(latencies.len() * 95 / 100),
        )
        .copied()
        .unwrap_or(0.0);
    println!(
        "\naverage QSM latency: {:.1} ms; p95: {:.1} ms",
        avg * 1_000.0,
        p95 * 1_000.0
    );
    println!("(paper: ≈10 s average against live DBpedia over the network; the");
    println!(" bound here is the simulated endpoint — the *budgeted query count*");
    println!(" per relaxation, capped at 100, is the comparable quantity)");
}
