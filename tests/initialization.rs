//! Initialization behaviour across endpoint resource regimes (§5):
//! warehouse vs federated, timeout-driven hierarchy descent, query budgets.

use sapphire_core::init::{InitMode, Initializer};
use sapphire_core::SapphireConfig;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{EndpointLimits, LocalEndpoint};

fn endpoint(timeout_work: Option<u64>) -> LocalEndpoint {
    let graph = generate(DatasetConfig::tiny(42));
    let limits = EndpointLimits {
        timeout_work,
        reject_above: None,
        max_results: None,
    };
    LocalEndpoint::new("dbpedia", graph, limits)
}

fn config() -> SapphireConfig {
    SapphireConfig {
        processes: 2,
        init_page_size: 200,
        ..SapphireConfig::default()
    }
}

#[test]
fn federated_cache_is_a_near_complete_subset_of_warehouse() {
    let ep = endpoint(None);
    let cfg = config();
    let (fed_cache, _) = Initializer::new(&ep, &cfg, InitMode::Federated)
        .run()
        .unwrap();
    let (wh_cache, _) = Initializer::new(&ep, &cfg, InitMode::Warehouse)
        .run()
        .unwrap();
    let collect = |c: &sapphire_core::CachedData| {
        let mut v: Vec<String> = c
            .significant
            .iter()
            .map(|(t, _)| t.clone())
            .chain((0..c.bins.len() as u32).map(|i| c.bins.literal(i).to_string()))
            .collect();
        v.sort();
        v
    };
    let fed = collect(&fed_cache);
    let wh = collect(&wh_cache);
    // Class-partitioned retrieval (Q6) can only see literals of *typed*
    // entities; the warehouse scan (Q9) sees everything. So federated ⊆
    // warehouse, with near-complete coverage on a DBpedia-like dataset.
    for l in &fed {
        assert!(
            wh.contains(l),
            "federated cached {l:?} that warehouse missed"
        );
    }
    assert!(
        fed.len() * 100 >= wh.len() * 95,
        "federated coverage too low: {} of {}",
        fed.len(),
        wh.len()
    );
}

#[test]
fn init_filters_language_and_length() {
    let ep = endpoint(None);
    let cfg = config();
    let (cache, _) = Initializer::new(&ep, &cfg, InitMode::Federated)
        .run()
        .unwrap();
    let all: Vec<String> = cache
        .significant
        .iter()
        .map(|(t, _)| t.clone())
        .chain((0..cache.bins.len() as u32).map(|i| cache.bins.literal(i).to_string()))
        .collect();
    assert!(!all.is_empty());
    assert!(all.iter().all(|l| l.chars().count() < 80), "length filter");
    assert!(
        all.iter().all(|l| !l.starts_with("Étranger")),
        "language filter"
    );
}

#[test]
fn tighter_timeouts_mean_more_queries_not_fewer_literals() {
    let cfg = config();
    // The timeout regime needs enough data that some class-level queries
    // exceed the budget: use the `small` dataset for this test.
    let big_endpoint = |timeout_work: Option<u64>| {
        let graph = generate(DatasetConfig::small(42));
        let limits = EndpointLimits {
            timeout_work,
            reject_above: None,
            max_results: None,
        };
        LocalEndpoint::new("dbpedia", graph, limits)
    };
    let loose = big_endpoint(None);
    let (loose_cache, loose_stats) = Initializer::new(&loose, &cfg, InitMode::Federated)
        .run()
        .unwrap();

    // Tight enough that root-level class queries time out, loose enough
    // that the short metadata queries (Q1–Q4) survive (§5.1 assumes they do;
    // the simulated endpoint answers them from statistics, as real ones do).
    let tight = big_endpoint(Some(4_000));
    let (tight_cache, tight_stats) = Initializer::new(&tight, &cfg, InitMode::Federated)
        .run()
        .unwrap();

    assert!(
        tight_stats.timeouts > 0,
        "the tight endpoint must time out somewhere"
    );
    assert!(
        tight_stats.total_queries() > loose_stats.total_queries(),
        "descent into subclasses costs extra queries ({} vs {})",
        tight_stats.total_queries(),
        loose_stats.total_queries()
    );
    // Literal coverage should not collapse: descent recovers what timeouts lost.
    assert!(
        tight_cache.literal_count() * 10 >= loose_cache.literal_count() * 7,
        "descent keeps ≥70% coverage ({} vs {})",
        tight_cache.literal_count(),
        loose_cache.literal_count()
    );
}

#[test]
fn significant_literals_have_high_indegree_entities() {
    let ep = endpoint(None);
    let cfg = SapphireConfig {
        suffix_tree_capacity: 10,
        ..config()
    };
    let (cache, _) = Initializer::new(&ep, &cfg, InitMode::Federated)
        .run()
        .unwrap();
    // The top significant literals should include heavily referenced anchor
    // entities (cities with many incoming birthPlace/country edges).
    assert_eq!(cache.significant.len(), 10);
    let min_sig = cache.significant.last().unwrap().1;
    assert!(
        cache.significant.first().unwrap().1 >= min_sig,
        "significance ordering"
    );
    assert!(
        cache.significant.first().unwrap().1 > 0,
        "top literal is actually referenced"
    );
}

#[test]
fn classes_are_available_for_type_keywords() {
    let ep = endpoint(None);
    let (cache, _) = Initializer::new(&ep, &config(), InitMode::Federated)
        .run()
        .unwrap();
    assert!(!cache.classes.is_empty());
    let chess = cache.similar_classes("chess player", 0.8);
    assert!(!chess.is_empty());
    assert!(cache.classes[chess[0].0].iri.ends_with("ChessPlayer"));
}

#[test]
fn query_budget_prioritizes_frequent_predicates() {
    let ep = endpoint(None);
    let cfg = SapphireConfig {
        init_query_limit: Some(30),
        ..config()
    };
    let (cache, stats) = Initializer::new(&ep, &cfg, InitMode::Federated)
        .run()
        .unwrap();
    assert!(stats.stopped_by_limit);
    // With the budget exhausted early, the cache is partial but usable, and
    // the most frequent literal predicate (name) was served first.
    if cache.literal_count() > 0 {
        let all: Vec<String> = cache.significant.iter().map(|(t, _)| t.clone()).collect();
        assert!(!all.is_empty());
    }
}
