//! Cluster-mode load harness: `serve_load --cluster` and the CI smoke gate.
//!
//! Drives the same Appendix-B closed-loop workload as [`crate::serve`], but
//! against a [`ClusterRouter`] over a sharded, replicated [`Cluster`]
//! instead of one `SapphireServer` — the scatter-gather edge, load-aware
//! routing, typed retry, and the deterministic merges all on the hot path.
//! On top of throughput/latency it reports the router's own observability
//! ([`sapphire_cluster::ClusterMetrics`]) and runs a
//! **determinism self-check**: a second router with fresh edge caches over
//! the *same* shard replicas replays a sample of the workload, and any
//! byte-level divergence is counted in `merge_mismatches` (the CI gate
//! requires zero).

use std::sync::Arc;
use std::time::Instant;

use sapphire_cluster::{Cluster, ClusterConfig, ClusterError, ClusterRouter};
use sapphire_core::session::{Modifiers, Session};
use sapphire_core::{CacheStats, PredictiveUserModel};
use sapphire_datagen::generate;
use sapphire_datagen::workload::{appendix_b, Question};
use sapphire_server::{ServerConfig, ServerError};
use sapphire_sparql::SelectQuery;
use sapphire_text::Lexicon;

use crate::serve::ClassStats;
use crate::{dataset_for, experiment_config};

/// Everything the cluster harness can be asked to do.
#[derive(Debug, Clone)]
pub struct ClusterLoadOptions {
    /// Closed-loop simulated users.
    pub users: usize,
    /// Times each user replays the whole Appendix-B question list.
    pub rounds: usize,
    /// Dataset scale (`tiny`/`small`/`medium`).
    pub scale: String,
    /// Data shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Questions (and QCM terms) replayed by the determinism self-check
    /// (`0` skips it).
    pub determinism_sample: usize,
    /// Trace one request in N through the router's flight recorder (`0` =
    /// off; slowest traces dump to stderr after the run).
    pub trace_sample: u32,
}

impl Default for ClusterLoadOptions {
    fn default() -> Self {
        ClusterLoadOptions {
            users: 8,
            rounds: 2,
            scale: "tiny".to_string(),
            shards: 2,
            replicas: 2,
            determinism_sample: 8,
            trace_sample: 0,
        }
    }
}

/// Fold a router outcome into the per-class stats buckets (the cluster's
/// typed errors carry the shard's typed rejection). Shared with the
/// open-loop overload harness in [`crate::overload`].
pub(crate) fn flatten(result: Result<(), ClusterError>) -> Result<(), ServerError> {
    match result {
        Ok(()) => Ok(()),
        Err(ClusterError::ShardUnavailable { last, .. }) => Err(last),
        Err(ClusterError::Shard { error, .. })
        | Err(ClusterError::CrossShard { error })
        | Err(ClusterError::EdgeRejected(error)) => Err(error),
        Err(ClusterError::Unsupported(m)) => Err(ServerError::Backend(m)),
    }
}

/// Build each workload question's query once against the shard models.
/// Keyword predicates resolve against a shard-local cache; a rare predicate
/// can be missing from one shard's slice (all its subjects hashed
/// elsewhere), so resolution walks the shards in order and takes the first
/// that can build the script — deterministic for the fixed seed. Shared
/// with the wire-mode harness in [`crate::wire`].
pub(crate) fn workload_queries(
    models: &[std::sync::Arc<PredictiveUserModel>],
    questions: &[Question],
) -> Vec<SelectQuery> {
    questions
        .iter()
        .map(|q| {
            let modifiers = Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            };
            models
                .iter()
                .find_map(|m| {
                    Session::resume(m, q.script.rows.clone(), modifiers.clone(), 0)
                        .build_query()
                        .ok()
                })
                .expect("some shard resolves every workload script")
        })
        .collect()
}

/// Run the cluster workload and return the JSON report.
pub fn run(opts: &ClusterLoadOptions) -> String {
    let dataset = dataset_for(&opts.scale);
    eprintln!(
        "(generating dataset + initializing {} shard models x {} replicas…)",
        opts.shards, opts.replicas
    );
    // Timed bring-up phases: generate, partition, model init. These are the
    // per-shard "regenerate" reference the snapshot path (wire mode's
    // `bringup` section) is measured against.
    let bringup_clock = Instant::now();
    let graph = generate(dataset);
    let generate_us = bringup_clock.elapsed().as_micros() as u64;
    let triple_count = graph.len();
    let partition_clock = Instant::now();
    let partition = sapphire_rdf::Partitioner::new(opts.shards).split(&graph);
    let partition_us = partition_clock.elapsed().as_micros() as u64;
    // The same serving posture as the single-box harness: hardware-sized
    // gates (floored at 8), a finite queue, a CI-safe queue deadline.
    let default_in_flight = ServerConfig::default().max_in_flight.max(8);
    let server_config = ServerConfig {
        max_in_flight: default_in_flight,
        max_queue_depth: default_in_flight * 4,
        queue_wait: std::time::Duration::from_millis(1_000),
        ..ServerConfig::default()
    };
    let init_clock = Instant::now();
    let cluster = Cluster::build_from_shards(
        "edge",
        partition.shards,
        partition.schema_triples,
        partition.data_triples,
        opts.replicas,
        &Lexicon::dbpedia_default(),
        &experiment_config(),
        &server_config,
    )
    .expect("shard initialization");
    let model_init_us = init_clock.elapsed().as_micros() as u64;
    let schema_triples = cluster.schema_triples();
    let stored_triples: usize =
        cluster.data_triples().iter().sum::<usize>() + schema_triples * cluster.shard_count();
    // A second router over the *same* replicas, with its own cold edge
    // caches, for the determinism self-check.
    let replay_cluster = Cluster::from_replicas(cluster.shards().to_vec());
    let router = Arc::new(ClusterRouter::new(cluster, ClusterConfig::default()));
    router.obs().set_sampling(opts.trace_sample);
    let replay = ClusterRouter::new(replay_cluster, ClusterConfig::default());

    // Build each question's query once (see [`workload_queries`]).
    let models: Vec<_> = (0..router.cluster().shard_count())
        .map(|s| router.cluster().replicas(s)[0].model().clone())
        .collect();
    let questions = appendix_b();
    let queries: Vec<SelectQuery> = workload_queries(&models, &questions);

    eprintln!(
        "(driving {} users x {} rounds over {} questions against {} shards…)",
        opts.users,
        opts.rounds,
        questions.len(),
        opts.shards
    );
    let started = Instant::now();
    let (mut qcm, mut qsm) = (ClassStats::default(), ClassStats::default());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for user in 0..opts.users {
            let router = router.clone();
            let questions = &questions;
            let queries = &queries;
            let rounds = opts.rounds;
            handles.push(scope.spawn(move || {
                let tenant = format!("user-{user}");
                let mut qcm = ClassStats::default();
                let mut qsm = ClassStats::default();
                for round in 0..rounds {
                    for qi in 0..questions.len() {
                        let idx = (qi + user + round) % questions.len();
                        for input in &questions[idx].script.rows {
                            let keyword = input.object.trim_start_matches('?');
                            for end in 1..=keyword.chars().count().min(6) {
                                let prefix: String = keyword.chars().take(end).collect();
                                let t = Instant::now();
                                let r = router.complete(&tenant, &prefix).map(|_| ());
                                qcm.record(t, &flatten(r));
                            }
                        }
                        let t = Instant::now();
                        let r = router.run(&tenant, &queries[idx]).map(|_| ());
                        qsm.record(t, &flatten(r));
                    }
                }
                (qcm, qsm)
            }));
        }
        for h in handles {
            let (c, s) = h.join().expect("no worker panics");
            qcm.merge(c);
            qsm.merge(s);
        }
    });
    let wall = started.elapsed();

    // Determinism self-check: a cold second edge over the same shards must
    // reproduce every byte (answers, suggestion list, completions).
    let sample = opts.determinism_sample.min(queries.len());
    let mut merge_mismatches = 0u64;
    for query in queries.iter().take(sample) {
        match (router.run("replay", query), replay.run("replay", query)) {
            (Ok(a), Ok(b)) => {
                let alts_match = a.alternatives.len() == b.alternatives.len()
                    && a.alternatives.iter().zip(&b.alternatives).all(|(x, y)| {
                        x.replacement == y.replacement
                            && x.position == y.position
                            && x.answers == y.answers
                    });
                if a.answers != b.answers || !alts_match {
                    merge_mismatches += 1;
                }
            }
            _ => merge_mismatches += 1,
        }
    }
    for question in questions.iter().take(sample) {
        let keyword = question.script.rows[0].object.trim_start_matches('?');
        match (
            router.complete("replay", keyword),
            replay.complete("replay", keyword),
        ) {
            (Ok(a), Ok(b)) => {
                if a.suggestions != b.suggestions {
                    merge_mismatches += 1;
                }
            }
            _ => merge_mismatches += 1,
        }
    }

    let metrics = router.metrics();
    let cache_stats = |s: CacheStats| {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_ratio\": {:.3}}}",
            s.hits,
            s.misses,
            s.evictions,
            s.hit_ratio()
        )
    };
    let fanout_total: u64 = metrics.fanout_per_shard.iter().sum();
    // One ledger with the overload report: the steady-state run surfaces the
    // same degraded-merge counters (total and per tier) the router counts.
    let degraded_tiers: String = metrics
        .degraded_by_tier
        .iter()
        .enumerate()
        .skip(1)
        .map(|(tier, runs)| format!(", \"degraded_tier{tier}\": {runs}"))
        .collect();
    let obs = router.obs();
    if opts.trace_sample > 0 {
        eprintln!(
            "(flight recorder: slowest end-to-end traces)\n{}",
            obs.recorder().dump_slowest(5)
        );
    }
    let report = format!(
        "{{\n  \"benchmark\": \"serve_cluster\",\n  \"config\": {{\"users\": {}, \
         \"rounds\": {}, \"scale\": \"{}\", \"shards\": {}, \"replicas\": {}, \
         \"triples\": {triple_count}, \"schema_triples\": {schema_triples}, \
         \"stored_triples\": {stored_triples}}},\n  \
         \"wall_seconds\": {:.3},\n  \"total_throughput_rps\": {:.1},\n  \
         \"qcm\": {},\n  \"qsm\": {},\n  \
         \"routing\": {{\"fanout_total\": {fanout_total}, \"hedges_fired\": {}, \
         \"hedges_won\": {}, \"replica_retries\": {}, \"rejected_after_retry\": {}, \
         \"merges\": {}, \"merge_depth_max\": {}, \"edge_coalesced_hits\": {}, \
         \"edge_coalesce_leaders\": {}, \"degraded_runs\": {}{degraded_tiers}}},\n  \
         \"transport\": {{\"wire_connects\": {}, \"wire_reconnects\": {}, \
         \"wire_io_errors\": {}, \"wire_corrupt_frames\": {}}},\n  \
         \"edge_completion_cache\": {},\n  \"edge_run_cache\": {},\n  \
         \"stages\": {},\n  \
         \"trace\": {{\"sampling\": {}, \"recorded\": {}, \"dropped\": {}}},\n  \
         \"bringup\": {{\"mode\": \"generate\", \"generate_us\": {generate_us}, \
         \"partition_us\": {partition_us}, \"model_init_us\": {model_init_us}}},\n  \
         \"merge_mismatches\": {merge_mismatches},\n  \
         \"rejected_total\": {}\n}}",
        opts.users,
        opts.rounds,
        opts.scale,
        opts.shards,
        opts.replicas,
        wall.as_secs_f64(),
        (qcm.latencies_us.len() + qsm.latencies_us.len()) as f64 / wall.as_secs_f64().max(1e-9),
        qcm.json(wall),
        qsm.json(wall),
        metrics.hedges_fired,
        metrics.hedges_won,
        metrics.replica_retries,
        metrics.rejected_after_retry,
        metrics.merges,
        metrics.merge_depth_max,
        metrics.edge_coalesced_hits,
        metrics.edge_coalesce_leaders,
        metrics.degraded_runs,
        metrics.wire_connects,
        metrics.wire_reconnects,
        metrics.wire_io_errors,
        metrics.wire_corrupt_frames,
        cache_stats(metrics.completion_cache),
        cache_stats(metrics.run_cache),
        obs.stages_json(),
        opts.trace_sample,
        obs.recorder().recorded(),
        obs.recorder().evicted(),
        qcm.rejected() + qsm.rejected(),
    );
    report
}
