//! The multi-session Sapphire server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_core::qsm::QsmOutput;
use sapphire_core::session::{Modifiers, Session, TripleInput};
use sapphire_core::{AnswerTable, CacheStats, PredictiveUserModel};
use sapphire_endpoint::{QueryService, ServiceError};
use sapphire_obs::{MetricsHub, Obs, Stage};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, WorkBudget};

use crate::admission::{AdmissionController, AdmissionPermit, TenantBudgets};
use crate::coalesce::{Coalescer, Join};
use crate::error::{from_federation, ServerError};
use crate::registry::{SessionId, SessionRegistry};
use crate::response_cache::{completion_key, run_key_tier, ShardedResponseCache};

/// Tuning knobs of a [`SapphireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Service name (reported through the [`QueryService`] surface).
    pub name: String,
    /// Requests allowed to execute concurrently.
    pub max_in_flight: usize,
    /// Requests allowed to wait for a slot beyond `max_in_flight`; everything
    /// past this is rejected with [`ServerError::Overloaded`].
    pub max_queue_depth: usize,
    /// How long a queued request may wait before a typed
    /// [`ServerError::QueueTimeout`].
    pub queue_wait: Duration,
    /// Per-tenant work budget per accounting window (`None` = unlimited).
    /// Denominated in evaluator work units — see
    /// [`ServerConfig::with_tenant_budget`].
    pub tenant_window_budget: Option<u64>,
    /// Work units charged per QCM completion request.
    pub completion_cost: u64,
    /// Work units charged per run request, plus
    /// [`run_per_pattern_cost`](Self::run_per_pattern_cost) per triple pattern.
    pub run_base_cost: u64,
    /// Extra work units charged per triple pattern in a run request.
    pub run_per_pattern_cost: u64,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per response-cache shard.
    pub cache_capacity_per_shard: usize,
    /// Session-registry shards.
    pub registry_shards: usize,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
    /// Followers allowed to block behind one in-flight model scan per
    /// request key (single-flight coalescing); further duplicates bypass
    /// coalescing and run their own scan, so one hot key can never grow an
    /// unbounded queue. `0` disables coalescing entirely.
    pub coalesce_waiters_per_key: usize,
    /// Opt-in deadline-aware QSM budget shedding. When enabled, a run
    /// admitted while the admission queue is backed up executes its Steiner
    /// relaxation at a reduced budget tier from the
    /// [`SteinerConfig`](sapphire_core::SteinerConfig) ladder (queue
    /// non-empty → tier 1; queue at least half of
    /// [`max_queue_depth`](Self::max_queue_depth) → tier 2), trading
    /// relaxation depth for tail latency exactly when waiters are burning
    /// their deadlines. Degraded output is flagged
    /// ([`QsmOutput::degraded`]) and cached/coalesced under tier-suffixed
    /// keys, so it can never be served to a full-budget request. **Default
    /// off**: every run is full-tier and byte-identical to the single-user
    /// library, which is what the determinism oracles assert.
    pub qsm_shed_budget: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(8);
        ServerConfig {
            name: "sapphire".to_string(),
            max_in_flight: cores,
            max_queue_depth: cores * 4,
            queue_wait: Duration::from_millis(250),
            tenant_window_budget: None,
            completion_cost: 1,
            run_base_cost: 4,
            run_per_pattern_cost: 4,
            cache_shards: 16,
            cache_capacity_per_shard: 4096,
            registry_shards: 16,
            max_sessions: 65_536,
            coalesce_waiters_per_key: 1024,
            qsm_shed_budget: false,
        }
    }
}

impl ServerConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        ServerConfig {
            max_in_flight: 4,
            max_queue_depth: 8,
            queue_wait: Duration::from_millis(100),
            cache_shards: 4,
            cache_capacity_per_shard: 64,
            registry_shards: 4,
            max_sessions: 256,
            ..Self::default()
        }
    }

    /// Derive the per-tenant window quota from an evaluator [`WorkBudget`] —
    /// the same knob the endpoints use per query, promoted to a service-level
    /// QoS setting. An unlimited budget disables quotas.
    pub fn with_tenant_budget(mut self, budget: &WorkBudget) -> Self {
        self.tenant_window_budget = budget.limit();
        self
    }
}

/// Point-in-time observability snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// QCM completion requests received.
    pub completion_requests: u64,
    /// Run (QSM) requests received.
    pub run_requests: u64,
    /// Raw queries served through the [`QueryService`] surface.
    pub service_requests: u64,
    /// Requests rejected with [`ServerError::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests rejected with [`ServerError::QueueTimeout`].
    pub rejected_queue_timeout: u64,
    /// Requests rejected with [`ServerError::QuotaExhausted`].
    pub rejected_quota: u64,
    /// Tenant meters evicted from the bounded budget-accounting LRU. Each
    /// eviction silently reset some tenant's in-window usage, so a nonzero
    /// value means quotas may have been under-enforced; a growing one means
    /// tenant cardinality exceeds what the meter tracks.
    pub tenant_meter_evictions: u64,
    /// Requests served with a concurrent identical request's result instead
    /// of their own model scan (single-flight followers), across the QCM,
    /// QSM, and raw-query surfaces.
    pub coalesced_hits: u64,
    /// The QCM-surface subset of [`coalesced_hits`](Self::coalesced_hits).
    /// Such a request first logged a completion-cache *miss* (the cache
    /// genuinely had no entry yet) and was then served from the in-flight
    /// scan — so `completion_cache.hits + completion_coalesced_hits` over
    /// total lookups is the fraction of completion requests served without
    /// a model scan, independent of how requests happened to overlap.
    pub completion_coalesced_hits: u64,
    /// The QSM-run-surface subset of [`coalesced_hits`](Self::coalesced_hits)
    /// (same reading as
    /// [`completion_coalesced_hits`](Self::completion_coalesced_hits), for
    /// the run cache).
    pub run_coalesced_hits: u64,
    /// Model scans executed as single-flight leaders — for a burst of N
    /// identical cold requests this increments once, not N times.
    pub coalesce_leader_runs: u64,
    /// Model scans executed because a flight's waiter cap was full (or
    /// coalescing was disabled): the request ran its own scan instead of
    /// blocking. `coalesce_leader_runs + coalesce_bypass_runs` is the total
    /// cold-path scan count.
    pub coalesce_bypass_runs: u64,
    /// Admission slots handed directly from a finishing request to the
    /// oldest queued waiter (fair FIFO wakeup, no thundering herd).
    pub fifo_handoffs: u64,
    /// Run requests that *selected* a reduced QSM budget tier (cache hits
    /// on a tier-keyed entry included) — 0 unless
    /// [`ServerConfig::qsm_shed_budget`] is on *and* the queue backed up,
    /// or an upstream edge requested a tier through
    /// [`SapphireServer::run_select_tiered`]. The payload itself reports
    /// whether the reduced budget could actually affect it
    /// ([`QsmOutput::degraded`] stays false for queries with no relaxation
    /// to shed).
    pub qsm_degraded_runs: u64,
    /// Completion-cache counters.
    pub completion_cache: CacheStats,
    /// Run-cache counters.
    pub run_cache: CacheStats,
    /// Sessions currently open.
    pub open_sessions: usize,
}

#[derive(Debug, Default)]
struct Counters {
    completion_requests: AtomicU64,
    run_requests: AtomicU64,
    service_requests: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_queue_timeout: AtomicU64,
    rejected_quota: AtomicU64,
    coalesced_hits: AtomicU64,
    coalesced_completion_hits: AtomicU64,
    coalesced_run_hits: AtomicU64,
    coalesce_leader_runs: AtomicU64,
    coalesce_bypass_runs: AtomicU64,
    qsm_degraded_runs: AtomicU64,
}

/// Result of a server-side "Run" click.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The query's answers, wrapped for table interaction.
    pub answers: AnswerTable,
    /// QSM suggestions (also retained server-side for
    /// [`SapphireServer::apply_alternative`]). Shared with the response
    /// cache and the session's committed copy: handing them to the caller is
    /// a pointer bump, not a deep copy of per-alternative prefetched answer
    /// sets — on a hot cached query that copy *was* the per-request cost.
    pub suggestions: Arc<QsmOutput>,
    /// True if the query executed (even with zero answers).
    pub executed: bool,
    /// The session's attempt count after this run.
    pub attempts: u32,
    /// True if answers and suggestions came from the response cache.
    pub cached: bool,
}

/// What one run produces as a pure function of the query — the payload the
/// run cache stores and single-flight leaders share, without any
/// session-specific bookkeeping. Suggestions are shared (`Arc`) because they
/// also land in `SessionEntry::last_suggestions`: committing them must be a
/// pointer bump, not a deep copy of per-alternative answer sets under the
/// session lock.
// `Clone` is a pointer bump on `suggestions` plus the answer table; the wire
// server clones one payload per remote run reply to serialize it.
#[derive(Debug, Clone)]
pub struct RunPayload {
    /// The query's answers (empty if execution failed).
    pub answers: Solutions,
    /// True if the query executed (even with zero answers).
    pub executed: bool,
    /// QSM suggestions for the query.
    pub suggestions: Arc<QsmOutput>,
}

/// A session's state captured under its lock for one run request.
#[derive(Debug)]
struct RunSnapshot {
    tenant: String,
    triples: Vec<TripleInput>,
    modifiers: Modifiers,
    attempts: u32,
    generation: u64,
}

/// A run served through the sessionless [`SapphireServer::run_select`]
/// surface — what a cluster edge router scatters over shard replicas.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// True if this request ran no model scan of its own (response-cache hit
    /// or single-flight follower).
    pub cached: bool,
    /// The shared model-derived payload.
    pub payload: Arc<RunPayload>,
}

/// A concurrent, multi-session Sapphire query service.
///
/// One `SapphireServer` owns exactly one shared, immutable
/// [`PredictiveUserModel`] behind an [`Arc`] — the knowledge-graph endpoints,
/// the assembled cache (suffix tree + residual bins), the lexica. Sessions
/// are entries in a sharded registry holding only the user's typed state;
/// requests rehydrate a [`Session`] against the shared model for their
/// duration. Every model-touching request passes admission control and
/// per-tenant budgets first, and QCM/QSM responses are memoized in a sharded
/// bounded LRU.
pub struct SapphireServer {
    pum: Arc<PredictiveUserModel>,
    config: ServerConfig,
    registry: SessionRegistry,
    admission: Arc<AdmissionController>,
    tenants: TenantBudgets,
    completion_cache: ShardedResponseCache<CompletionResult>,
    run_cache: ShardedResponseCache<RunPayload>,
    completion_coalescer: Coalescer<CompletionResult, ServerError>,
    run_coalescer: Coalescer<RunPayload, ServerError>,
    service_coalescer: Coalescer<QueryResult, ServerError>,
    counters: Counters,
    obs: Arc<Obs>,
}

impl SapphireServer {
    /// Stand up a server over a shared model.
    pub fn new(pum: Arc<PredictiveUserModel>, config: ServerConfig) -> Self {
        Self::with_obs(pum, config, Arc::new(Obs::new()))
    }

    /// [`new`](Self::new) with a caller-supplied observability hub — how a
    /// cluster shard, the evented front-end, and a bench harness share one
    /// set of stage histograms and one flight recorder across tiers.
    pub fn with_obs(pum: Arc<PredictiveUserModel>, config: ServerConfig, obs: Arc<Obs>) -> Self {
        pum.install_obs(obs.clone());
        SapphireServer {
            registry: SessionRegistry::new(config.registry_shards, config.max_sessions),
            admission: Arc::new(AdmissionController::new(
                config.max_in_flight,
                config.max_queue_depth,
                config.queue_wait,
            )),
            tenants: TenantBudgets::new(config.tenant_window_budget),
            completion_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            run_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            completion_coalescer: Coalescer::new(
                config.cache_shards,
                config.coalesce_waiters_per_key,
            ),
            run_coalescer: Coalescer::new(config.cache_shards, config.coalesce_waiters_per_key),
            service_coalescer: Coalescer::new(config.cache_shards, config.coalesce_waiters_per_key),
            counters: Counters::default(),
            pum,
            config,
            obs,
        }
    }

    /// The shared model (e.g. for registering its endpoints elsewhere).
    pub fn model(&self) -> &Arc<PredictiveUserModel> {
        &self.pum
    }

    /// The observability hub: per-stage latency histograms, the trace
    /// sampler, and the flight recorder.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Admit through the gate with the wait time recorded into the
    /// [`Stage::AdmissionWait`] histogram (and the sampled trace, if any) —
    /// immediate grants record as ~0µs, queued grants as their park time.
    fn admit_timed(&self) -> Result<AdmissionPermit, ServerError> {
        let _t = self.obs.time(Stage::AdmissionWait);
        self.admission.admit()
    }

    /// [`admit_timed`](Self::admit_timed) with an optional per-request
    /// deadline budget: the queue wait is capped at
    /// `min(budget, queue_wait)` so a request can never park longer than
    /// the deadline its caller is still willing to wait.
    fn admit_within_timed(&self, budget: Option<Duration>) -> Result<AdmissionPermit, ServerError> {
        match budget {
            None => self.admit_timed(),
            Some(b) => {
                let _t = self.obs.time(Stage::AdmissionWait);
                self.admission.admit_within(b.min(self.config.queue_wait))
            }
        }
    }

    /// Record one single-flight follower's block time behind a leader's scan
    /// into the [`Stage::CoalesceWait`] histogram, and tag the sampled
    /// trace's span with the surface and the wait. Leaders and bypasses do
    /// not report here — their time is the scan itself.
    fn note_coalesce_wait(&self, started: std::time::Instant, surface: &'static str) {
        let waited_us = started.elapsed().as_micros() as u64;
        self.obs.record(Stage::CoalesceWait, waited_us);
        if let Some((trace, parent)) = sapphire_obs::trace::current_ctx() {
            trace.add_span(
                Stage::CoalesceWait.name(),
                started,
                waited_us,
                parent,
                format!("{surface} follower wait_us={waited_us}"),
            );
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Open an interactive session for `tenant`.
    pub fn open_session(&self, tenant: &str) -> Result<SessionId, ServerError> {
        self.registry.open(tenant)
    }

    /// Close a session; returns true if it existed.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.registry.close(id)
    }

    /// Replace one triple-pattern row of a session.
    pub fn set_row(
        &self,
        id: SessionId,
        idx: usize,
        input: TripleInput,
    ) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        if idx >= entry.triples.len() {
            entry.triples.resize_with(idx + 1, TripleInput::default);
        }
        entry.triples[idx] = input;
        entry.generation += 1;
        // Suggestions were derived from the rows just replaced; accepting
        // one now would splice its replacement into rows it never described.
        entry.last_suggestions = None;
        Ok(())
    }

    /// Replace a session's query modifiers.
    pub fn set_modifiers(&self, id: SessionId, modifiers: Modifiers) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        entry.modifiers = modifiers;
        entry.generation += 1;
        entry.last_suggestions = None;
        Ok(())
    }

    /// QCM: complete the term being typed in one of `id`'s text boxes.
    ///
    /// Admission-controlled and budget-charged; identical (normalized) terms
    /// across all sessions share one cached response, and a *burst* of
    /// identical not-yet-cached terms is single-flighted: one request scans
    /// the model as the leader, the rest receive its result ([`ServerMetrics`]
    /// counts them as `coalesced_hits`). Followers hold their admission slot
    /// while they wait, exactly as if they were running the scan themselves.
    pub fn complete(&self, id: SessionId, typed: &str) -> Result<CompletionResult, ServerError> {
        // Count before the session lookup, exactly as `run` does: a burst of
        // stale-session completions must stay visible in the request
        // denominator. The inner path counts too, so delegate uncounted.
        self.counters
            .completion_requests
            .fetch_add(1, Ordering::Relaxed);
        let tenant = self.registry.get(id)?.lock().unwrap().tenant.clone();
        self.complete_top_inner(&tenant, typed, self.pum.config().k)
    }

    /// QCM for a tenant *without* a session — the surface a cluster edge
    /// router scatters over shard replicas, where the session state lives at
    /// the edge and shards see only stateless (tenant, term) requests.
    /// Identical admission control, budgets, caching, and coalescing as
    /// [`complete`](Self::complete).
    pub fn complete_for(&self, tenant: &str, typed: &str) -> Result<CompletionResult, ServerError> {
        self.complete_top(tenant, typed, self.pum.config().k)
    }

    /// QCM with an explicit result budget — the cluster over-fetch surface
    /// (see [`sapphire_core::qcm::QueryCompletion::complete_top`]). A
    /// non-default budget gets its own response-cache/coalescing key, so a
    /// deep edge fetch can never be served a user-depth cached list or vice
    /// versa.
    pub fn complete_top(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError> {
        self.counters
            .completion_requests
            .fetch_add(1, Ordering::Relaxed);
        self.complete_top_inner(tenant, typed, k)
    }

    /// [`complete_top`](Self::complete_top) without the request counter —
    /// for callers that already counted (the session surface).
    fn complete_top_inner(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError> {
        let _req = self.obs.request_scope("complete", tenant);
        let permit = self.count_rejection(self.admit_timed())?;
        self.complete_top_admitted(tenant, typed, k, permit)
    }

    /// The post-admission QCM path: budgets, response cache, single-flight,
    /// model scan — with an execution slot the caller already owns. This is
    /// the entry point the evented front-end drives once a grant arrives
    /// ([`crate::frontend`]); the blocking surfaces go through
    /// [`complete_top_inner`](Self::complete_top_inner), which acquires the
    /// permit by parking. Does not bump the request counter — the caller did.
    pub(crate) fn complete_top_admitted(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
        permit: AdmissionPermit,
    ) -> Result<CompletionResult, ServerError> {
        self.count_rejection(self.tenants.charge(tenant, self.config.completion_cost))?;
        let key = if k == self.pum.config().k {
            completion_key(typed)
        } else {
            format!("{}\u{1}top{k}", completion_key(typed))
        };
        let lookup = {
            let mut t = self.obs.time(Stage::CacheLookup);
            let hit = self.completion_cache.get(&key);
            t.tag(if hit.is_some() {
                "completion hit"
            } else {
                "completion miss"
            });
            hit
        };
        if let Some(hit) = lookup {
            drop(permit);
            return Ok((*hit).clone());
        }
        let join_started = std::time::Instant::now();
        let joined = self.completion_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "completion");
        }
        let result = match joined {
            Join::Leader(token) => {
                // Re-check the cache under leadership (uncounted peek): the
                // flight that completed between our miss and this join
                // filled it, and a second scan of the same key must never
                // run.
                if let Some(hit) = self.completion_cache.peek(&key) {
                    // Served by the scan of a flight that beat this one —
                    // morally a coalesced hit, and counted as one so every
                    // request lands in exactly one metrics bucket.
                    self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .coalesced_completion_hits
                        .fetch_add(1, Ordering::Relaxed);
                    token.complete(Ok(hit.clone()));
                    (*hit).clone()
                } else {
                    self.counters
                        .coalesce_leader_runs
                        .fetch_add(1, Ordering::Relaxed);
                    let result = {
                        let mut t = self.obs.time(Stage::QcmScan);
                        t.tag("leader");
                        self.pum.complete_top(typed, k)
                    };
                    let shared = self.completion_cache.insert(key, result.clone());
                    token.complete(Ok(shared));
                    result
                }
            }
            Join::Follower(outcome) => {
                let shared = outcome?;
                self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .coalesced_completion_hits
                    .fetch_add(1, Ordering::Relaxed);
                (*shared).clone()
            }
            Join::Bypass => {
                self.counters
                    .coalesce_bypass_runs
                    .fetch_add(1, Ordering::Relaxed);
                let result = {
                    let mut t = self.obs.time(Stage::QcmScan);
                    t.tag("bypass");
                    self.pum.complete_top(typed, k)
                };
                self.completion_cache.insert(key, result.clone());
                result
            }
        };
        drop(permit);
        Ok(result)
    }

    /// QSM + execution: press "Run" on session `id`.
    ///
    /// The session is snapshotted under its lock and the lock is *released*
    /// before admission, which may block for the full configured queue wait —
    /// concurrent `complete`/`set_row`/`apply_alternative` calls on the same
    /// session must never stall behind a queued run. The attempt counter and
    /// last suggestions are committed under a fresh lock afterwards, so
    /// concurrent runs of the same session each count; each builds its query
    /// from its own snapshot, and a run whose snapshot has been superseded
    /// (the generation moved while it executed) keeps its attempt but does
    /// not overwrite the newer state's suggestions. The model-derived payload
    /// is memoized across sessions by normalized query; a cache hit still
    /// passes admission (the key requires building the query against the
    /// shared cache) and still consumes quota — budgets are deliberately
    /// request-denominated, so a tenant cannot exceed its window by replaying
    /// one hot query. Concurrent identical *cold* queries are additionally
    /// single-flighted: one leader scans, everyone else receives its result
    /// (see [`crate::coalesce`]).
    pub fn run(&self, id: SessionId) -> Result<RunOutput, ServerError> {
        self.counters.run_requests.fetch_add(1, Ordering::Relaxed);
        let (entry, snapshot) = self.run_snapshot(id)?;
        let _req = self.obs.request_scope("run", &snapshot.tenant);
        // Admission comes first: a shed request must cost nothing, and even
        // query building resolves keyword predicates against the shared
        // cache. The quota charge needs the built query's shape, so it
        // follows — an over-budget tenant gives its slot straight back.
        let permit = self.count_rejection(self.admit_timed())?;
        self.run_committed(&entry, snapshot, permit, 0)
    }

    /// The post-admission session run path — snapshot, execute, commit —
    /// with an execution slot the caller already owns. Driven by the evented
    /// front-end once a grant arrives; the snapshot is taken *here* (after
    /// the grant) rather than before the wait as [`run`](Self::run) does,
    /// which is indistinguishable to callers: each run builds from its own
    /// snapshot and the generation check already governs every interleaving
    /// with concurrent edits. Does not bump the request counter.
    ///
    /// `tier_floor` is the caller's degradation-tier floor — the same
    /// surface [`run_select_tiered`](Self::run_select_tiered) gives a
    /// cluster edge, here for an upstream front-end shedding on its *own*
    /// backlog (its reactor ready-queue depth). The run executes at the
    /// deeper of the floor and this server's own pressure signal, through
    /// the same tier-keyed cache/coalescer discipline.
    pub(crate) fn run_admitted(
        &self,
        id: SessionId,
        permit: AdmissionPermit,
        tier_floor: usize,
    ) -> Result<RunOutput, ServerError> {
        let (entry, snapshot) = self.run_snapshot(id)?;
        self.run_committed(&entry, snapshot, permit, tier_floor)
    }

    /// Snapshot a session's state under its lock (released before any
    /// admission wait or model work).
    fn run_snapshot(
        &self,
        id: SessionId,
    ) -> Result<
        (
            Arc<std::sync::Mutex<crate::registry::SessionEntry>>,
            RunSnapshot,
        ),
        ServerError,
    > {
        let entry = self.registry.get(id)?;
        let snapshot = {
            let entry = entry.lock().unwrap();
            RunSnapshot {
                tenant: entry.tenant.clone(),
                triples: entry.triples.clone(),
                modifiers: entry.modifiers.clone(),
                attempts: entry.attempts,
                generation: entry.generation,
            }
        };
        Ok((entry, snapshot))
    }

    /// Build, charge, execute, and commit one session run from `snapshot`,
    /// holding `permit` through the model work. `tier_floor` lower-bounds
    /// the degradation tier (a front-end shedding on its own backlog);
    /// the run executes at the deeper of the floor and this server's own
    /// pressure tier, clamped to the ladder.
    fn run_committed(
        &self,
        entry: &std::sync::Mutex<crate::registry::SessionEntry>,
        snapshot: RunSnapshot,
        permit: AdmissionPermit,
        tier_floor: usize,
    ) -> Result<RunOutput, ServerError> {
        let query = Session::resume(
            &self.pum,
            snapshot.triples,
            snapshot.modifiers,
            snapshot.attempts,
        )
        .build_query()?;
        let cost = self.run_cost(&query);
        self.count_rejection(self.tenants.charge(&snapshot.tenant, cost))?;
        let tier = tier_floor
            .max(self.qsm_tier())
            .min(sapphire_core::SteinerConfig::MAX_TIER);
        let (cached, run) = self.execute_run(&query, tier)?;
        drop(permit);
        let attempts = {
            let mut entry = entry.lock().unwrap();
            entry.attempts += 1;
            // Commit suggestions only if they still describe the session's
            // current rows; a superseded run must not clobber a newer run's
            // suggestions with ones the user can no longer see.
            if entry.generation == snapshot.generation {
                entry.last_suggestions = Some(run.suggestions.clone());
            }
            entry.attempts
        };
        Ok(RunOutput {
            answers: AnswerTable::new(run.answers.clone()),
            suggestions: run.suggestions.clone(),
            executed: run.executed,
            attempts,
            cached,
        })
    }

    /// QSM + execution for a tenant *without* a session: run an
    /// already-built query through admission, budgets, the response cache,
    /// and single-flight coalescing — the surface a cluster edge router
    /// scatters over shard replicas. The caller owns the session state (if
    /// any); the shard sees only the stateless (tenant, query) request, so
    /// there is no attempt counter or suggestion commit here.
    pub fn run_select(&self, tenant: &str, query: &SelectQuery) -> Result<QueryRun, ServerError> {
        self.run_select_tiered(tenant, query, 0, None)
    }

    /// [`run_select`](Self::run_select) with an upstream-requested
    /// degradation tier and an optional remaining deadline budget — the
    /// surface a cluster edge uses to make shedding a *router* decision
    /// instead of a per-shard discovery.
    ///
    /// The run executes at the **deeper** of the requested tier and this
    /// server's own pressure tier (see [`Self::shed_pressure_tier`]),
    /// clamped to the ladder: an edge request can lower fidelity but never
    /// force a full-budget run on a shard that is itself backed up. The
    /// requested tier is honored even when
    /// [`ServerConfig::qsm_shed_budget`] is off locally — the opt-in
    /// governs this server's *own* shed decision, not an upstream's — and
    /// flows through the same tier-keyed cache/coalescer discipline, so a
    /// degraded payload can never satisfy a tier-0 request. `budget`, when
    /// present, caps the admission-queue wait at
    /// `min(budget, queue_wait)`: a request whose edge deadline is nearly
    /// burned gives up its queue slot early with a typed rejection instead
    /// of completing work nobody is waiting for.
    pub fn run_select_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        requested_tier: usize,
        budget: Option<Duration>,
    ) -> Result<QueryRun, ServerError> {
        self.counters.run_requests.fetch_add(1, Ordering::Relaxed);
        let _req = self.obs.request_scope("run", tenant);
        let permit = self.count_rejection(self.admit_within_timed(budget))?;
        self.count_rejection(self.tenants.charge(tenant, self.run_cost(query)))?;
        let tier = requested_tier
            .max(self.qsm_tier())
            .min(sapphire_core::SteinerConfig::MAX_TIER);
        let (cached, payload) = self.execute_run(query, tier)?;
        drop(permit);
        Ok(QueryRun { cached, payload })
    }

    /// The shed tier this server's *current* admission backlog argues for,
    /// independent of the [`ServerConfig::qsm_shed_budget`] opt-in: empty
    /// queue → 0, backlog below half of
    /// [`max_queue_depth`](ServerConfig::max_queue_depth) → 1, else 2. This
    /// is the pressure probe a cluster edge reads when *it* owns the
    /// shedding decision (router-requested tiers); the local decision
    /// (`qsm_tier`) applies the same ladder behind the opt-in.
    pub fn shed_pressure_tier(&self) -> usize {
        let (_, queued) = self.admission.load();
        if queued == 0 {
            0
        } else if queued * 2 < self.config.max_queue_depth {
            1
        } else {
            2
        }
    }

    /// The QSM budget tier the *next* run should execute at, from the
    /// admission queue's current depth — sampled after the permit grant, so
    /// the decision reflects the backlog the server still faces while this
    /// run holds a slot. Always 0 (full budget) unless
    /// [`ServerConfig::qsm_shed_budget`] opted in; an upstream-requested
    /// tier ([`Self::run_select_tiered`]) is applied on top by the caller.
    fn qsm_tier(&self) -> usize {
        if !self.config.qsm_shed_budget {
            return 0;
        }
        self.shed_pressure_tier()
    }

    /// The cached + coalesced run path shared by [`run`](Self::run) and
    /// [`run_select`](Self::run_select). Must be called with an admission
    /// permit held. A burst of identical cold queries (many users pressing
    /// Run on the same question at once) costs one model scan; the returned
    /// flag stays an honest "this request ran no scan of its own": true for
    /// cache hits and followers, false for the scanning leader and bypasses.
    ///
    /// The cache/coalescer key carries `tier`, so a degraded-budget run can
    /// only ever hit, lead, or follow *other degraded runs of the same
    /// tier* — full-budget requests and degraded requests never exchange
    /// payloads in either direction.
    fn execute_run(
        &self,
        query: &SelectQuery,
        tier: usize,
    ) -> Result<(bool, Arc<RunPayload>), ServerError> {
        if tier > 0 {
            self.counters
                .qsm_degraded_runs
                .fetch_add(1, Ordering::Relaxed);
        }
        let key = run_key_tier(query, tier);
        let lookup = {
            let mut t = self.obs.time(Stage::CacheLookup);
            let hit = self.run_cache.get(&key);
            t.tag(if hit.is_some() { "run hit" } else { "run miss" });
            hit
        };
        if let Some(hit) = lookup {
            return Ok((true, hit));
        }
        let join_started = std::time::Instant::now();
        let joined = self.run_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "run");
        }
        match joined {
            Join::Leader(token) => {
                if let Some(hit) = self.run_cache.peek(&key) {
                    self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .coalesced_run_hits
                        .fetch_add(1, Ordering::Relaxed);
                    token.complete(Ok(hit.clone()));
                    Ok((true, hit))
                } else {
                    self.counters
                        .coalesce_leader_runs
                        .fetch_add(1, Ordering::Relaxed);
                    let run = self.run_cache.insert(key, self.scan(query, tier));
                    token.complete(Ok(run.clone()));
                    Ok((false, run))
                }
            }
            Join::Follower(outcome) => {
                let shared = outcome?;
                self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .coalesced_run_hits
                    .fetch_add(1, Ordering::Relaxed);
                Ok((true, shared))
            }
            Join::Bypass => {
                self.counters
                    .coalesce_bypass_runs
                    .fetch_add(1, Ordering::Relaxed);
                Ok((false, self.run_cache.insert(key, self.scan(query, tier))))
            }
        }
    }

    /// Accept the `alt_index`-th term alternative from `id`'s last run:
    /// updates the session's boxes and returns the prefetched answers
    /// (§4's "almost-instantaneous" accept — no re-execution, so no
    /// admission charge either).
    pub fn apply_alternative(
        &self,
        id: SessionId,
        alt_index: usize,
    ) -> Result<AnswerTable, ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        let suggestions = entry
            .last_suggestions
            .clone()
            .ok_or(ServerError::UnknownSuggestion {
                index: alt_index,
                available: 0,
            })?;
        let alt =
            suggestions
                .alternatives
                .get(alt_index)
                .ok_or(ServerError::UnknownSuggestion {
                    index: alt_index,
                    available: suggestions.alternatives.len(),
                })?;
        let mut session = Session::resume(
            &self.pum,
            entry.triples.clone(),
            entry.modifiers.clone(),
            entry.attempts,
        );
        let answers = session.apply_alternative(alt);
        entry.triples = session.triples;
        entry.generation += 1;
        // The remaining alternatives described the pre-accept rows; a second
        // accept must come from a fresh run.
        entry.last_suggestions = None;
        Ok(answers)
    }

    /// The per-tenant work charged so far in this window.
    pub fn tenant_usage(&self, tenant: &str) -> u64 {
        self.tenants.used(tenant)
    }

    /// Start a fresh tenant-budget accounting window.
    pub fn reset_budget_window(&self) {
        self.tenants.reset_window();
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        ServerMetrics {
            completion_requests: self.counters.completion_requests.load(Ordering::Relaxed),
            run_requests: self.counters.run_requests.load(Ordering::Relaxed),
            service_requests: self.counters.service_requests.load(Ordering::Relaxed),
            rejected_overloaded: self.counters.rejected_overloaded.load(Ordering::Relaxed),
            rejected_queue_timeout: self.counters.rejected_queue_timeout.load(Ordering::Relaxed),
            rejected_quota: self.counters.rejected_quota.load(Ordering::Relaxed),
            tenant_meter_evictions: self.tenants.evicted_meters(),
            coalesced_hits: self.counters.coalesced_hits.load(Ordering::Relaxed),
            completion_coalesced_hits: self
                .counters
                .coalesced_completion_hits
                .load(Ordering::Relaxed),
            run_coalesced_hits: self.counters.coalesced_run_hits.load(Ordering::Relaxed),
            coalesce_leader_runs: self.counters.coalesce_leader_runs.load(Ordering::Relaxed),
            coalesce_bypass_runs: self.counters.coalesce_bypass_runs.load(Ordering::Relaxed),
            fifo_handoffs: self.admission.handoffs(),
            qsm_degraded_runs: self.counters.qsm_degraded_runs.load(Ordering::Relaxed),
            completion_cache: self.completion_cache.stats(),
            run_cache: self.run_cache.stats(),
            open_sessions: self.registry.len(),
        }
    }

    /// Export every counter surface this server owns — request/rejection/
    /// coalescing counters, both response caches, the model's Steiner
    /// neighborhood and alternative-sweep caches, and the per-stage latency
    /// histograms — as one [`MetricsHub`], renderable as JSON or Prometheus
    /// text exposition.
    pub fn export_metrics(&self) -> MetricsHub {
        let m = self.metrics();
        let mut hub = MetricsHub::new();
        hub.section("server")
            .field("completion_requests", m.completion_requests)
            .field("run_requests", m.run_requests)
            .field("service_requests", m.service_requests)
            .field("rejected_overloaded", m.rejected_overloaded)
            .field("rejected_queue_timeout", m.rejected_queue_timeout)
            .field("rejected_quota", m.rejected_quota)
            .field("tenant_meter_evictions", m.tenant_meter_evictions)
            .field("coalesced_hits", m.coalesced_hits)
            .field("completion_coalesced_hits", m.completion_coalesced_hits)
            .field("run_coalesced_hits", m.run_coalesced_hits)
            .field("coalesce_leader_runs", m.coalesce_leader_runs)
            .field("coalesce_bypass_runs", m.coalesce_bypass_runs)
            .field("fifo_handoffs", m.fifo_handoffs)
            .field("qsm_degraded_runs", m.qsm_degraded_runs)
            .field("open_sessions", m.open_sessions);
        hub.section("completion_cache")
            .field("hits", m.completion_cache.hits)
            .field("misses", m.completion_cache.misses)
            .field("evictions", m.completion_cache.evictions)
            .field("hit_ratio", m.completion_cache.hit_ratio());
        hub.section("run_cache")
            .field("hits", m.run_cache.hits)
            .field("misses", m.run_cache.misses)
            .field("evictions", m.run_cache.evictions)
            .field("hit_ratio", m.run_cache.hit_ratio());
        let relax = self.pum.relax_cache_stats();
        hub.section("relax_cache")
            .field("hits", relax.hits)
            .field("misses", relax.misses)
            .field("fills", relax.fills)
            .field("evictions", relax.evictions)
            .field("queries_executed", relax.queries_executed)
            .field("queries_saved", relax.queries_saved);
        let alts = self.pum.alt_cache_stats();
        hub.section("alt_cache")
            .field("literal_hits", alts.literal.hits)
            .field("literal_misses", alts.literal.misses)
            .field("literal_evictions", alts.literal.evictions)
            .field("predicate_hits", alts.predicate.hits)
            .field("predicate_misses", alts.predicate.misses)
            .field("predicate_evictions", alts.predicate.evictions);
        self.obs.stage_sections(&mut hub);
        hub
    }

    /// Current `(in_flight, queued)` admission snapshot — the cheap load
    /// probe a cluster router consults to pick the least-loaded replica.
    pub fn admission_load(&self) -> (usize, usize) {
        self.admission.load()
    }

    /// Occupy one execution slot without running any request — the
    /// operational drain hook. While the returned permit is held it counts
    /// in [`admission_load`](Self::admission_load) like any in-flight
    /// request; hold enough permits and the server sheds everything typed,
    /// which is how maintenance drains a replica and how tests saturate one
    /// artificially.
    pub fn hold_slot(&self) -> Result<AdmissionPermit, ServerError> {
        self.admission.admit()
    }

    /// The admission gate itself — for in-crate machinery (the evented
    /// front-end) that acquires grants without parking.
    pub(crate) fn admission_gate(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Owning tenant of a session.
    pub(crate) fn session_tenant(&self, id: SessionId) -> Result<String, ServerError> {
        Ok(self.registry.get(id)?.lock().unwrap().tenant.clone())
    }

    /// The post-admission session QCM path (see
    /// [`complete_top_admitted`](Self::complete_top_admitted)). Does not
    /// bump the request counter — the caller did.
    pub(crate) fn complete_admitted(
        &self,
        id: SessionId,
        typed: &str,
        permit: AdmissionPermit,
    ) -> Result<CompletionResult, ServerError> {
        let tenant = self.session_tenant(id)?;
        self.complete_top_admitted(&tenant, typed, self.pum.config().k, permit)
    }

    /// Record a typed rejection produced outside the blocking surfaces (the
    /// evented front-end rejects with `Overloaded`/`QueueTimeout` from its
    /// own loop) so [`ServerMetrics`] stays one honest ledger.
    pub(crate) fn note_rejection(&self, e: &ServerError) {
        let _ = self.count_rejection::<()>(Err(e.clone()));
    }

    /// Count one QCM request received (evented intake path).
    pub(crate) fn note_completion_request(&self) {
        self.counters
            .completion_requests
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one run request received (evented intake path).
    pub(crate) fn note_run_request(&self) {
        self.counters.run_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one raw-service request received (evented intake path).
    pub(crate) fn note_service_request(&self) {
        self.counters
            .service_requests
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Request keys with a live single-flight execution right now, summed
    /// across the QCM, QSM, and raw-query coalescers — how many distinct
    /// scans this server is running at this instant. Cheap enough for load
    /// probes and bench reports to poll.
    pub fn coalesce_occupancy(&self) -> usize {
        self.completion_coalescer.occupancy()
            + self.run_coalescer.occupancy()
            + self.service_coalescer.occupancy()
    }

    /// Execute the model scan for a built query (the expensive part a
    /// single-flight leader runs on behalf of its followers), with the
    /// Steiner relaxation at `tier`.
    fn scan(&self, query: &SelectQuery, tier: usize) -> RunPayload {
        let mut timer = self.obs.time(Stage::QsmScan);
        if tier > 0 {
            // Allocates only on degraded runs, which are rare by design.
            timer.tag(format!("tier{tier}"));
        }
        if let Some(trace) = sapphire_obs::trace::current() {
            let label = if tier == 0 {
                "full".to_string()
            } else {
                format!("tier{tier}")
            };
            trace.set_tier(&label);
        }
        let outcome = self.pum.run_tiered(query, tier);
        drop(timer);
        RunPayload {
            answers: outcome.answers,
            executed: outcome.executed,
            suggestions: Arc::new(outcome.suggestions),
        }
    }

    fn run_cost(&self, query: &SelectQuery) -> u64 {
        self.config.run_base_cost
            + self.config.run_per_pattern_cost * query.pattern.triples.len() as u64
    }

    fn count_rejection<T>(&self, result: Result<T, ServerError>) -> Result<T, ServerError> {
        if let Err(e) = &result {
            match e {
                ServerError::Overloaded { .. } => {
                    self.counters
                        .rejected_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QueueTimeout { .. } => {
                    self.counters
                        .rejected_queue_timeout
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QuotaExhausted { .. } => {
                    self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        result
    }
}

/// Raw SPARQL surface: lets a `SapphireServer` stand behind a
/// [`ServiceEndpoint`](sapphire_endpoint::ServiceEndpoint) so other
/// deployments can federate over it, with this server's admission control
/// and budgets still enforced.
///
/// Identical in-flight queries are single-flighted by
/// [`query_fingerprint`](sapphire_endpoint::query_fingerprint), so a burst
/// of users asking the same question at an upstream tier costs this tier one
/// federation execution — and because the fingerprint travels unchanged with
/// the query, every further hop downstream coalesces the same way. Service
/// results are not response-cached (federated backends are not assumed
/// immutable the way the shared model is), so the leader's typed failure is
/// propagated to every coalesced follower rather than retried.
impl QueryService for SapphireServer {
    fn service_name(&self) -> &str {
        &self.config.name
    }

    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
        self.counters
            .service_requests
            .fetch_add(1, Ordering::Relaxed);
        let _req = self.obs.request_scope("query", tenant);
        let permit = self
            .count_rejection(self.admit_timed())
            .map_err(ServerError::into_service_error)?;
        self.execute_query_admitted(tenant, query, permit)
            .map_err(ServerError::into_service_error)
    }
}

impl SapphireServer {
    /// The post-admission raw-query path: budgets, single-flight, federated
    /// execution — with an execution slot the caller already owns (the
    /// evented front-end's raw surface). Does not bump the request counter.
    pub(crate) fn execute_query_admitted(
        &self,
        tenant: &str,
        query: &Query,
        permit: AdmissionPermit,
    ) -> Result<QueryResult, ServerError> {
        let cost = match query {
            Query::Select(s) => self.run_cost(s),
            Query::Ask(gp) => {
                self.config.run_base_cost
                    + self.config.run_per_pattern_cost * gp.triples.len() as u64
            }
        };
        self.count_rejection(self.tenants.charge(tenant, cost))?;
        let _permit = permit; // held through execution, released on return
        let execute = || {
            self.pum
                .federation()
                .execute_parsed(query)
                .map_err(from_federation)
        };
        let key = sapphire_endpoint::query_fingerprint(query);
        let join_started = std::time::Instant::now();
        let joined = self.service_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "service");
        }
        let result = match joined {
            Join::Leader(token) => {
                self.counters
                    .coalesce_leader_runs
                    .fetch_add(1, Ordering::Relaxed);
                let outcome = execute().map(Arc::new);
                token.complete(outcome.clone());
                outcome
            }
            Join::Follower(outcome) => {
                self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
                outcome
            }
            Join::Bypass => {
                self.counters
                    .coalesce_bypass_runs
                    .fetch_add(1, Ordering::Relaxed);
                execute().map(Arc::new)
            }
        };
        result.map(|shared| (*shared).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_core::prelude::*;
    use sapphire_core::InitMode;

    fn pum() -> Arc<PredictiveUserModel> {
        let graph = sapphire_rdf::turtle::parse(
            r#"res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en ."#,
        )
        .unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            graph,
            EndpointLimits::warehouse(),
        ));
        Arc::new(
            PredictiveUserModel::initialize(
                vec![ep],
                Lexicon::dbpedia_default(),
                SapphireConfig::for_tests(),
                InitMode::Federated,
            )
            .unwrap(),
        )
    }

    #[test]
    fn queued_run_does_not_hold_the_session_lock() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 1,
            queue_wait: Duration::from_millis(500),
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let session = server.open_session("alice").unwrap();
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
            .unwrap();
        // Occupy the only execution slot so the run below queues in admission.
        let permit = server.admission.admit().unwrap();
        let queued_run = {
            let server = server.clone();
            std::thread::spawn(move || server.run(session))
        };
        while server.admission.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The queued run must wait *without* the session entry lock: other
        // requests touching the same session proceed immediately.
        let t = std::time::Instant::now();
        server
            .set_row(session, 1, TripleInput::new("?p", "name", "?n"))
            .unwrap();
        assert!(
            t.elapsed() < Duration::from_millis(100),
            "set_row stalled behind a queued run for {:?}",
            t.elapsed()
        );
        drop(permit);
        let out = queued_run
            .join()
            .unwrap()
            .expect("run admitted after release");
        assert!(out.executed);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn cold_identical_completion_burst_scans_once() {
        const THREADS: usize = 16;
        // Enough concurrency that the whole burst can be in flight at once —
        // coalescing must be exercised by genuine concurrency, not masked by
        // admission serialization.
        let config = ServerConfig {
            max_in_flight: THREADS,
            max_queue_depth: THREADS,
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let server = server.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let session = server.open_session(&format!("t{i}")).unwrap();
                    barrier.wait();
                    server.complete(session, "Kenn").unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(
                r.suggestions, results[0].suggestions,
                "every request sees the one scan's result"
            );
        }
        let m = server.metrics();
        // The heart of single-flight: however the 16 threads interleave —
        // coalesced followers, response-cache hits for stragglers, or a
        // leader that found the cache filled — the model is scanned once.
        assert_eq!(m.coalesce_leader_runs, 1, "exactly one model scan");
        assert_eq!(
            m.coalesced_hits + m.completion_cache.hits + m.coalesce_leader_runs,
            THREADS as u64,
            "every request is a leader, follower, or cache hit"
        );
    }

    #[test]
    fn cold_identical_run_burst_scans_once() {
        const THREADS: usize = 8;
        let config = ServerConfig {
            max_in_flight: THREADS,
            max_queue_depth: THREADS,
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let server = server.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    // Distinct sessions, identical rows: the normalized query
                    // key is shared, so the burst coalesces across sessions.
                    let session = server.open_session(&format!("t{i}")).unwrap();
                    server
                        .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
                        .unwrap();
                    barrier.wait();
                    server.run(session).unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            assert!(r.executed);
            assert_eq!(r.answers.total_rows(), results[0].answers.total_rows());
            assert_eq!(r.attempts, 1, "attempt counting stays per-session");
        }
        let m = server.metrics();
        assert_eq!(m.coalesce_leader_runs, 1, "exactly one model scan");
        assert!(
            results.iter().filter(|r| !r.cached).count() <= 1,
            "at most the scanning leader reports an uncached run"
        );
    }

    #[test]
    fn coalescing_disabled_by_zero_waiter_cap() {
        let config = ServerConfig {
            coalesce_waiters_per_key: 0,
            ..ServerConfig::for_tests()
        };
        let server = SapphireServer::new(pum(), config);
        let session = server.open_session("alice").unwrap();
        // Sequential requests: the first leads (scan), the second hits the
        // response cache — a zero cap only disables *blocking behind* a
        // concurrent scan, never correctness.
        server.complete(session, "Kenn").unwrap();
        server.complete(session, "Kenn").unwrap();
        let m = server.metrics();
        assert_eq!(m.coalesce_leader_runs, 1);
        assert_eq!(m.completion_cache.hits, 1);
    }

    #[test]
    fn degraded_and_full_runs_never_share_a_cache_entry() {
        // One execution slot + a deep queue: with shedding opted in, a run
        // admitted while others still wait must execute at a reduced tier,
        // and a run admitted once the queue drained must get the full tier —
        // from a *separate* cache entry, in both directions.
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 8,
            queue_wait: Duration::from_secs(5),
            qsm_shed_budget: true,
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let permit = server.admission.admit().unwrap();
        let runs: Vec<_> = (0..3)
            .map(|i| {
                let server = server.clone();
                std::thread::spawn(move || {
                    // Identical rows across sessions: one normalized query,
                    // so any key mixing would be visible immediately. Two
                    // literal rows, so the Steiner relaxation applies and a
                    // reduced tier genuinely marks the output degraded.
                    let session = server.open_session(&format!("t{i}")).unwrap();
                    server
                        .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedys"))
                        .unwrap();
                    server
                        .set_row(
                            session,
                            1,
                            TripleInput::new("?p", "name", "John F. Kennedy"),
                        )
                        .unwrap();
                    server.run(session).unwrap()
                })
            })
            .collect();
        while server.admission.load().1 < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(permit);
        let outputs: Vec<RunOutput> = runs.into_iter().map(|h| h.join().unwrap()).collect();

        // FIFO drain: the first two runs executed with a non-empty queue
        // behind them (tier 1 — one scan, one degraded-entry cache hit), the
        // last with the queue empty (tier 0 — its own full scan).
        let degraded = outputs.iter().filter(|o| o.suggestions.degraded).count();
        assert_eq!(degraded, 2, "two degraded, one full: {outputs:?}");
        let m = server.metrics();
        assert_eq!(m.qsm_degraded_runs, 2);
        assert_eq!(
            m.coalesce_leader_runs, 2,
            "one scan per tier: the tiers never coalesced onto one flight"
        );
        for o in &outputs {
            assert_eq!(o.suggestions.degraded, o.suggestions.tier > 0);
            // Degraded or not, the request itself was served.
            assert!(o.executed);
        }

        // The regression this pins: with the queue drained, an identical
        // request selects tier 0 and must hit the FULL entry — a shared key
        // would hand it the cached degraded payload.
        let session = server.open_session("later").unwrap();
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedys"))
            .unwrap();
        server
            .set_row(
                session,
                1,
                TripleInput::new("?p", "name", "John F. Kennedy"),
            )
            .unwrap();
        let fresh = server.run(session).unwrap();
        assert!(fresh.cached, "tier-0 entry already cached by the third run");
        assert!(
            !fresh.suggestions.degraded,
            "a full-budget request must never see a degraded payload"
        );
        assert_eq!(server.metrics().coalesce_leader_runs, 2, "no new scan");
    }

    #[test]
    fn shedding_disabled_by_default_never_degrades() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 8,
            queue_wait: Duration::from_secs(5),
            ..ServerConfig::for_tests()
        };
        assert!(!config.qsm_shed_budget, "shedding is opt-in");
        let server = Arc::new(SapphireServer::new(pum(), config));
        let permit = server.admission.admit().unwrap();
        let runs: Vec<_> = (0..3)
            .map(|i| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let session = server.open_session(&format!("t{i}")).unwrap();
                    server
                        .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
                        .unwrap();
                    server.run(session).unwrap()
                })
            })
            .collect();
        while server.admission.load().1 < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(permit);
        for out in runs.into_iter().map(|h| h.join().unwrap()) {
            assert!(!out.suggestions.degraded);
            assert_eq!(out.suggestions.tier, 0);
        }
        assert_eq!(server.metrics().qsm_degraded_runs, 0);
    }

    #[test]
    fn requested_tier_is_honored_without_the_local_opt_in() {
        // `qsm_shed_budget` stays off: the server's *own* shed decision is
        // disabled, but an upstream-requested tier must still be honored —
        // and stay tier-keyed, so the degraded payload can never leak into
        // a later tier-0 request.
        let server = SapphireServer::new(pum(), ServerConfig::for_tests());
        assert!(!server.config().qsm_shed_budget);
        let query = Session::resume(
            server.model(),
            vec![
                TripleInput::new("?p", "surname", "Kennedys"),
                TripleInput::new("?p", "name", "John F. Kennedy"),
            ],
            Modifiers::default(),
            0,
        )
        .build_query()
        .unwrap();
        let degraded = server.run_select_tiered("t", &query, 1, None).unwrap();
        assert!(degraded.payload.suggestions.degraded);
        assert_eq!(degraded.payload.suggestions.tier, 1);
        let full = server.run_select("t", &query).unwrap();
        assert!(
            !full.payload.suggestions.degraded,
            "tier-0 request served from the tier-1 entry"
        );
        assert!(!full.cached, "the full run needed its own scan");
        // Deeper-than-ladder requests clamp instead of inventing tiers.
        let clamped = server
            .run_select_tiered("t", &query, usize::MAX, None)
            .unwrap();
        assert_eq!(
            clamped.payload.suggestions.tier,
            sapphire_core::SteinerConfig::MAX_TIER
        );
        assert_eq!(server.metrics().qsm_degraded_runs, 2);
    }

    #[test]
    fn exhausted_deadline_budget_rejects_typed_instead_of_parking() {
        let config = ServerConfig {
            max_in_flight: 1,
            queue_wait: Duration::from_secs(5),
            ..ServerConfig::for_tests()
        };
        let server = SapphireServer::new(pum(), config);
        let query = Session::resume(
            server.model(),
            vec![TripleInput::new("?p", "surname", "Kennedy")],
            Modifiers::default(),
            0,
        )
        .build_query()
        .unwrap();
        let slot = server.hold_slot().unwrap();
        let started = std::time::Instant::now();
        // No remaining edge budget: the request may not park for the
        // configured 5s wait — it must come back (nearly) immediately with a
        // typed saturation rejection.
        let out = server.run_select_tiered("t", &query, 0, Some(Duration::ZERO));
        assert!(
            matches!(out, Err(ServerError::QueueTimeout { .. })),
            "{out:?}"
        );
        assert!(started.elapsed() < Duration::from_secs(2));
        assert_eq!(server.metrics().rejected_queue_timeout, 1);
        drop(slot);
        assert!(server
            .run_select_tiered("t", &query, 0, Some(Duration::from_secs(1)))
            .is_ok());
    }

    #[test]
    fn shed_pressure_tier_tracks_the_backlog() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 8,
            queue_wait: Duration::from_secs(5),
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        assert_eq!(server.shed_pressure_tier(), 0, "idle server sheds nothing");
        let permit = server.admission.admit().unwrap();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || drop(server.admission.admit()))
            })
            .collect();
        while server.admission.load().1 < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // 4 queued of max 8: exactly the half-full boundary → tier 2.
        assert_eq!(server.shed_pressure_tier(), 2);
        drop(permit);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(server.shed_pressure_tier(), 0, "drained queue recovers");
    }

    #[test]
    fn superseded_run_does_not_commit_stale_suggestions() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 4,
            queue_wait: Duration::from_secs(2),
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let session = server.open_session("alice").unwrap();
        // "Kennedys" matches nothing, so its run yields a "Kennedy"
        // alternative — exactly the payload that must NOT survive the commit.
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedys"))
            .unwrap();
        let permit = server.admission.admit().unwrap();
        let stale_run = {
            let server = server.clone();
            std::thread::spawn(move || server.run(session))
        };
        while server.admission.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Supersede the queued run's snapshot while it waits for a slot.
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
            .unwrap();
        drop(permit);
        let out = stale_run.join().unwrap().expect("stale run still served");
        // The run's own output reflects its own snapshot…
        assert_eq!(out.attempts, 1);
        assert!(
            out.suggestions
                .alternatives
                .iter()
                .any(|a| a.replacement == "Kennedy"),
            "stale run produced its snapshot's suggestions"
        );
        // …but its suggestions were not committed against the newer rows:
        // accepting alternative 0 would splice "Kennedy"-for-"Kennedys" into
        // a session that no longer says "Kennedys".
        assert!(matches!(
            server.apply_alternative(session, 0),
            Err(ServerError::UnknownSuggestion { available: 0, .. })
        ));
        // A run of the current state commits normally.
        let fresh = server.run(session).unwrap();
        assert!(fresh.executed);
        assert_eq!(fresh.attempts, 2);
    }
}
