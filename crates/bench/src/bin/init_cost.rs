//! Regenerates the **§5.2 initialization-cost report**: queries issued per
//! phase, timeouts, cache sizes, suffix-tree footprint, and residual-bin
//! shape — the analogue of the paper's "17 hours, ~800 literal queries,
//! ~3000 significance queries, ~200 timeouts, 43K-string / 400 MB tree,
//! 21M residual literals in 80 bins" paragraph.
//!
//! Usage: `cargo run -p sapphire-bench --bin init_cost --release [--scale tiny|small|medium]`

use std::time::Instant;

use sapphire_bench::{experiment_config, heading, scale_from_args};
use sapphire_core::init::{InitMode, Initializer};
use sapphire_datagen::generate;
use sapphire_endpoint::{EndpointLimits, LocalEndpoint};

fn main() {
    let dataset = scale_from_args();
    println!("(generating dataset…)");
    let graph = generate(dataset);
    let triples = graph.len();

    // A public-endpoint-like budget: big enough for class-level queries on
    // mid-size classes, small enough that root-level scans time out and force
    // hierarchy descent — the §5.1 mechanism under test.
    let budget = (triples as u64 / 3).max(4_000);
    let limits = EndpointLimits {
        timeout_work: Some(budget),
        reject_above: None,
        max_results: None,
    };
    let endpoint = LocalEndpoint::new("dbpedia", graph, limits);
    println!("dataset: {triples} triples; per-query work budget: {budget}");

    for (label, mode) in [
        ("federated (Q1–Q8)", InitMode::Federated),
        ("warehouse (Q9/Q10)", InitMode::Warehouse),
    ] {
        endpoint.reset_stats();
        // The tree capacity is scaled to the corpus the way the paper's 40K
        // tree relates to DBpedia's 21M cacheable literals: a small indexed
        // head, a large residual tail.
        let mut config = experiment_config();
        config.suffix_tree_capacity = 1_000;
        let start = Instant::now();
        let (cache, stats) = Initializer::new(&endpoint, &config, mode)
            .run()
            .expect("init succeeds");
        let elapsed = start.elapsed();

        println!("{}", heading(&format!("Initialization — {label}")));
        println!("wall time:                {elapsed:?}  (paper: 17 h against live DBpedia)");
        println!("metadata queries (Q1–Q4): {}", stats.metadata_queries);
        println!("filter queries (Q5):      {}", stats.filter_queries);
        println!(
            "literal queries (Q6/Q7):  {}  (paper: ≈800)",
            stats.literal_queries
        );
        println!(
            "significance (Q8):        {}  (paper: ≈3000)",
            stats.significance_queries
        );
        println!(
            "timeouts:                 {}  (paper: ≈200)",
            stats.timeouts
        );
        println!("total queries:            {}", stats.total_queries());
        println!("literals cached:          {}", stats.literals_cached);
        println!(
            "suffix tree:              {} strings ({} predicates + {} significant literals), ≈{} KiB, {} nodes",
            cache.tree_string_count(),
            cache.predicates.len(),
            cache.significant.len(),
            cache.tree.approx_bytes() / 1024,
            cache.tree.node_count(),
        );
        println!(
            "residual literals:        {} across {} non-empty bins  (paper: 21M across 80 bins)",
            cache.bins.len(),
            cache.bins.bin_count(),
        );
        let ep_stats = endpoint.stats();
        println!(
            "endpoint-side counters:   {} queries run, {} timeouts, {} rejected, {} total work",
            ep_stats.queries, ep_stats.timeouts, ep_stats.rejected, ep_stats.total_work
        );
    }

    println!("{}", heading("shape checks"));
    println!(
        "  (re-run the federated path with an unconstrained endpoint for the no-timeout baseline)"
    );
    endpoint.reset_stats();
}
