//! Residual literal bins and the parallel scan (Algorithm 1).
//!
//! Literals not in the suffix tree are organized "into bins of residual
//! literals … where each bin has all the literals of a given length" (§5.2).
//! Both the QCM and the QSM only ever search a narrow band of lengths, so the
//! binning prunes most of the corpus before any string comparison happens;
//! the rest is scanned sequentially by `P` parallel workers with the
//! load-balanced task assignment of Algorithm 1.

use std::ops::Range;

/// Identifier of a literal stored in the bins.
pub type LitId = u32;

/// Length-keyed bins over a deduplicated literal corpus.
#[derive(Debug, Default, Clone)]
pub struct ResidualBins {
    /// All literals, indexed by [`LitId`].
    literals: Vec<String>,
    /// `bins[len]` holds ids of literals whose `char` length is `len`.
    bins: Vec<Vec<LitId>>,
}

impl ResidualBins {
    /// Empty bins.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a literal; returns its id. Duplicates are stored once per call
    /// site decision — the cache layer dedups before insertion.
    pub fn add(&mut self, literal: String) -> LitId {
        let id = LitId::try_from(self.literals.len()).expect("more than 2^32 literals");
        let len = literal.chars().count();
        if self.bins.len() <= len {
            self.bins.resize_with(len + 1, Vec::new);
        }
        self.bins[len].push(id);
        self.literals.push(literal);
        id
    }

    /// The literal text for an id.
    pub fn literal(&self, id: LitId) -> &str {
        &self.literals[id as usize]
    }

    /// Total number of stored literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True if no literals are stored.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Number of non-empty bins (the paper reports 80 bins for DBpedia —
    /// one per observed length under the 80-char cap).
    pub fn bin_count(&self) -> usize {
        self.bins.iter().filter(|b| !b.is_empty()).count()
    }

    /// The ids in the bin for exactly length `len`.
    pub fn bin(&self, len: usize) -> &[LitId] {
        self.bins.get(len).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Bins for lengths in `range` (clamped), as slices. This is the `bins'`
    /// input of Algorithms 1 and 2.
    pub fn bins_in_range(&self, range: Range<usize>) -> Vec<&[LitId]> {
        let hi = range.end.min(self.bins.len());
        (range.start.min(hi)..hi)
            .map(|len| self.bin(len))
            .filter(|b| !b.is_empty())
            .collect()
    }

    /// Number of literals within a length range — used to report how much of
    /// the corpus the length filter eliminates (§7.3.1: "filtering eliminates
    /// 46% of the literals").
    pub fn count_in_range(&self, range: Range<usize>) -> usize {
        self.bins_in_range(range).iter().map(|b| b.len()).sum()
    }

    /// Scan the bins in `range` with `P = processes` workers, collecting
    /// every literal for which `accept` returns a score. Work is divided
    /// with Algorithm 1. Returns `(LitId, score)` pairs in worker order.
    ///
    /// Small scans run the *same* task list inline instead of spawning:
    /// launching `P` scoped threads costs tens of microseconds, which on a
    /// narrow length band of a modest corpus exceeds the scan itself — and
    /// on the serving hot path (2–3 scans per QSM request, one per QCM
    /// residual lookup) that overhead, multiplied by every in-flight
    /// request spawning its own worker set, was the dominant term of the
    /// QSM tail. Tasks execute in worker order either way, so the result
    /// vector is byte-identical to the threaded path's concatenation.
    pub fn scan_parallel<F>(
        &self,
        range: Range<usize>,
        processes: usize,
        accept: F,
    ) -> Vec<(LitId, f64)>
    where
        F: Fn(&str) -> Option<f64> + Sync,
    {
        // ~4K short-string comparisons cost roughly what one thread spawn
        // does; below P times that, parallelism cannot win.
        const INLINE_SCAN_THRESHOLD: usize = 4096;
        let bins = self.bins_in_range(range);
        if bins.is_empty() {
            return Vec::new();
        }
        let tasks = assign_tasks(&bins, processes.max(1));
        let run_task = |task: &[Segment]| {
            let mut found = Vec::new();
            for seg in task {
                for &id in &bins[seg.bin][seg.range.clone()] {
                    if let Some(score) = accept(self.literal(id)) {
                        found.push((id, score));
                    }
                }
            }
            found
        };
        let total: usize = bins.iter().map(|b| b.len()).sum();
        if total <= INLINE_SCAN_THRESHOLD {
            return tasks.iter().flat_map(|t| run_task(t)).collect();
        }
        // Large scan: run the same task list on the shared executor. `run`
        // returns results in task-index order, so the concatenation is
        // byte-identical to both the inline path and the old spawn path.
        crate::exec::global()
            .run(tasks.len(), |i| run_task(&tasks[i]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// The pre-executor reference implementation of [`Self::scan_parallel`]:
    /// identical Algorithm-1 task list, but each task on its own scoped
    /// thread. Kept (test-only surface) as the byte-identity oracle for the
    /// executor path — see `tests/executor_oracle.rs`.
    #[doc(hidden)]
    pub fn scan_parallel_reference<F>(
        &self,
        range: Range<usize>,
        processes: usize,
        accept: F,
    ) -> Vec<(LitId, f64)>
    where
        F: Fn(&str) -> Option<f64> + Sync,
    {
        let bins = self.bins_in_range(range);
        if bins.is_empty() {
            return Vec::new();
        }
        let tasks = assign_tasks(&bins, processes.max(1));
        let run_task = |task: &[Segment]| {
            let mut found = Vec::new();
            for seg in task {
                for &id in &bins[seg.bin][seg.range.clone()] {
                    if let Some(score) = accept(self.literal(id)) {
                        found.push((id, score));
                    }
                }
            }
            found
        };
        let mut results: Vec<Vec<(LitId, f64)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .iter()
                .map(|task| {
                    let run_task = &run_task;
                    scope.spawn(move || run_task(task))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("scan worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// A contiguous slice of one bin assigned to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Index into the `bins'` slice list.
    pub bin: usize,
    /// Element range within that bin.
    pub range: Range<usize>,
}

/// Algorithm 1: assign bins to `P` processes so every process scans (nearly)
/// the same number of literals, with each assignment a set of contiguous bin
/// slices.
pub fn assign_tasks(bins: &[&[LitId]], processes: usize) -> Vec<Vec<Segment>> {
    let n: usize = bins.iter().map(|b| b.len()).sum();
    let p = processes.max(1);
    if n == 0 {
        return vec![Vec::new(); p];
    }
    // Capacity d = ceil(n / P) so the last worker picks up the remainder.
    let capacity = n.div_ceil(p);
    let mut tasks: Vec<Vec<Segment>> = vec![Vec::new(); p];
    let mut pid = 0usize;
    let mut remaining_capacity = capacity;
    for (bin_idx, bin) in bins.iter().enumerate() {
        let mut offset = 0usize;
        let mut j = bin.len();
        while j > 0 {
            if pid >= p {
                // Numerical slack: dump the tail on the last worker.
                pid = p - 1;
                remaining_capacity = usize::MAX;
            }
            if j < remaining_capacity {
                // Process takes all remaining literals in this bin.
                tasks[pid].push(Segment {
                    bin: bin_idx,
                    range: offset..bin.len(),
                });
                remaining_capacity -= j;
                j = 0;
            } else {
                // Process takes exactly its remaining capacity and retires.
                tasks[pid].push(Segment {
                    bin: bin_idx,
                    range: offset..offset + remaining_capacity,
                });
                offset += remaining_capacity;
                j -= remaining_capacity;
                remaining_capacity = capacity;
                pid += 1;
            }
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins_with(sizes: &[usize]) -> Vec<Vec<LitId>> {
        let mut next = 0u32;
        sizes
            .iter()
            .map(|&s| {
                let v: Vec<LitId> = (next..next + s as u32).collect();
                next += s as u32;
                v
            })
            .collect()
    }

    #[test]
    fn add_and_lookup() {
        let mut b = ResidualBins::new();
        let id = b.add("New York".to_string());
        assert_eq!(b.literal(id), "New York");
        assert_eq!(b.bin(8), &[id]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.bin_count(), 1);
    }

    #[test]
    fn bins_in_range_clamps() {
        let mut b = ResidualBins::new();
        b.add("ab".into());
        b.add("abc".into());
        b.add("abcdef".into());
        assert_eq!(b.bins_in_range(0..100).len(), 3);
        assert_eq!(b.bins_in_range(3..4).len(), 1);
        assert_eq!(b.count_in_range(2..4), 2);
        assert!(b.bins_in_range(7..9).is_empty());
    }

    #[test]
    fn unicode_length_is_chars_not_bytes() {
        let mut b = ResidualBins::new();
        let id = b.add("Zürich".into());
        assert_eq!(b.bin(6), &[id], "6 chars even though 7 bytes");
    }

    #[test]
    fn assign_tasks_covers_everything_exactly_once() {
        for sizes in [
            vec![10, 3, 7],
            vec![1, 1, 1, 1],
            vec![100],
            vec![0, 5, 0, 5],
        ] {
            for p in 1..=8 {
                let owned = bins_with(&sizes);
                let bins: Vec<&[LitId]> = owned.iter().map(Vec::as_slice).collect();
                let tasks = assign_tasks(&bins, p);
                assert_eq!(tasks.len(), p);
                let mut seen: Vec<LitId> = tasks
                    .iter()
                    .flatten()
                    .flat_map(|seg| bins[seg.bin][seg.range.clone()].iter().copied())
                    .collect();
                seen.sort_unstable();
                let total: usize = sizes.iter().sum();
                assert_eq!(
                    seen,
                    (0..total as u32).collect::<Vec<_>>(),
                    "sizes {sizes:?} p {p}"
                );
            }
        }
    }

    #[test]
    fn assign_tasks_balances_load() {
        let owned = bins_with(&[40, 40, 40, 40]);
        let bins: Vec<&[LitId]> = owned.iter().map(Vec::as_slice).collect();
        let tasks = assign_tasks(&bins, 4);
        for t in &tasks {
            let load: usize = t.iter().map(|s| s.range.len()).sum();
            assert_eq!(load, 40);
        }
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        let mut b = ResidualBins::new();
        for i in 0..500 {
            b.add(format!("literal value {i}"));
        }
        b.add("needle".into());
        b.add("needles".into());
        let sequential: Vec<LitId> = (0..b.len() as u32)
            .filter(|&id| b.literal(id).contains("needle"))
            .collect();
        for p in [1, 2, 4, 8] {
            let mut got: Vec<LitId> = b
                .scan_parallel(0..100, p, |s| s.contains("needle").then_some(1.0))
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, sequential, "P = {p}");
        }
    }

    #[test]
    fn executor_scan_matches_reference_above_inline_threshold() {
        // 6k literals beats INLINE_SCAN_THRESHOLD, forcing the executor
        // path; the spawn-per-task reference must produce identical bytes.
        let mut b = ResidualBins::new();
        for i in 0..6000 {
            b.add(format!("residual literal number {i:05}"));
        }
        let accept = |s: &str| s.ends_with('7').then_some(s.len() as f64);
        for p in [1, 2, 4, 8] {
            let via_exec = b.scan_parallel(0..100, p, accept);
            let via_spawn = b.scan_parallel_reference(0..100, p, accept);
            assert_eq!(via_exec, via_spawn, "P = {p}");
            assert!(!via_exec.is_empty());
        }
    }

    #[test]
    fn scan_respects_length_range() {
        let mut b = ResidualBins::new();
        b.add("ab".into());
        b.add("abcd".into());
        b.add("abcdefgh".into());
        let hits = b.scan_parallel(2..5, 2, |_| Some(1.0));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_bins_scan_is_empty() {
        let b = ResidualBins::new();
        assert!(b.scan_parallel(0..10, 4, |_| Some(1.0)).is_empty());
        assert!(b.is_empty());
    }
}
