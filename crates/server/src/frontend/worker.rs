//! The worker pool: the only threads that execute requests.
//!
//! Each worker loops on [`Reactor::next`], claims one ready session, and
//! drives its head request to completion against the shared
//! [`SapphireServer`]. Admission-controlled requests never park the worker:
//! a full gate yields an [`AdmissionTicket`] and the *session* parks
//! (`Phase::AwaitingGrant`) while the worker moves on to other sessions.
//! The grant callback — fired by whichever thread releases a slot — puts the
//! session back in the ready queue; the deadline sweep does the same for
//! tickets whose queue wait expired, and the worker settles those to a typed
//! [`ServerError::QueueTimeout`].

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use sapphire_endpoint::ServiceError;
use sapphire_obs::{RequestMark, Stage, Trace, TraceScope};

use crate::admission::{AdmissionPermit, AsyncAdmission};
use crate::error::ServerError;
use crate::registry::SessionId;

use super::session::{FrontRequest, FrontResponse, PendingAdmission, Phase, ResponseCallback};
use super::{RawTarget, Shared};

pub(crate) fn worker_loop(shared: Arc<Shared>) {
    loop {
        match shared.reactor.next() {
            super::reactor::Work::Exit => return,
            super::reactor::Work::Session(id) => {
                let followup = process(&shared, id);
                shared.reactor.done(followup);
            }
        }
    }
}

/// Operate on one scheduled session: resolve a parked admission first,
/// otherwise execute the next queued request. Returns the session id if it
/// still has work and must be re-scheduled.
fn process(shared: &Arc<Shared>, id: u64) -> Option<u64> {
    let state_arc = shared.session(id)?;
    let mut st = state_arc.lock().unwrap();
    match st.phase {
        // A spurious ready entry (deadline sweep racing a grant, or a
        // duplicate schedule): whoever owns the session now will
        // re-schedule it if needed.
        Phase::Idle | Phase::Running => return None,
        Phase::Queued | Phase::AwaitingGrant => {}
    }

    if let Some(p) = st.pending.take() {
        st.phase = Phase::Running;
        drop(st);
        shared.reactor.note_unparked();
        match resolve_pending(shared, id, p, &state_arc) {
            Ownership::Parked => return None,
            Ownership::Held => return finish(shared, &state_arc, id),
        }
    }

    let Some(q) = st.queue.pop_front() else {
        st.phase = Phase::Idle;
        let closed = st.closed;
        drop(st);
        if closed {
            shared.forget_session(id);
        }
        return None;
    };
    st.phase = Phase::Running;
    drop(st);
    // The time between submit() accepting the request and a worker picking
    // it up: the front-end's own queueing stage.
    let queued_us = q.enqueued.elapsed().as_micros() as u64;
    shared.server.obs().record(Stage::FrontendQueue, queued_us);
    if let Some(t) = &q.trace {
        t.add_span(
            Stage::FrontendQueue.name(),
            q.enqueued,
            queued_us,
            None,
            String::new(),
        );
    }
    let respond = wrap_reply(shared, q.respond, q.enqueued, q.trace.clone());
    match dispatch(shared, id, q.request, respond, q.trace, &state_arc) {
        Ownership::Parked => None,
        Ownership::Held => finish(shared, &state_arc, id),
    }
}

/// Wrap a response callback so delivery seals the request's observability:
/// the `end_to_end` stage is submit → reply (queue wait, admission wait, and
/// execution included — the latency the *client* saw), and a sampled trace
/// is finished into the flight recorder. Fires exactly once because the
/// callback it wraps does.
fn wrap_reply(
    shared: &Arc<Shared>,
    respond: ResponseCallback,
    enqueued: Instant,
    trace: Option<Trace>,
) -> ResponseCallback {
    let obs = shared.server.obs().clone();
    Box::new(move |result| {
        obs.record(Stage::EndToEnd, enqueued.elapsed().as_micros() as u64);
        if let Some(t) = trace {
            obs.finish_trace(t);
        }
        respond(result);
    })
}

/// Record one admission wait (histogram always; span when traced).
fn note_admission_wait(
    shared: &Arc<Shared>,
    since: Instant,
    trace: Option<&Trace>,
    tag: &'static str,
) {
    let waited_us = since.elapsed().as_micros() as u64;
    shared.server.obs().record(Stage::AdmissionWait, waited_us);
    if let Some(t) = trace {
        t.add_span(
            Stage::AdmissionWait.name(),
            since,
            waited_us,
            None,
            tag.to_string(),
        );
    }
}

/// Whether the worker still owns its session after a dispatch step.
///
/// Ownership is explicit, never inferred from the shared phase tag: once a
/// step parks the session on an admission ticket (`Parked`), a grant can
/// resume it on *another* worker immediately — by the time this worker gets
/// back to `finish()`, a `Running` phase might be that other worker's, and
/// touching it would put two workers on one session (breaking per-session
/// ordering).
#[must_use]
enum Ownership {
    /// The step completed; this worker still owns the session and must run
    /// `finish`.
    Held,
    /// The step parked the session on an admission ticket; ownership
    /// transferred to the grant/deadline machinery — hands off.
    Parked,
}

/// A session woke from `AwaitingGrant`: claim the grant, or settle the
/// expired ticket, or re-park on a spurious wake.
fn resolve_pending(
    shared: &Arc<Shared>,
    id: u64,
    p: PendingAdmission,
    state_arc: &Arc<std::sync::Mutex<super::session::SessionState>>,
) -> Ownership {
    if let Some(permit) = p.ticket.try_claim() {
        shared
            .counters
            .ticket_grants
            .fetch_add(1, Ordering::Relaxed);
        note_admission_wait(shared, p.since, p.trace.as_ref(), "granted");
        execute_admitted(shared, id, p.request, permit, p.respond, p.trace);
        return Ownership::Held;
    }
    if p.ticket.expired() {
        match p.ticket.cancel() {
            // The grant raced the deadline: the slot is ours — use it
            // rather than bounce a request the gate already admitted.
            Some(permit) => {
                shared.counters.late_grants.fetch_add(1, Ordering::Relaxed);
                note_admission_wait(shared, p.since, p.trace.as_ref(), "late");
                execute_admitted(shared, id, p.request, permit, p.respond, p.trace);
            }
            None => {
                note_admission_wait(shared, p.since, p.trace.as_ref(), "timeout");
                let err = ServerError::QueueTimeout {
                    waited_ms: p.since.elapsed().as_millis() as u64,
                };
                shared.server.note_rejection(&err);
                shared
                    .counters
                    .queue_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                shared.reply(p.respond, Err(err));
            }
        }
        return Ownership::Held;
    }
    // Spurious wake (stale deadline entry after an early grant-and-repark,
    // or a duplicate schedule): re-park via the shared race-safe path.
    park(shared, id, p, state_arc)
}

/// Park `p` on the session (`AwaitingGrant`), double-checking the grant
/// under the session lock first: the grant callback skips sessions it sees
/// `Running`, so a grant that fired between the admission call (or the
/// spurious wake) and this lock would otherwise be lost — with the session
/// left holding a granted slot until its deadline, or forever when the
/// ticket has none.
fn park(
    shared: &Arc<Shared>,
    id: u64,
    p: PendingAdmission,
    state_arc: &Arc<std::sync::Mutex<super::session::SessionState>>,
) -> Ownership {
    let deadline = p.ticket.deadline();
    let mut st = state_arc.lock().unwrap();
    if let Some(permit) = p.ticket.try_claim() {
        shared
            .counters
            .ticket_grants
            .fetch_add(1, Ordering::Relaxed);
        drop(st);
        note_admission_wait(shared, p.since, p.trace.as_ref(), "granted");
        execute_admitted(shared, id, p.request, permit, p.respond, p.trace);
        return Ownership::Held;
    }
    // Any grant from here on finds the phase `AwaitingGrant` once we
    // release the lock (its callback blocks on this session lock), so the
    // wake cannot be lost.
    st.pending = Some(p);
    st.phase = Phase::AwaitingGrant;
    // Count the park while still holding the session lock: a resuming
    // worker needs this lock to take `pending`, so its `note_unparked`
    // strictly follows this increment — the pair can never invert into a
    // counter underflow. (Session lock → reactor lock is the crate-wide
    // order; the reactor never takes a session lock.)
    shared.reactor.note_parked();
    drop(st);
    if let Some(at) = deadline {
        shared.reactor.schedule_deadline(at, id);
    }
    Ownership::Parked
}

/// After one unit of owned work: hand the session to its next state.
/// Returns the id when more queued work exists (the caller re-schedules
/// it). Only called while this worker owns the session, so the phase here
/// is necessarily our own `Running`.
fn finish(
    shared: &Arc<Shared>,
    state_arc: &Arc<std::sync::Mutex<super::session::SessionState>>,
    id: u64,
) -> Option<u64> {
    let mut st = state_arc.lock().unwrap();
    debug_assert_eq!(st.phase, Phase::Running, "finish() requires ownership");
    if st.queue.is_empty() {
        st.phase = Phase::Idle;
        let closed = st.closed;
        drop(st);
        if closed {
            shared.forget_session(id);
        }
        None
    } else {
        st.phase = Phase::Queued;
        Some(id)
    }
}

/// Execute one request from the head of a session's queue.
fn dispatch(
    shared: &Arc<Shared>,
    id: u64,
    request: FrontRequest,
    respond: ResponseCallback,
    trace: Option<Trace>,
    state_arc: &Arc<std::sync::Mutex<super::session::SessionState>>,
) -> Ownership {
    let sid = SessionId(id);
    match request {
        FrontRequest::SetRow { idx, input } => {
            let r = shared.server.set_row(sid, idx, input);
            shared.reply(respond, r.map(|()| FrontResponse::Ack));
            Ownership::Held
        }
        FrontRequest::SetModifiers { modifiers } => {
            let r = shared.server.set_modifiers(sid, modifiers);
            shared.reply(respond, r.map(|()| FrontResponse::Ack));
            Ownership::Held
        }
        FrontRequest::ApplyAlternative { index } => {
            let r = shared.server.apply_alternative(sid, index);
            shared.reply(respond, r.map(FrontResponse::Table));
            Ownership::Held
        }
        FrontRequest::Close => {
            shared.server.close_session(sid);
            state_arc.lock().unwrap().closed = true;
            shared.reply(respond, Ok(FrontResponse::Closed));
            Ownership::Held
        }
        FrontRequest::Query { query } => {
            if let RawTarget::External(service) = &shared.raw {
                // The external service runs its own admission tiers (a
                // ClusterRouter never parks at the edge), so the worker
                // drives it directly — under this request's trace context,
                // with the front-end owning the end-to-end measurement.
                let _mark = RequestMark::new();
                let _scope = TraceScope::enter(trace);
                let tenant = match shared.server.session_tenant(sid) {
                    Ok(t) => t,
                    Err(e) => {
                        shared.reply(respond, Err(e));
                        return Ownership::Held;
                    }
                };
                let r = service
                    .execute_query(&tenant, &query)
                    .map(FrontResponse::Query)
                    .map_err(service_to_server);
                shared.reply(respond, r);
                return Ownership::Held;
            }
            shared.server.note_service_request();
            admit_then(
                shared,
                id,
                FrontRequest::Query { query },
                respond,
                trace,
                state_arc,
            )
        }
        FrontRequest::Complete { typed } => {
            shared.server.note_completion_request();
            admit_then(
                shared,
                id,
                FrontRequest::Complete { typed },
                respond,
                trace,
                state_arc,
            )
        }
        FrontRequest::Run => {
            shared.server.note_run_request();
            admit_then(shared, id, FrontRequest::Run, respond, trace, state_arc)
        }
    }
}

/// Non-blocking admission for a model-touching request: execute immediately
/// on a free slot, park the session on a ticket otherwise. This is the
/// point where the thread-per-request tier would park a whole thread.
fn admit_then(
    shared: &Arc<Shared>,
    id: u64,
    request: FrontRequest,
    respond: ResponseCallback,
    trace: Option<Trace>,
    state_arc: &Arc<std::sync::Mutex<super::session::SessionState>>,
) -> Ownership {
    let gate = shared.server.admission_gate().clone();
    let on_grant: crate::admission::GrantCallback = {
        let weak = Arc::downgrade(shared);
        Box::new(move || {
            if let Some(shared) = weak.upgrade() {
                shared.on_grant(id);
            }
        })
    };
    let asked = Instant::now();
    match gate.admit_evented(on_grant) {
        Ok(AsyncAdmission::Ready(permit)) => {
            shared
                .counters
                .immediate_grants
                .fetch_add(1, Ordering::Relaxed);
            note_admission_wait(shared, asked, trace.as_ref(), "immediate");
            execute_admitted(shared, id, request, permit, respond, trace);
            Ownership::Held
        }
        Ok(AsyncAdmission::Queued(ticket)) => {
            shared.counters.ticket_waits.fetch_add(1, Ordering::Relaxed);
            park(
                shared,
                id,
                PendingAdmission {
                    ticket,
                    request,
                    respond,
                    since: asked,
                    trace,
                },
                state_arc,
            )
        }
        Err(e) => {
            shared.server.note_rejection(&e);
            shared.reply(respond, Err(e));
            Ownership::Held
        }
    }
}

/// Run an admitted request against the server, permit in hand. The body
/// executes inside this request's trace context with the request depth
/// marked, so the server's own entry points know a front-end tier already
/// owns the end-to-end measurement and the root trace.
fn execute_admitted(
    shared: &Arc<Shared>,
    id: u64,
    request: FrontRequest,
    permit: AdmissionPermit,
    respond: ResponseCallback,
    trace: Option<Trace>,
) {
    let _mark = RequestMark::new();
    let _scope = TraceScope::enter(trace);
    let sid = SessionId(id);
    let result = match request {
        FrontRequest::Complete { typed } => shared
            .server
            .complete_admitted(sid, &typed, permit)
            .map(FrontResponse::Completion),
        FrontRequest::Run => shared
            .server
            .run_admitted(sid, permit, shed_floor(shared))
            .map(FrontResponse::Run),
        FrontRequest::Query { query } => {
            let tenant = match shared.server.session_tenant(sid) {
                Ok(t) => t,
                Err(e) => {
                    drop(permit);
                    return shared.reply(respond, Err(e));
                }
            };
            shared
                .server
                .execute_query_admitted(&tenant, &query, permit)
                .map(FrontResponse::Query)
        }
        // Only admission-controlled requests reach this point.
        other => unreachable!("non-admitted request {other:?} routed through admission"),
    };
    shared.reply(respond, result);
}

/// Front-end-initiated shedding: pick a degradation-tier floor from the
/// reactor's OWN ready-queue depth, so fidelity drops while work is still
/// queued in the front-end — before the server's admission queue (the
/// signal `SapphireServer::qsm_tier` watches) ever sees the backlog. The
/// floor rides the same `run_tiered` surface a cluster edge uses, so
/// tier-keyed caching and the tier-0 isolation guarantee hold unchanged.
///
/// Ladder, mirroring [`SapphireServer::shed_pressure_tier`]: a ready queue
/// deeper than the threshold sheds tier 1; deeper than twice the threshold
/// sheds tier 2. `None` (the default) disables front-end shedding.
fn shed_floor(shared: &Shared) -> usize {
    let Some(threshold) = shared.config.shed_ready_threshold else {
        return 0;
    };
    let (ready, _parked, _busy) = shared.reactor.load();
    let floor = if ready > threshold.saturating_mul(2) {
        2
    } else if ready > threshold {
        1
    } else {
        0
    };
    if floor > 0 {
        shared
            .counters
            .shed_dispatches
            .fetch_add(1, Ordering::Relaxed);
    }
    floor
}

/// Map a raw-target service failure onto the server's typed error space
/// (the same correspondence `ServerError::into_service_error` defines, run
/// backwards).
fn service_to_server(e: ServiceError) -> ServerError {
    match e {
        ServiceError::Overloaded {
            in_flight,
            queue_depth,
        } => ServerError::Overloaded {
            in_flight,
            queue_depth,
        },
        ServiceError::Timeout { work_used } => ServerError::Timeout { work_used },
        ServiceError::QueueTimeout { waited_ms } => ServerError::QueueTimeout { waited_ms },
        ServiceError::QuotaExhausted {
            tenant,
            used,
            budget,
        } => ServerError::QuotaExhausted {
            tenant,
            used,
            budget,
        },
        ServiceError::Backend(e) => ServerError::Backend(e.to_string()),
    }
}
