//! # sapphire-server
//!
//! The serving tier of the Sapphire reproduction: a concurrent,
//! multi-session query service over one shared Predictive User Model.
//!
//! The paper's Sapphire is an *interactive service* — many users type into
//! query boxes simultaneously and receive QCM completions and QSM
//! suggestions in real time. The library crates model one user; this crate
//! adds the layer that serves many:
//!
//! * **Shared immutable model** — one [`PredictiveUserModel`]
//!   (knowledge-graph endpoints + assembled cache + lexica) behind an
//!   [`Arc`](std::sync::Arc), used concurrently by every request. Sessions
//!   carry only the user's typed state (see
//!   [`registry::SessionRegistry`]), never model copies.
//! * **Admission control** — a bounded in-flight limit with a bounded,
//!   deadline-limited, **fair FIFO** wait queue
//!   ([`admission::AdmissionController`]: each waiter has its own condvar
//!   slot and freed slots are handed to the queue head in arrival order) and
//!   per-tenant work budgets ([`admission::TenantBudgets`]) denominated in
//!   the evaluator's [`WorkBudget`](sapphire_sparql::WorkBudget) units.
//!   Rejections are typed ([`ServerError::Overloaded`],
//!   [`ServerError::QueueTimeout`], [`ServerError::QuotaExhausted`]), so
//!   clients can tell back-pressure from failure.
//! * **Response caching** — a sharded bounded LRU
//!   ([`response_cache::ShardedResponseCache`], built on
//!   [`sapphire_core::BoundedCache`]) memoizing QCM completions and QSM run
//!   payloads by normalized request.
//! * **Single-flight coalescing** — a burst of identical not-yet-cached
//!   requests costs *one* model scan: the first miss leads, concurrent
//!   duplicates follow and receive the leader's shared result (or its typed
//!   error), bounded by a per-key waiter cap ([`coalesce::Coalescer`]).
//! * **Service endpoints** — [`SapphireServer`] implements
//!   [`sapphire_endpoint::QueryService`], so one deployment can federate
//!   over another through
//!   [`ServiceEndpoint`](sapphire_endpoint::ServiceEndpoint) with admission
//!   control enforced at every hop.
//!
//! ```
//! use std::sync::Arc;
//! use sapphire_core::prelude::*;
//! use sapphire_core::InitMode;
//! use sapphire_server::{SapphireServer, ServerConfig};
//!
//! let graph = sapphire_rdf::turtle::parse(
//!     r#"res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ."#,
//! ).unwrap();
//! let ep: Arc<dyn Endpoint> =
//!     Arc::new(LocalEndpoint::new("dbpedia", graph, EndpointLimits::warehouse()));
//! let pum = Arc::new(PredictiveUserModel::initialize(
//!     vec![ep], Lexicon::dbpedia_default(), SapphireConfig::for_tests(), InitMode::Federated,
//! ).unwrap());
//!
//! let server = Arc::new(SapphireServer::new(pum, ServerConfig::for_tests()));
//! let session = server.open_session("alice").unwrap();
//! server.set_row(session, 0, TripleInput::new("?who", "surname", "Kennedy")).unwrap();
//! let out = server.run(session).unwrap();
//! assert!(out.executed);
//! assert_eq!(out.answers.total_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod coalesce;
pub mod error;
pub mod frontend;
pub mod registry;
pub mod response_cache;
mod server;
pub mod shard;

pub use coalesce::{CoalesceStats, Coalescer};
pub use error::ServerError;
pub use frontend::{FrontRequest, FrontResponse, Frontend, FrontendConfig, FrontendMetrics};
pub use registry::{SessionEntry, SessionId, SessionRegistry};
pub use server::{QueryRun, RunOutput, RunPayload, SapphireServer, ServerConfig, ServerMetrics};
pub use shard::{ShardService, TransportStats};

use sapphire_core::PredictiveUserModel;

// The whole point of the crate: the server (and the model it shares) must be
// usable from any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SapphireServer>();
    assert_send_sync::<PredictiveUserModel>();
    assert_send_sync::<ServerError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_core::prelude::*;
    use sapphire_core::InitMode;
    use sapphire_endpoint::{QueryService, ServiceEndpoint};
    use std::sync::Arc;
    use std::time::Duration;

    const DATA: &str = r#"
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "Robert F. Kennedy"@en .
res:Jack a dbo:Person ; dbo:surname "Kerry"@en ; dbo:name "John Kerry"@en .
"#;

    fn pum() -> Arc<PredictiveUserModel> {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            sapphire_rdf::turtle::parse(DATA).unwrap(),
            EndpointLimits::warehouse(),
        ));
        Arc::new(
            PredictiveUserModel::initialize(
                vec![ep],
                Lexicon::dbpedia_default(),
                SapphireConfig::for_tests(),
                InitMode::Federated,
            )
            .unwrap(),
        )
    }

    fn server() -> Arc<SapphireServer> {
        Arc::new(SapphireServer::new(pum(), ServerConfig::for_tests()))
    }

    #[test]
    fn figure_2_workflow_through_the_server() {
        let srv = server();
        let s = srv.open_session("alice").unwrap();
        srv.set_row(s, 0, TripleInput::new("?person", "surname", "Kennedys"))
            .unwrap();
        let out = srv.run(s).unwrap();
        assert!(out.executed);
        assert_eq!(out.answers.total_rows(), 0);
        let idx = out
            .suggestions
            .alternatives
            .iter()
            .position(|a| a.replacement == "Kennedy")
            .expect("Kennedy suggestion");
        let table = srv.apply_alternative(s, idx).unwrap();
        assert_eq!(table.total_rows(), 2);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn completions_are_cached_across_sessions() {
        let srv = server();
        let s1 = srv.open_session("alice").unwrap();
        let s2 = srv.open_session("bob").unwrap();
        let r1 = srv.complete(s1, "Kenn").unwrap();
        let r2 = srv.complete(s2, " Kenn ").unwrap();
        assert_eq!(
            r1.suggestions, r2.suggestions,
            "normalized key shares the entry"
        );
        let m = srv.metrics();
        assert_eq!(m.completion_requests, 2);
        assert_eq!(m.completion_cache.hits, 1);
        assert_eq!(m.completion_cache.misses, 1);
    }

    /// Regression: the tree stage of QCM matches case-sensitively, so a
    /// case-folding cache key let whichever spelling scanned first poison
    /// the entry for the other (nondeterministic under concurrency — the
    /// front-end oracle test caught it). Differently-cased terms must each
    /// answer exactly what a direct model scan answers.
    #[test]
    fn differently_cased_completions_never_share_a_cache_entry() {
        let srv = server();
        let s = srv.open_session("alice").unwrap();
        let upper = srv.complete(s, "K").unwrap();
        let lower = srv.complete(s, "k").unwrap();
        assert_eq!(upper.suggestions, srv.model().complete("K").suggestions);
        assert_eq!(lower.suggestions, srv.model().complete("k").suggestions);
        let m = srv.metrics();
        assert_eq!(m.completion_cache.hits, 0, "no cross-case cache sharing");
        assert_eq!(m.completion_cache.misses, 2);
    }

    #[test]
    fn run_results_are_cached_and_attempts_still_count() {
        let srv = server();
        let s = srv.open_session("alice").unwrap();
        srv.set_row(s, 0, TripleInput::new("?p", "surname", "Kennedy"))
            .unwrap();
        let first = srv.run(s).unwrap();
        let second = srv.run(s).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.answers.total_rows(), second.answers.total_rows());
        assert_eq!(
            second.attempts, 2,
            "attempt counting is per-session, not cached"
        );
    }

    #[test]
    fn editing_rows_invalidates_pending_suggestions() {
        let srv = server();
        let s = srv.open_session("alice").unwrap();
        srv.set_row(s, 0, TripleInput::new("?person", "surname", "Kennedys"))
            .unwrap();
        let out = srv.run(s).unwrap();
        assert!(!out.suggestions.alternatives.is_empty());
        // The user edits the row: the run's alternatives described rows that
        // no longer exist, so accepting one must fail typed, not splice a
        // stale replacement into the new row.
        srv.set_row(s, 0, TripleInput::new("?person", "surname", "Kerry"))
            .unwrap();
        assert!(matches!(
            srv.apply_alternative(s, 0),
            Err(ServerError::UnknownSuggestion { available: 0, .. })
        ));
        // Same contract after accepting an alternative: the remaining ones
        // described the pre-accept rows, so a second accept needs a new run.
        srv.set_row(s, 0, TripleInput::new("?person", "surname", "Kennedys"))
            .unwrap();
        let out = srv.run(s).unwrap();
        let idx = out
            .suggestions
            .alternatives
            .iter()
            .position(|a| a.replacement == "Kennedy")
            .unwrap();
        srv.apply_alternative(s, idx).unwrap();
        assert!(matches!(
            srv.apply_alternative(s, idx),
            Err(ServerError::UnknownSuggestion { available: 0, .. })
        ));
    }

    #[test]
    fn unknown_sessions_and_suggestions_are_typed() {
        let srv = server();
        let ghost = SessionId(999);
        assert!(matches!(
            srv.complete(ghost, "x"),
            Err(ServerError::UnknownSession(_))
        ));
        let s = srv.open_session("a").unwrap();
        assert!(matches!(
            srv.apply_alternative(s, 0),
            Err(ServerError::UnknownSuggestion { available: 0, .. })
        ));
        srv.close_session(s);
        assert!(matches!(srv.run(s), Err(ServerError::UnknownSession(_))));
    }

    #[test]
    fn invalid_query_state_surfaces_session_error() {
        let srv = server();
        let s = srv.open_session("a").unwrap();
        srv.set_row(s, 0, TripleInput::new("not a uri", "surname", "x"))
            .unwrap();
        assert!(matches!(srv.run(s), Err(ServerError::Session(_))));
    }

    #[test]
    fn tenant_quota_rejections_are_typed_and_windowed() {
        let config = ServerConfig {
            tenant_window_budget: Some(2),
            completion_cost: 1,
            ..ServerConfig::for_tests()
        };
        let srv = Arc::new(SapphireServer::new(pum(), config));
        let s = srv.open_session("alice").unwrap();
        srv.complete(s, "Ken").unwrap();
        srv.complete(s, "Kenn").unwrap();
        let err = srv.complete(s, "Kenne").unwrap_err();
        assert!(matches!(err, ServerError::QuotaExhausted { budget: 2, .. }));
        assert!(err.is_rejection());
        assert_eq!(srv.metrics().rejected_quota, 1);
        // Other tenants unaffected; a new window clears the meter.
        let s2 = srv.open_session("bob").unwrap();
        srv.complete(s2, "Ken").unwrap();
        srv.reset_budget_window();
        srv.complete(s, "Kenne").unwrap();
    }

    #[test]
    fn work_budget_converts_to_tenant_quota() {
        use sapphire_sparql::WorkBudget;
        let config = ServerConfig::for_tests().with_tenant_budget(&WorkBudget::limited(7));
        assert_eq!(config.tenant_window_budget, Some(7));
        let config = config.with_tenant_budget(&WorkBudget::unlimited());
        assert_eq!(config.tenant_window_budget, None);
    }

    #[test]
    fn overload_rejections_under_a_tiny_gate() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 0,
            queue_wait: Duration::from_millis(5),
            ..ServerConfig::for_tests()
        };
        let srv = Arc::new(SapphireServer::new(pum(), config));
        let sessions: Vec<SessionId> = (0..8)
            .map(|i| srv.open_session(&format!("t{i}")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for &s in &sessions {
            let srv = srv.clone();
            handles.push(std::thread::spawn(move || {
                (0..20)
                    .filter(|i| match srv.complete(s, &format!("Ken{i}")) {
                        Ok(_) => false,
                        Err(e) => {
                            assert!(
                                matches!(
                                    e,
                                    ServerError::Overloaded { .. }
                                        | ServerError::QueueTimeout { .. }
                                ),
                                "only typed back-pressure rejections, got {e:?}"
                            );
                            true
                        }
                    })
                    .count()
            }));
        }
        let rejected: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let m = srv.metrics();
        assert_eq!(
            rejected as u64,
            m.rejected_overloaded + m.rejected_queue_timeout,
            "every rejection accounted for"
        );
    }

    #[test]
    fn server_as_query_service_endpoint() {
        let srv = Arc::new(SapphireServer::new(pum(), ServerConfig::for_tests()));
        assert_eq!(srv.service_name(), "sapphire");
        let ep = ServiceEndpoint::new(srv.clone(), "downstream");
        use sapphire_endpoint::Endpoint;
        let rows = ep
            .select(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedy"@en }"#)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(srv.metrics().service_requests, 1);
        assert!(
            srv.tenant_usage("downstream") > 0,
            "service queries are billed"
        );
    }
}
