//! String-similarity micro-benchmarks: Jaro-Winkler (the QSM's measure) vs
//! Jaro vs Levenshtein, across string lengths typical of cached literals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapphire_text::{jaro, jaro_winkler, levenshtein};
use std::hint::black_box;

fn bench_measures(c: &mut Criterion) {
    let pairs = [
        ("Kennedys", "Kennedy"),
        ("Viking Press", "The Viking Press"),
        ("Jacqueline Kennedy Onassis", "Jacqueline Kennedy"),
        ("almaMater", "alma mater of the person"),
    ];
    let mut group = c.benchmark_group("similarity");
    group.sample_size(50);
    for (a, b) in pairs {
        let id = format!("{}x{}", a.len(), b.len());
        group.bench_with_input(
            BenchmarkId::new("jaro_winkler", &id),
            &(a, b),
            |bench, (a, b)| bench.iter(|| black_box(jaro_winkler(black_box(a), black_box(b)))),
        );
        group.bench_with_input(BenchmarkId::new("jaro", &id), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(jaro(black_box(a), black_box(b))))
        });
        group.bench_with_input(
            BenchmarkId::new("levenshtein", &id),
            &(a, b),
            |bench, (a, b)| bench.iter(|| black_box(levenshtein(black_box(a), black_box(b)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
