//! Wire-mode load harness: `serve_load --cluster --wire` and the CI
//! replica-loss smoke gate.
//!
//! Runs the same Appendix-B closed-loop workload as [`crate::cluster`],
//! but with a **real process boundary** on the edge↔shard hop: every
//! replica is hosted behind a [`WireServer`] on a loopback socket and the
//! [`ClusterRouter`] talks to it through a [`WireClient`] — serialization,
//! framing, connection pooling, and transport failures all on the hot
//! path. Two extra switches:
//!
//! * `--processes` — shards run as separate **OS processes** (the
//!   `wire_shard` binary, found next to the running executable), brought
//!   up with a `WIRE_READY {addr}` stdout handshake and torn down by
//!   closing their stdin. Without it, the wire servers run as threads in
//!   this process — same sockets, same codec, cheaper bring-up.
//! * `--kill-replica` (the smoke default) — one replica is crashed
//!   mid-run: its live connections are shot mid-stream and subsequent
//!   dials are refused. The gate is that the router's typed-retry/failover
//!   machinery absorbs the loss: **zero** requests surface an error.
//!
//! Correctness is checked against an **in-process oracle**: a plain
//! `ClusterRouter` over the same partitioning serves a sample of the
//! workload, and any byte-level divergence (answers, suggestion lists,
//! completions) counts in `merge_mismatches` (the CI gate requires zero).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_datagen::generate;
use sapphire_datagen::workload::appendix_b;
use sapphire_rdf::{snapshot, Partitioner};
use sapphire_server::{ServerConfig, ShardService};
use sapphire_sparql::SelectQuery;
use sapphire_text::Lexicon;
use sapphire_wire::{WireClient, WireClientConfig, WireServer, WireServerConfig};

use crate::cluster::{flatten, workload_queries};
use crate::serve::ClassStats;
use crate::{dataset_for, experiment_config};

/// Everything the wire harness can be asked to do.
#[derive(Debug, Clone)]
pub struct WireLoadOptions {
    /// Closed-loop simulated users.
    pub users: usize,
    /// Times each user replays the whole Appendix-B question list.
    pub rounds: usize,
    /// Dataset scale (`tiny`/`small`/`medium`).
    pub scale: String,
    /// Data shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Questions (and QCM terms) replayed against the in-process oracle
    /// (`0` skips the check).
    pub determinism_sample: usize,
    /// Host each replica in a separate OS process (the `wire_shard`
    /// binary) instead of a thread in this one.
    pub processes: bool,
    /// Crash one replica mid-run (kill its connections, refuse redials)
    /// and demand zero surviving errors.
    pub kill_replica: bool,
    /// Process mode only: write per-shard snapshots first and bring the
    /// children up from them (`wire_shard --snapshot`) instead of letting
    /// each child regenerate its slice. The parent still generates and
    /// partitions (it needs the oracle and the snapshot bytes), which is
    /// exactly the per-child cost the snapshot path avoids — the report's
    /// `bringup` section holds both sides of that comparison.
    pub snapshot: bool,
}

impl Default for WireLoadOptions {
    fn default() -> Self {
        WireLoadOptions {
            users: 8,
            rounds: 2,
            scale: "tiny".to_string(),
            shards: 2,
            replicas: 2,
            determinism_sample: 8,
            processes: false,
            kill_replica: false,
            snapshot: false,
        }
    }
}

impl WireLoadOptions {
    /// The CI smoke posture: 2×2 on loopback sockets, one replica killed
    /// mid-run, oracle check on. Small enough to ride inside `serve_check`.
    pub fn smoke() -> Self {
        WireLoadOptions {
            users: 4,
            rounds: 2,
            kill_replica: true,
            ..WireLoadOptions::default()
        }
    }

    /// The CI snapshot-gate posture: real shard processes brought up from
    /// freshly written snapshots, oracle check on, no kill drill (the gate
    /// is bring-up, not failover).
    pub fn snapshot_smoke() -> Self {
        WireLoadOptions {
            users: 4,
            rounds: 1,
            processes: true,
            snapshot: true,
            ..WireLoadOptions::default()
        }
    }
}

/// How one `wire_shard` child got its data, from its `WIRE_READY` handshake.
#[derive(Debug, Clone)]
struct ChildBringup {
    shard: usize,
    replica: usize,
    /// `"snapshot"` or `"generate"`.
    mode: String,
    /// Wall time of the child's data phase (snapshot load, or
    /// generate+partition), microseconds.
    data_us: u64,
}

/// One hosted replica: either a wire server thread in this process or a
/// `wire_shard` child process.
enum ReplicaHost {
    Thread(WireServer),
    Process(Child),
}

impl ReplicaHost {
    /// Simulated crash: live connections die mid-stream, later dials are
    /// refused — what a killed replica process looks like from the edge.
    fn kill(self) {
        match self {
            ReplicaHost::Thread(server) => {
                server.kill_connections();
                server.shutdown();
            }
            ReplicaHost::Process(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    /// Graceful teardown at the end of the run.
    fn stop(self) {
        match self {
            ReplicaHost::Thread(server) => server.shutdown(),
            ReplicaHost::Process(mut child) => {
                // Closing the child's stdin is the shutdown signal; give it
                // a moment, then make sure it is gone.
                drop(child.stdin.take());
                std::thread::sleep(std::time::Duration::from_millis(100));
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Host every replica of the in-process cluster behind a wire server
/// thread on an ephemeral loopback port.
/// Per-shard replica hosts plus the socket addresses they listen on.
type ShardHosts = (Vec<Vec<ReplicaHost>>, Vec<Vec<SocketAddr>>);

fn host_threads(cluster: &Cluster) -> ShardHosts {
    cluster
        .shards()
        .iter()
        .map(|replicas| {
            replicas
                .iter()
                .map(|r| {
                    let server = WireServer::serve(
                        r.clone() as Arc<dyn ShardService>,
                        "127.0.0.1:0",
                        WireServerConfig::default(),
                    )
                    .expect("bind loopback wire server");
                    let addr = server.local_addr();
                    (ReplicaHost::Thread(server), addr)
                })
                .unzip()
        })
        .unzip()
}

/// Parse a `WIRE_READY addr [bringup=… data_us=…]` handshake line. The
/// address is positional; the remaining tokens are `key=value` pairs so the
/// handshake can grow without breaking older parsers (whitespace-split, not
/// parse-the-whole-remainder).
fn parse_handshake(line: &str) -> Option<(SocketAddr, String, u64)> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("WIRE_READY") {
        return None;
    }
    let addr: SocketAddr = tokens.next()?.parse().ok()?;
    let mut mode = "generate".to_string();
    let mut data_us = 0u64;
    for token in tokens {
        if let Some(v) = token.strip_prefix("bringup=") {
            mode = v.to_string();
        } else if let Some(v) = token.strip_prefix("data_us=") {
            data_us = v.parse().ok()?;
        }
    }
    Some((addr, mode, data_us))
}

/// Spawn one `wire_shard` child per replica and collect the `WIRE_READY`
/// handshakes (address + bring-up telemetry). The binary is expected next
/// to the running executable (both are `sapphire-bench` bins, so a normal
/// build puts them together). With `snapshot_dir` set, each child is told
/// to load its shard's snapshot from there instead of regenerating.
fn host_processes(
    opts: &WireLoadOptions,
    snapshot_dir: Option<&Path>,
) -> std::io::Result<(ShardHosts, Vec<ChildBringup>)> {
    let exe = std::env::current_exe()?;
    let bin = exe
        .parent()
        .ok_or_else(|| std::io::Error::other("current_exe has no parent dir"))?
        .join(format!("wire_shard{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        return Err(std::io::Error::other(format!(
            "{} not found (build it with `cargo build --release -p sapphire-bench --bin wire_shard`)",
            bin.display()
        )));
    }
    let mut hosts = Vec::with_capacity(opts.shards);
    let mut addrs = Vec::with_capacity(opts.shards);
    let mut bringups = Vec::with_capacity(opts.shards * opts.replicas);
    for shard in 0..opts.shards {
        let mut shard_hosts = Vec::with_capacity(opts.replicas);
        let mut shard_addrs = Vec::with_capacity(opts.replicas);
        for replica in 0..opts.replicas {
            let mut command = Command::new(&bin);
            command.args([
                "--scale",
                &opts.scale,
                "--shards",
                &opts.shards.to_string(),
                "--shard",
                &shard.to_string(),
                "--replica",
                &replica.to_string(),
            ]);
            if let Some(dir) = snapshot_dir {
                let path = dir.join(snapshot::shard_file_name(&opts.scale, shard, opts.shards));
                command.args(["--snapshot".as_ref(), path.as_os_str()]);
            }
            let mut child = command
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()?;
            let stdout = child.stdout.take().expect("piped child stdout");
            let mut line = String::new();
            BufReader::new(stdout).read_line(&mut line)?;
            let (addr, mode, data_us) = parse_handshake(&line).ok_or_else(|| {
                std::io::Error::other(format!(
                    "wire_shard s{shard}r{replica} bad handshake: {line:?}"
                ))
            })?;
            bringups.push(ChildBringup {
                shard,
                replica,
                mode,
                data_us,
            });
            shard_hosts.push(ReplicaHost::Process(child));
            shard_addrs.push(addr);
        }
        hosts.push(shard_hosts);
        addrs.push(shard_addrs);
    }
    Ok(((hosts, addrs), bringups))
}

/// Run the wire-mode workload and return the JSON report.
pub fn run(opts: &WireLoadOptions) -> String {
    assert!(
        !opts.snapshot || opts.processes,
        "--snapshot needs --processes: in thread mode there is no separate \
         bring-up to snapshot"
    );
    let dataset = dataset_for(&opts.scale);
    eprintln!(
        "(generating dataset + initializing {} shard models x {} replicas{}…)",
        opts.shards,
        opts.replicas,
        if opts.processes {
            " + one wire_shard process each"
        } else {
            ""
        }
    );
    // Generate and partition with explicit timing: in snapshot mode this
    // parent-side cost is exactly what every child would have paid to
    // regenerate its slice, i.e. the reference the snapshot loads are
    // gated against.
    let generate_clock = Instant::now();
    let graph = generate(dataset);
    let parent_generate_us = generate_clock.elapsed().as_micros() as u64;
    let triple_count = graph.len();
    let partition_clock = Instant::now();
    let partition = Partitioner::new(opts.shards).split(&graph);
    let parent_partition_us = partition_clock.elapsed().as_micros() as u64;

    // In snapshot mode, persist the shard slices before standing anything
    // up — the children's only data source.
    let snapshot_dir: Option<PathBuf> = opts
        .snapshot
        .then(|| std::env::temp_dir().join(format!("sapphire-wire-snap-{}", std::process::id())));
    let mut snapshot_write_us = 0u64;
    if let Some(dir) = &snapshot_dir {
        std::fs::create_dir_all(dir).expect("create snapshot dir");
        let write_clock = Instant::now();
        for (i, shard_graph) in partition.shards.iter().enumerate() {
            let path = dir.join(snapshot::shard_file_name(&opts.scale, i, opts.shards));
            snapshot::write(shard_graph, &path).expect("write shard snapshot");
        }
        snapshot_write_us = write_clock.elapsed().as_micros() as u64;
        eprintln!(
            "(wrote {} shard snapshots to {} in {snapshot_write_us}µs)",
            opts.shards,
            dir.display()
        );
    }

    // Same serving posture as the in-process cluster harness — and, in
    // process mode, the same one `wire_shard` rebuilds, so the oracle and
    // the children serve identical bytes.
    let default_in_flight = ServerConfig::default().max_in_flight.max(8);
    let server_config = ServerConfig {
        max_in_flight: default_in_flight,
        max_queue_depth: default_in_flight * 4,
        queue_wait: std::time::Duration::from_millis(1_000),
        ..ServerConfig::default()
    };
    let cluster = Cluster::build_from_shards(
        "edge",
        partition.shards,
        partition.schema_triples,
        partition.data_triples,
        opts.replicas,
        &Lexicon::dbpedia_default(),
        &experiment_config(),
        &server_config,
    )
    .expect("shard initialization");

    // Bring up the wire tier and dial every replica.
    let ((mut hosts, addrs), child_bringups) = if opts.processes {
        host_processes(opts, snapshot_dir.as_deref()).expect("wire_shard bring-up")
    } else {
        (host_threads(&cluster), Vec::new())
    };
    let clients: Vec<Vec<Arc<WireClient>>> = addrs
        .iter()
        .map(|shard| {
            shard
                .iter()
                .map(|&addr| {
                    Arc::new(
                        WireClient::connect(addr, WireClientConfig::default())
                            .expect("handshake with wire replica"),
                    )
                })
                .collect()
        })
        .collect();
    let shard_services: Vec<Vec<Arc<dyn ShardService>>> = clients
        .iter()
        .map(|s| {
            s.iter()
                .map(|c| c.clone() as Arc<dyn ShardService>)
                .collect()
        })
        .collect();
    let router = Arc::new(ClusterRouter::over(
        shard_services,
        ClusterConfig::default(),
    ));
    // The in-process oracle: a plain router straight over the replica
    // servers, no sockets anywhere.
    let oracle = ClusterRouter::new(
        Cluster::from_replicas(cluster.shards().to_vec()),
        ClusterConfig::default(),
    );

    // Build each question's query once, from the shard-local models.
    let models: Vec<_> = (0..cluster.shard_count())
        .map(|s| cluster.replicas(s)[0].model().clone())
        .collect();
    let questions = appendix_b();
    let queries: Vec<SelectQuery> = workload_queries(&models, &questions);

    // The kill drill: when half the QSM runs have completed, crash the
    // *first* replica of shard 0 — the one load-order ties favor, so it is
    // carrying primary traffic when it dies (its siblings must absorb the
    // rest).
    let victim_replica = 0;
    let victim: Arc<Mutex<Option<ReplicaHost>>> = Arc::new(Mutex::new(if opts.kill_replica {
        assert!(
            opts.replicas >= 2,
            "--kill-replica needs at least 2 replicas per shard"
        );
        Some(hosts[0].remove(victim_replica))
    } else {
        None
    }));
    let total_runs = opts.users * opts.rounds * questions.len();
    let kill_at = (total_runs / 2).max(1);
    let runs_done = Arc::new(AtomicUsize::new(0));

    eprintln!(
        "(driving {} users x {} rounds over {} questions against {} shards via {}{}…)",
        opts.users,
        opts.rounds,
        questions.len(),
        opts.shards,
        if opts.processes {
            "shard processes"
        } else {
            "loopback sockets"
        },
        if opts.kill_replica {
            format!(", killing shard 0 replica {victim_replica} mid-run")
        } else {
            String::new()
        }
    );
    let started = Instant::now();
    let (mut qcm, mut qsm) = (ClassStats::default(), ClassStats::default());
    let mut surviving_errors = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for user in 0..opts.users {
            let router = router.clone();
            let questions = &questions;
            let queries = &queries;
            let rounds = opts.rounds;
            let victim = victim.clone();
            let runs_done = runs_done.clone();
            handles.push(scope.spawn(move || {
                let tenant = format!("user-{user}");
                let mut qcm = ClassStats::default();
                let mut qsm = ClassStats::default();
                let mut errors = 0u64;
                for round in 0..rounds {
                    for qi in 0..questions.len() {
                        let idx = (qi + user + round) % questions.len();
                        for input in &questions[idx].script.rows {
                            let keyword = input.object.trim_start_matches('?');
                            for end in 1..=keyword.chars().count().min(6) {
                                let prefix: String = keyword.chars().take(end).collect();
                                let t = Instant::now();
                                let r = flatten(router.complete(&tenant, &prefix).map(|_| ()));
                                errors += u64::from(r.is_err());
                                qcm.record(t, &r);
                            }
                        }
                        let t = Instant::now();
                        let r = flatten(router.run(&tenant, &queries[idx]).map(|_| ()));
                        errors += u64::from(r.is_err());
                        qsm.record(t, &r);
                        if runs_done.fetch_add(1, Ordering::SeqCst) + 1 == kill_at {
                            if let Some(v) = victim.lock().unwrap().take() {
                                eprintln!("(crashing one replica after {kill_at} runs…)");
                                v.kill();
                            }
                        }
                    }
                }
                (qcm, qsm, errors)
            }));
        }
        for h in handles {
            let (c, s, e) = h.join().expect("no worker panics");
            qcm.merge(c);
            qsm.merge(s);
            surviving_errors += e;
        }
    });
    let wall = started.elapsed();

    // The dead replica must be provably dead: a direct probe on its client
    // (bypassing the router's failover) has to fail typed — and bump the
    // transport error counters the report surfaces.
    let replica_killed = opts.kill_replica && victim.lock().unwrap().is_none();
    let dead_probe_failed = if replica_killed {
        clients[0][victim_replica]
            .complete_top("probe", "a", 1)
            .is_err()
    } else {
        false
    };

    // Oracle check: the socket path must reproduce the in-process bytes —
    // answers, alternative lists, and completions.
    let sample = opts.determinism_sample.min(queries.len());
    let mut merge_mismatches = 0u64;
    for query in queries.iter().take(sample) {
        match (router.run("replay", query), oracle.run("replay", query)) {
            (Ok(a), Ok(b)) => {
                let alts_match = a.alternatives.len() == b.alternatives.len()
                    && a.alternatives.iter().zip(&b.alternatives).all(|(x, y)| {
                        x.replacement == y.replacement
                            && x.position == y.position
                            && x.answers == y.answers
                    });
                if a.answers != b.answers || !alts_match {
                    merge_mismatches += 1;
                }
            }
            _ => merge_mismatches += 1,
        }
    }
    for question in questions.iter().take(sample) {
        let keyword = question.script.rows[0].object.trim_start_matches('?');
        match (
            router.complete("replay", keyword),
            oracle.complete("replay", keyword),
        ) {
            (Ok(a), Ok(b)) => {
                if a.suggestions != b.suggestions {
                    merge_mismatches += 1;
                }
            }
            _ => merge_mismatches += 1,
        }
    }

    let metrics = router.metrics();
    let report = format!(
        "{{\n  \"benchmark\": \"serve_wire\",\n  \"config\": {{\"users\": {}, \
         \"rounds\": {}, \"scale\": \"{}\", \"shards\": {}, \"replicas\": {}, \
         \"processes\": {}, \"kill_replica\": {}, \"snapshot\": {}, \
         \"triples\": {triple_count}}},\n  \
         \"wall_seconds\": {:.3},\n  \"total_throughput_rps\": {:.1},\n  \
         \"qcm\": {},\n  \"qsm\": {},\n  \
         \"routing\": {{\"hedges_fired\": {}, \"hedges_won\": {}, \
         \"replica_retries\": {}, \"rejected_after_retry\": {}, \
         \"merges\": {}, \"degraded_runs\": {}}},\n  \
         \"transport\": {{\"wire_connects\": {}, \"wire_reconnects\": {}, \
         \"wire_io_errors\": {}, \"wire_corrupt_frames\": {}, \
         \"replica_killed\": {}, \"dead_probe_failed\": {}}},\n  \
         {},\n  \
         \"merge_mismatches\": {merge_mismatches},\n  \
         \"rejected_total\": {surviving_errors}\n}}",
        opts.users,
        opts.rounds,
        opts.scale,
        opts.shards,
        opts.replicas,
        opts.processes,
        opts.kill_replica,
        opts.snapshot,
        wall.as_secs_f64(),
        (qcm.latencies_us.len() + qsm.latencies_us.len()) as f64 / wall.as_secs_f64().max(1e-9),
        qcm.json(wall),
        qsm.json(wall),
        metrics.hedges_fired,
        metrics.hedges_won,
        metrics.replica_retries,
        metrics.rejected_after_retry,
        metrics.merges,
        metrics.degraded_runs,
        metrics.wire_connects,
        metrics.wire_reconnects,
        metrics.wire_io_errors,
        metrics.wire_corrupt_frames,
        u8::from(replica_killed),
        u8::from(dead_probe_failed),
        bringup_json(
            opts,
            parent_generate_us,
            parent_partition_us,
            snapshot_write_us,
            &child_bringups,
        ),
    );

    // Graceful teardown of everything still alive.
    for shard_hosts in hosts.drain(..) {
        for host in shard_hosts {
            host.stop();
        }
    }
    if let Some(dir) = &snapshot_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    report
}

/// The `bringup` report section: how every tier got its data and what it
/// cost. Scalar gate fields (`max_child_data_us`, `parent_generate_us`, …)
/// come **before** the per-child array so `json_f64`'s first-occurrence
/// search finds them and not a per-child field of the same spelling.
fn bringup_json(
    opts: &WireLoadOptions,
    parent_generate_us: u64,
    parent_partition_us: u64,
    snapshot_write_us: u64,
    children: &[ChildBringup],
) -> String {
    let mode = if !opts.processes {
        "threads"
    } else if opts.snapshot {
        "snapshot"
    } else {
        "generate"
    };
    let snapshot_loads = children.iter().filter(|c| c.mode == "snapshot").count();
    let generate_fallbacks = children.len() - snapshot_loads;
    let max_child_data_us = children.iter().map(|c| c.data_us).max().unwrap_or(0);
    let per_child: Vec<String> = children
        .iter()
        .map(|c| {
            format!(
                "{{\"shard\": {}, \"replica\": {}, \"mode\": \"{}\", \"data_us\": {}}}",
                c.shard, c.replica, c.mode, c.data_us
            )
        })
        .collect();
    format!(
        "\"bringup\": {{\"mode\": \"{mode}\", \
         \"parent_generate_us\": {parent_generate_us}, \
         \"parent_partition_us\": {parent_partition_us}, \
         \"snapshot_write_us\": {snapshot_write_us}, \
         \"snapshot_loads\": {snapshot_loads}, \
         \"generate_fallbacks\": {generate_fallbacks}, \
         \"max_child_data_us\": {max_child_data_us}, \
         \"children\": [{}]}}",
        per_child.join(", ")
    )
}
