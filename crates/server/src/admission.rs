//! Per-request admission control and per-tenant work budgets.
//!
//! The paper's endpoints protect themselves with per-query work budgets
//! ([`WorkBudget`](sapphire_sparql::WorkBudget)) and cost-estimate gates.
//! The serving tier lifts the same idea one level up: a bounded number of
//! requests run concurrently, a bounded number may wait, everything beyond
//! that is rejected with a typed error, and each tenant spends from a work
//! budget denominated in the same units the evaluator charges.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServerError;

/// One queued request's private wake-up slot.
///
/// Each waiter gets its *own* mutex + condvar: the releaser hands a freed
/// execution slot to exactly the queue head and notifies only that waiter,
/// so a release never wakes the whole queue (no thundering herd) and can
/// never wake the wrong waiter (strict FIFO).
#[derive(Debug)]
struct Waiter {
    state: Mutex<WaitState>,
    granted: Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitState {
    /// Still queued; owns no slot.
    Waiting,
    /// A releaser handed this waiter its slot (the in-flight count was
    /// *not* decremented — the slot moved directly from releaser to waiter).
    Granted,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            state: Mutex::new(WaitState::Waiting),
            granted: Condvar::new(),
        }
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    /// Queued waiters in arrival order. Invariant: the queue is non-empty
    /// only while every execution slot is taken — a freed slot is handed to
    /// the head before the releaser's in-flight count ever drops, and a new
    /// arrival takes a free slot only when the queue is empty.
    queue: VecDeque<Arc<Waiter>>,
}

/// Bounded-concurrency gate with a bounded, deadline-limited, **fair FIFO**
/// wait queue.
///
/// Queued requests are admitted strictly in arrival order: each waiter
/// blocks on its own condvar, and a released slot is handed directly to the
/// queue head under the controller lock (counted in
/// [`handoffs`](Self::handoffs)). New arrivals never barge past the queue,
/// and a waiter that gives up at its deadline removes itself under the same
/// lock — so a grant can never be stranded on a dead waiter, and no baton
/// re-notification dance is needed.
#[derive(Debug)]
pub struct AdmissionController {
    state: Mutex<AdmissionState>,
    max_in_flight: usize,
    max_queue_depth: usize,
    queue_wait: Duration,
    handoffs: AtomicU64,
}

impl AdmissionController {
    /// A gate admitting `max_in_flight` concurrent requests, queueing at most
    /// `max_queue_depth` more for up to `queue_wait` each.
    pub fn new(max_in_flight: usize, max_queue_depth: usize, queue_wait: Duration) -> Self {
        AdmissionController {
            state: Mutex::new(AdmissionState::default()),
            max_in_flight: max_in_flight.max(1),
            max_queue_depth,
            queue_wait,
            handoffs: AtomicU64::new(0),
        }
    }

    /// Acquire an execution slot, blocking in the queue if allowed.
    ///
    /// Returns [`ServerError::Overloaded`] when the queue is full and
    /// [`ServerError::QueueTimeout`] when a queued request's deadline passes
    /// — both without running any query work.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, ServerError> {
        let waiter = {
            let mut state = self.state.lock().unwrap();
            // A free slot goes to a new arrival only when nobody is queued
            // ahead of it; released slots are handed to the queue head, so
            // with waiters present every slot is accounted for and arrivals
            // always join the back.
            if state.queue.is_empty() && state.in_flight < self.max_in_flight {
                state.in_flight += 1;
                return Ok(AdmissionPermit { controller: self });
            }
            if state.queue.len() >= self.max_queue_depth {
                return Err(ServerError::Overloaded {
                    in_flight: state.in_flight,
                    queue_depth: state.queue.len(),
                });
            }
            let waiter = Arc::new(Waiter::new());
            state.queue.push_back(waiter.clone());
            waiter
        };

        let start = Instant::now();
        let deadline = start + self.queue_wait;
        let mut ws = waiter.state.lock().unwrap();
        while *ws == WaitState::Waiting {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            ws = waiter.granted.wait_timeout(ws, deadline - now).unwrap().0;
        }
        if *ws == WaitState::Granted {
            return Ok(AdmissionPermit { controller: self });
        }
        drop(ws);

        // Deadline passed. Remove ourselves from the queue under the
        // controller lock — but a releaser may have granted us between the
        // condvar timeout and taking that lock, so re-check first. Grants
        // only happen under the controller lock, so after this check the
        // outcome is settled.
        let mut state = self.state.lock().unwrap();
        if *waiter.state.lock().unwrap() == WaitState::Granted {
            return Ok(AdmissionPermit { controller: self });
        }
        if let Some(pos) = state.queue.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
            state.queue.remove(pos);
        }
        drop(state);
        Err(ServerError::QueueTimeout {
            waited_ms: start.elapsed().as_millis() as u64,
        })
    }

    /// Current `(in_flight, queued)` snapshot.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.in_flight, state.queue.len())
    }

    /// Slots handed directly from a finishing request to the queue head.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }
}

/// An admitted request's slot; releasing it hands the slot to the queue head
/// (in arrival order), or frees it if nobody is waiting.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().unwrap();
        if let Some(head) = state.queue.pop_front() {
            // Hand the slot straight to the oldest waiter: in-flight stays
            // unchanged (the slot changes owners, it never frees), and only
            // that waiter is notified. Waiters abandon the queue only under
            // the controller lock held here, so the head is live — either
            // blocked on its condvar, or about to re-check its state under
            // this same lock — and the grant cannot be stranded.
            *head.state.lock().unwrap() = WaitState::Granted;
            self.controller.handoffs.fetch_add(1, Ordering::Relaxed);
            head.granted.notify_one();
        } else {
            state.in_flight -= 1;
        }
    }
}

/// Per-tenant work accounting for one budget window.
///
/// Budgets use the evaluator's work units: a request is charged an estimate
/// derived from its shape before it runs (see
/// [`ServerConfig`](crate::ServerConfig)), and a tenant over budget receives
/// typed [`ServerError::QuotaExhausted`] rejections until
/// [`reset_window`](TenantBudgets::reset_window) is called.
///
/// Accounting is sharded by tenant hash so it never becomes a global
/// serialization point, and each shard is a *bounded* LRU
/// ([`sapphire_core::BoundedCache`]): only the most recently active tenants
/// are tracked, so the meter cannot grow without bound under tenant-name
/// churn. The bound cuts both ways: when a shard sees more distinct tenants
/// than its capacity within one window, even a *legitimate, active* tenant's
/// meter can be evicted and silently restart from zero, under-enforcing its
/// quota — it is not only adversarial name cycling that slips through.
/// Every evicted meter is therefore counted
/// ([`TenantBudgets::evicted_meters`], surfaced as
/// `ServerMetrics::tenant_meter_evictions`), so a deployment can see when
/// its tenant cardinality outgrows the meter and quota enforcement degrades.
#[derive(Debug)]
pub struct TenantBudgets {
    budget: Option<u64>,
    shards: Vec<Mutex<sapphire_core::BoundedCache<String, u64>>>,
    /// Evictions from windows already reset; live-window evictions are read
    /// off the shard caches themselves.
    past_evictions: AtomicU64,
    /// Serializes whole-meter walks ([`reset_window`](Self::reset_window) vs
    /// [`evicted_meters`](Self::evicted_meters)): a reset folding live shard
    /// evictions into `past_evictions` mid-walk would otherwise let one
    /// metrics read count the same evictions twice. `charge` never takes it.
    walk: Mutex<()>,
}

/// Shards of the tenant meter.
const TENANT_SHARDS: usize = 16;
/// Most-recently-active tenants tracked per shard.
const TRACKED_TENANTS_PER_SHARD: usize = 4096;

impl TenantBudgets {
    /// `None` disables quota enforcement (the warehouse posture).
    pub fn new(budget: Option<u64>) -> Self {
        TenantBudgets {
            budget,
            shards: (0..TENANT_SHARDS)
                .map(|_| Mutex::new(sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD)))
                .collect(),
            past_evictions: AtomicU64::new(0),
            walk: Mutex::new(()),
        }
    }

    fn shard(&self, tenant: &str) -> &Mutex<sapphire_core::BoundedCache<String, u64>> {
        &self.shards[crate::response_cache::shard_index(tenant, self.shards.len())]
    }

    /// Charge `work` units to `tenant`, rejecting if it would exceed the
    /// window budget. Rejected requests are not charged; usage is metered
    /// even when no budget is enforced (observability without enforcement).
    pub fn charge(&self, tenant: &str, work: u64) -> Result<(), ServerError> {
        let mut meter = self.shard(tenant).lock().unwrap();
        let would_use = meter.get(tenant).copied().unwrap_or(0).saturating_add(work);
        if let Some(budget) = self.budget {
            if would_use > budget {
                return Err(ServerError::QuotaExhausted {
                    tenant: tenant.to_string(),
                    used: would_use,
                    budget,
                });
            }
        }
        meter.insert(tenant.to_string(), would_use);
        Ok(())
    }

    /// Work charged to `tenant` so far in this window.
    pub fn used(&self, tenant: &str) -> u64 {
        self.shard(tenant)
            .lock()
            .unwrap()
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Meters evicted to keep the shards bounded, across all windows. Each
    /// eviction forgot some tenant's in-window usage — a nonzero value means
    /// quotas may have been under-enforced, and a growing one means tenant
    /// cardinality exceeds `TRACKED_TENANTS_PER_SHARD` per shard.
    pub fn evicted_meters(&self) -> u64 {
        let _walk = self.walk.lock().unwrap();
        let live: u64 = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().stats().evictions)
            .sum();
        self.past_evictions.load(Ordering::Relaxed) + live
    }

    /// Start a fresh accounting window for every tenant.
    pub fn reset_window(&self) {
        let _walk = self.walk.lock().unwrap();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            self.past_evictions
                .fetch_add(shard.stats().evictions, Ordering::Relaxed);
            *shard = sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_limit_then_queues_then_rejects() {
        let gate = AdmissionController::new(1, 0, Duration::from_millis(10));
        let p1 = gate.admit().expect("first request admitted");
        let err = gate.admit().unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                in_flight: 1,
                queue_depth: 0
            }
        ));
        drop(p1);
        let _p2 = gate.admit().expect("slot freed");
    }

    #[test]
    fn queued_request_times_out_typed() {
        let gate = AdmissionController::new(1, 4, Duration::from_millis(20));
        let _p = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert!(
            matches!(err, ServerError::QueueTimeout { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = Arc::new(AdmissionController::new(1, 4, Duration::from_secs(5)));
        let served = Arc::new(AtomicUsize::new(0));
        let permit = gate.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let gate = gate.clone();
            let served = served.clone();
            handles.push(std::thread::spawn(move || {
                let _p = gate.admit().expect("queued then admitted");
                served.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Give the threads time to enter the queue, then release the slot.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            served.load(Ordering::SeqCst),
            0,
            "all three should be waiting"
        );
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(served.load(Ordering::SeqCst), 3);
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn new_arrivals_do_not_barge_past_queued_waiters() {
        let gate = Arc::new(AdmissionController::new(1, 4, Duration::from_secs(5)));
        let order = Arc::new(Mutex::new(Vec::new()));
        let p1 = gate.admit().unwrap();
        let waiter = {
            let gate = gate.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _p = gate.admit().expect("waiter admitted");
                order.lock().unwrap().push("waiter");
                // Hold the slot long enough that the main thread's admit()
                // call observably runs while the waiter owns it.
                std::thread::sleep(Duration::from_millis(50));
            })
        };
        while gate.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Free the slot with the waiter queued, then immediately contend for
        // it: the arrival must queue behind the waiter, never steal the slot.
        drop(p1);
        let _p2 = gate
            .admit()
            .expect("queued behind the waiter, then admitted");
        order.lock().unwrap().push("arrival");
        waiter.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["waiter", "arrival"]);
    }

    #[test]
    fn waiters_admitted_in_strict_arrival_order_under_sustained_load() {
        // One execution slot, a deep queue, and a stream of arrivals that
        // keeps joining while earlier waiters drain: every admission must
        // happen in exact arrival order — targeted head-of-queue handoff,
        // not condvar scramble.
        const WAITERS: usize = 12;
        let gate = Arc::new(AdmissionController::new(
            1,
            WAITERS,
            Duration::from_secs(10),
        ));
        let holder = gate.admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..WAITERS {
            let gate2 = gate.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let permit = gate2.admit().expect("queued then admitted");
                order2.lock().unwrap().push(i);
                drop(permit);
            }));
            // Arrival order is only defined once the waiter is actually
            // queued; gate each spawn on the queue length so the intended
            // order is the real order.
            while gate.load().1 != i + 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Sustained drain: each admitted waiter releases immediately, so the
        // slot hops head-to-head through the whole queue in one burst.
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(*order, (0..WAITERS).collect::<Vec<_>>());
        assert_eq!(gate.handoffs(), WAITERS as u64, "every admission a handoff");
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn tenant_budget_rejects_after_exhaustion() {
        let budgets = TenantBudgets::new(Some(10));
        assert!(budgets.charge("alice", 6).is_ok());
        assert!(budgets.charge("alice", 4).is_ok());
        let err = budgets.charge("alice", 1).unwrap_err();
        assert!(matches!(
            err,
            ServerError::QuotaExhausted {
                used: 11,
                budget: 10,
                ..
            }
        ));
        assert_eq!(budgets.used("alice"), 10, "rejected request not charged");
        // Other tenants are unaffected; windows reset cleanly.
        assert!(budgets.charge("bob", 10).is_ok());
        budgets.reset_window();
        assert!(budgets.charge("alice", 10).is_ok());
    }

    #[test]
    fn tenant_meter_is_bounded_under_name_churn() {
        let budgets = TenantBudgets::new(None);
        for i in 0..200_000 {
            budgets.charge(&format!("drive-by-{i}"), 1).unwrap();
        }
        // Capacity is TENANT_SHARDS * TRACKED_TENANTS_PER_SHARD (65,536);
        // early drive-by tenants must have been evicted, recent ones kept.
        assert_eq!(budgets.used("drive-by-0"), 0, "idle tenants evicted");
        assert_eq!(budgets.used("drive-by-199999"), 1, "active tenants tracked");
        // Under-enforcement is observable: every forgotten meter is counted,
        // and the count survives window resets.
        let evicted = budgets.evicted_meters();
        assert!(evicted > 0, "evictions surface in the metric");
        budgets.reset_window();
        assert_eq!(budgets.evicted_meters(), evicted, "count is cumulative");
    }

    #[test]
    fn unlimited_budget_never_rejects() {
        let budgets = TenantBudgets::new(None);
        for _ in 0..1000 {
            budgets.charge("anyone", u64::MAX / 2).unwrap();
        }
    }
}
