//! The paper's two running examples, executed exactly as the figures show.

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_datagen::{generate, DatasetConfig};

fn pum() -> PredictiveUserModel {
    let graph = generate(DatasetConfig::tiny(42));
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    PredictiveUserModel::initialize(
        vec![ep],
        Lexicon::dbpedia_default(),
        SapphireConfig {
            processes: 2,
            ..SapphireConfig::default()
        },
        InitMode::Federated,
    )
    .expect("init")
}

/// Figures 2 and 4: "Kennedys" → no answers → "did you mean Kennedy?" →
/// accept → filter the answer table by "john".
#[test]
fn figure_2_and_4_kennedys_walkthrough() {
    let pum = pum();
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?person", "surname", "Kennedys"));
    let result = session.run().expect("run");
    assert!(result.executed);
    assert_eq!(result.answers.total_rows(), 0, "no Kennedys (plural)");

    let alt = result
        .suggestions
        .alternatives
        .iter()
        .find(|a| a.replacement == "Kennedy")
        .expect("Figure 2 suggestion");
    assert!(alt.describe().contains("Did you mean"));
    assert!(
        alt.answer_count() >= 4,
        "anchor Kennedys: JFK, Jackie, RFK, Kathleen"
    );

    let mut table = session.apply_alternative(alt);
    assert_eq!(session.triples[0].object, "Kennedy", "query box updated");

    // Figure 4: keyword filter + ordering on the answer table.
    table.set_filter("john");
    table.sort_by("person", false);
    let filtered = table.view();
    assert!(!filtered.is_empty());
    assert!(filtered.rows.iter().all(|r| r[0]
        .as_ref()
        .unwrap()
        .lexical()
        .to_lowercase()
        .contains("john")));
}

/// Figures 6 and 7: the structurally naive Kerouac/Viking Press query is
/// relaxed into the author/publisher paths, finding both Viking books and
/// excluding the Grove Press one.
#[test]
fn figure_6_and_7_kerouac_relaxation() {
    let pum = pum();
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?book", "writer", "Jack Kerouac"));
    session.set_row(1, TripleInput::new("?book", "publisher", "Viking Press"));
    let result = session.run().expect("run");
    assert_eq!(
        result.answers.total_rows(),
        0,
        "naive structure finds nothing"
    );

    let relaxation = result
        .suggestions
        .relaxations
        .first()
        .expect("Algorithm 3 fires");
    assert!(relaxation.relaxed.complete, "all seed groups connected");
    assert!(
        relaxation.relaxed.queries_used <= 100,
        "within the query budget"
    );

    // The suggested query uses the data's real connecting predicates.
    let predicates: Vec<String> = relaxation
        .relaxed
        .tree
        .iter()
        .map(|(_, p, _)| p.lexical().to_string())
        .collect();
    assert!(
        predicates.iter().any(|p| p.ends_with("author")),
        "{predicates:?}"
    );
    assert!(predicates.iter().any(|p| p.ends_with("publisher")));
    assert!(
        !predicates.iter().any(|p| p.ends_with("#type")),
        "no vacuous paths through class vertices"
    );

    // Both Viking Press books, and only those, in the prefetched answers.
    let table = session.apply_relaxation(relaxation);
    let all: Vec<String> = table
        .solutions()
        .rows
        .iter()
        .flatten()
        .flatten()
        .map(|t| t.lexical().to_string())
        .collect();
    assert!(all.iter().any(|v| v.ends_with("On_The_Road")));
    assert!(all.iter().any(|v| v.ends_with("Door_Wide_Open")));
    assert!(
        !all.iter().any(|v| v.ends_with("Doctor_Sax")),
        "Grove Press book excluded"
    );
}

/// The paper's introduction example, as a direct SPARQL query: counting
/// scientists whose alma mater has an affiliation. Our synthetic data has no
/// Ivy League, so the analogue counts scientists by alma mater existence.
#[test]
fn intro_style_aggregate_query() {
    let pum = pum();
    let out = pum
        .run_str(
            "SELECT DISTINCT count (?uri) WHERE { ?uri rdf:type dbo:Scientist. ?uri dbo:almaMater ?university. }",
        )
        .expect("parses — including the paper's bare lowercase count()");
    assert!(out.executed);
    let n: i64 = out.answers.sole_value().unwrap().lexical().parse().unwrap();
    assert!(n > 0, "some scientists have alma maters");
}
