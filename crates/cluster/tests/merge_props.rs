//! Property-style tests (offline `proptest` shim) for the cluster merges.
//!
//! The contract under test is the one the whole cluster design leans on:
//! the merge result is a pure function of the *multiset* of shard answers —
//! how the corpus is split across 1, 2, or 4 shards, and the order replica
//! replies arrive in, must never change a byte of the output. The shard
//! split is simulated by dealing one generated answer list into n lists by
//! a generated assignment, and reply-order shuffling by rotating and
//! reversing those lists.

use proptest::prelude::*;

use sapphire_cluster::merge::{count_rows, merge_completions, merge_solutions};
use sapphire_core::qcm::Completion;
use sapphire_core::MatchSource;
use sapphire_rdf::Term;
use sapphire_sparql::{parse_select, Solutions};

/// Deal `items` into `n` lists by the assignment vector (a simulated
/// subject-hash split).
fn deal<T: Clone>(items: &[T], assignment: &[usize], n: usize) -> Vec<Vec<T>> {
    let mut lists: Vec<Vec<T>> = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        lists[assignment[i % assignment.len()] % n].push(item.clone());
    }
    lists
}

/// A deterministic "shuffle": rotate the list order and reverse each list —
/// enough to catch any dependence on arrival order without a RNG.
fn disorder<T>(mut lists: Vec<Vec<T>>, rot: usize) -> Vec<Vec<T>> {
    if !lists.is_empty() {
        let shift = rot % lists.len();
        lists.rotate_left(shift);
    }
    for list in &mut lists {
        list.reverse();
    }
    lists
}

fn completion(text: &str, pred: bool, tree: bool) -> Completion {
    Completion {
        predicate_iri: pred.then(|| format!("http://x/{text}")),
        text: text.to_string(),
        source: if tree {
            MatchSource::SuffixTree
        } else {
            MatchSource::ResidualBins
        },
    }
}

proptest! {
    /// Completions: merging the whole corpus as one list equals merging any
    /// 2-way or 4-way split of it, in any reply order.
    #[test]
    fn completion_merge_is_shard_count_invariant(
        texts in proptest::collection::vec("[a-e]{1,6}", 1..24),
        flags in proptest::collection::vec((0usize..2, 0usize..2), 8..24),
        assignment in proptest::collection::vec(0usize..4, 8..9),
        rot in 0usize..4,
        k in 1usize..12,
    ) {
        let items: Vec<Completion> = texts
            .iter()
            .zip(flags.iter().cycle())
            .map(|(t, &(p, s))| completion(t, p == 1, s == 1))
            .collect();
        let oracle = merge_completions(vec![items.clone()], k);
        for shards in [1usize, 2, 4] {
            let split = deal(&items, &assignment, shards);
            let merged = merge_completions(disorder(split, rot), k);
            prop_assert_eq!(&merged, &oracle);
        }
    }

    /// Solutions: the merged answer (dedup under DISTINCT, ORDER BY with
    /// total-order tie-break, slice at the edge) is split- and
    /// order-invariant.
    #[test]
    fn solutions_merge_is_shard_count_invariant(
        values in proptest::collection::vec(("[a-c]{1,4}", 0usize..30), 1..24),
        assignment in proptest::collection::vec(0usize..4, 8..9),
        rot in 0usize..4,
        distinct in 0usize..2,
        limit in 0usize..10,
    ) {
        let query_text = if distinct == 1 {
            format!("SELECT DISTINCT ?s ?o WHERE {{ ?s <http://x/p> ?o }} ORDER BY ?o LIMIT {}", limit.max(1))
        } else {
            format!("SELECT ?s ?o WHERE {{ ?s <http://x/p> ?o }} ORDER BY ?o LIMIT {}", limit.max(1))
        };
        let query = parse_select(&query_text).unwrap();
        let rows: Vec<Vec<Option<Term>>> = values
            .iter()
            .map(|(s, n)| vec![
                Some(Term::iri(format!("http://x/{s}"))),
                Some(Term::Literal(sapphire_rdf::Literal::integer(*n as i64))),
            ])
            .collect();
        let whole = Solutions { vars: vec!["s".into(), "o".into()], rows: rows.clone() };
        let oracle = merge_solutions(&query, vec![whole]);
        for shards in [1usize, 2, 4] {
            let split_rows = deal(&rows, &assignment, shards);
            let lists: Vec<Solutions> = disorder(split_rows, rot)
                .into_iter()
                .map(|rows| Solutions { vars: vec!["s".into(), "o".into()], rows })
                .collect();
            let merged = merge_solutions(&query, lists);
            prop_assert_eq!(&merged, &oracle);
        }
    }

    /// The edge recount of the session COUNT shape equals counting the
    /// undivided corpus, for both DISTINCT and plain counts.
    #[test]
    fn count_merge_is_shard_count_invariant(
        values in proptest::collection::vec("[a-c]{1,3}", 1..20),
        assignment in proptest::collection::vec(0usize..4, 8..9),
        distinct in 0usize..2,
    ) {
        let rows: Vec<Vec<Option<Term>>> = values
            .iter()
            .map(|v| vec![Some(Term::iri(format!("http://x/{v}")))])
            .collect();
        let var = Some("s".to_string());
        let whole = Solutions { vars: vec!["s".into()], rows: rows.clone() };
        let oracle = count_rows(&whole, &var, distinct == 1, "count");
        for shards in [1usize, 2, 4] {
            let lists = deal(&rows, &assignment, shards);
            let merged_rows = Solutions {
                vars: vec!["s".into()],
                rows: lists.into_iter().flatten().collect(),
            };
            let merged = count_rows(&merged_rows, &var, distinct == 1, "count");
            prop_assert_eq!(&merged, &oracle);
        }
    }
}
