//! The Figure 2 / Figure 4 walkthrough: the user searches for people with the
//! surname "Kennedys" (misspelled, plural), gets no answers, accepts the
//! QSM's "did you mean Kennedy?" suggestion, then filters the answer table
//! with the keyword "john" and sorts it — exactly the interaction sequence
//! the paper's UI figures show.
//!
//! Run with: `cargo run -p sapphire-bench --example kennedy_suggestions`

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_datagen::{generate, DatasetConfig};

fn main() {
    let graph = generate(DatasetConfig::small(42));
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = PredictiveUserModel::initialize(
        vec![endpoint],
        Lexicon::dbpedia_default(),
        SapphireConfig::default(),
        InitMode::Federated,
    )
    .expect("initialization");

    // The user wants people with surname "Kennedys" (their typo).
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?person", "surname", "Kennedys"));
    let result = session.run().expect("run");
    println!("query: ?person —surname→ \"Kennedys\"");
    println!(
        "answers: {} (as in Figure 2: none)",
        result.answers.total_rows()
    );

    // The QSM suggests changing one term at a time (§4).
    let alt = result
        .suggestions
        .alternatives
        .iter()
        .find(|a| a.replacement == "Kennedy")
        .expect("the Figure 2 suggestion");
    println!("QSM: {}", alt.describe());

    // Accepting is instantaneous — answers were prefetched.
    let mut table = session.apply_alternative(alt);
    println!(
        "\naccepted; query box now {:?}; {} answers",
        session.triples[0].object,
        table.total_rows()
    );

    // Figure 4: filter by keyword "john", sort by the person column.
    table.set_filter("john");
    table.sort_by("person", false);
    let view = table.view();
    println!(
        "\nfiltered by \"john\", sorted by ?person ({} rows):",
        view.len()
    );
    print!("{}", view.to_table());

    // Drag a value back into the query for a follow-up (§4).
    if let Some(value) = table.drag_value(0, "person") {
        println!("dragging {value} into a new query box…");
    }
}
