//! Per-request admission control and per-tenant work budgets.
//!
//! The paper's endpoints protect themselves with per-query work budgets
//! ([`WorkBudget`](sapphire_sparql::WorkBudget)) and cost-estimate gates.
//! The serving tier lifts the same idea one level up: a bounded number of
//! requests run concurrently, a bounded number may wait, everything beyond
//! that is rejected with a typed error, and each tenant spends from a work
//! budget denominated in the same units the evaluator charges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServerError;

#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    queued: usize,
}

/// Bounded-concurrency gate with a bounded, deadline-limited wait queue.
#[derive(Debug)]
pub struct AdmissionController {
    state: Mutex<AdmissionState>,
    slot_freed: Condvar,
    max_in_flight: usize,
    max_queue_depth: usize,
    queue_wait: Duration,
}

impl AdmissionController {
    /// A gate admitting `max_in_flight` concurrent requests, queueing at most
    /// `max_queue_depth` more for up to `queue_wait` each.
    pub fn new(max_in_flight: usize, max_queue_depth: usize, queue_wait: Duration) -> Self {
        AdmissionController {
            state: Mutex::new(AdmissionState::default()),
            slot_freed: Condvar::new(),
            max_in_flight: max_in_flight.max(1),
            max_queue_depth,
            queue_wait,
        }
    }

    /// Acquire an execution slot, blocking in the queue if allowed.
    ///
    /// Returns [`ServerError::Overloaded`] when the queue is full and
    /// [`ServerError::QueueTimeout`] when a queued request's deadline passes
    /// — both without running any query work.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, ServerError> {
        let mut state = self.state.lock().unwrap();
        // A free slot goes to a new arrival only when nobody is queued ahead
        // of it; otherwise a sustained arrival stream would race Drop's
        // notify_one and starve queued requests into QueueTimeout even though
        // slots keep freeing. Freed slots are handed to waiters (FIFO-ish —
        // condvar wake order is the scheduler's) and arrivals join the back.
        if state.queued == 0 && state.in_flight < self.max_in_flight {
            state.in_flight += 1;
            return Ok(AdmissionPermit { controller: self });
        }
        if state.queued >= self.max_queue_depth {
            return Err(ServerError::Overloaded {
                in_flight: state.in_flight,
                queue_depth: state.queued,
            });
        }
        state.queued += 1;
        let start = Instant::now();
        let deadline = start + self.queue_wait;
        loop {
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                // If a slot freed while this waiter was giving up, its
                // notification must not die with it — wake another waiter.
                let pass_baton = state.in_flight < self.max_in_flight && state.queued > 0;
                drop(state);
                if pass_baton {
                    self.slot_freed.notify_one();
                }
                return Err(ServerError::QueueTimeout {
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            let (guard, wait) = self.slot_freed.wait_timeout(state, deadline - now).unwrap();
            state = guard;
            if state.in_flight < self.max_in_flight {
                state.queued -= 1;
                state.in_flight += 1;
                return Ok(AdmissionPermit { controller: self });
            }
            if wait.timed_out() {
                state.queued -= 1;
                return Err(ServerError::QueueTimeout {
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
        }
    }

    /// Current `(in_flight, queued)` snapshot.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.in_flight, state.queued)
    }
}

/// An admitted request's slot; releasing it wakes one queued request.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().unwrap();
        state.in_flight -= 1;
        drop(state);
        // notify_one cannot strand the slot: wait_timeout releases the state
        // mutex and blocks atomically, and this decrement happens under that
        // mutex — so the notify either reaches a blocked waiter, or an awake
        // waiter (which always takes any free slot before re-waiting or
        // giving up, and passes the baton if it gives up) already claimed it.
        self.controller.slot_freed.notify_one();
    }
}

/// Per-tenant work accounting for one budget window.
///
/// Budgets use the evaluator's work units: a request is charged an estimate
/// derived from its shape before it runs (see
/// [`ServerConfig`](crate::ServerConfig)), and a tenant over budget receives
/// typed [`ServerError::QuotaExhausted`] rejections until
/// [`reset_window`](TenantBudgets::reset_window) is called.
///
/// Accounting is sharded by tenant hash so it never becomes a global
/// serialization point, and each shard is a *bounded* LRU
/// ([`sapphire_core::BoundedCache`]): only the most recently active tenants
/// are tracked, so the meter cannot grow without bound under tenant-name
/// churn. The bound cuts both ways: when a shard sees more distinct tenants
/// than its capacity within one window, even a *legitimate, active* tenant's
/// meter can be evicted and silently restart from zero, under-enforcing its
/// quota — it is not only adversarial name cycling that slips through.
/// Every evicted meter is therefore counted
/// ([`TenantBudgets::evicted_meters`], surfaced as
/// `ServerMetrics::tenant_meter_evictions`), so a deployment can see when
/// its tenant cardinality outgrows the meter and quota enforcement degrades.
#[derive(Debug)]
pub struct TenantBudgets {
    budget: Option<u64>,
    shards: Vec<Mutex<sapphire_core::BoundedCache<String, u64>>>,
    /// Evictions from windows already reset; live-window evictions are read
    /// off the shard caches themselves.
    past_evictions: AtomicU64,
    /// Serializes whole-meter walks ([`reset_window`](Self::reset_window) vs
    /// [`evicted_meters`](Self::evicted_meters)): a reset folding live shard
    /// evictions into `past_evictions` mid-walk would otherwise let one
    /// metrics read count the same evictions twice. `charge` never takes it.
    walk: Mutex<()>,
}

/// Shards of the tenant meter.
const TENANT_SHARDS: usize = 16;
/// Most-recently-active tenants tracked per shard.
const TRACKED_TENANTS_PER_SHARD: usize = 4096;

impl TenantBudgets {
    /// `None` disables quota enforcement (the warehouse posture).
    pub fn new(budget: Option<u64>) -> Self {
        TenantBudgets {
            budget,
            shards: (0..TENANT_SHARDS)
                .map(|_| Mutex::new(sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD)))
                .collect(),
            past_evictions: AtomicU64::new(0),
            walk: Mutex::new(()),
        }
    }

    fn shard(&self, tenant: &str) -> &Mutex<sapphire_core::BoundedCache<String, u64>> {
        &self.shards[crate::response_cache::shard_index(tenant, self.shards.len())]
    }

    /// Charge `work` units to `tenant`, rejecting if it would exceed the
    /// window budget. Rejected requests are not charged; usage is metered
    /// even when no budget is enforced (observability without enforcement).
    pub fn charge(&self, tenant: &str, work: u64) -> Result<(), ServerError> {
        let mut meter = self.shard(tenant).lock().unwrap();
        let would_use = meter.get(tenant).copied().unwrap_or(0).saturating_add(work);
        if let Some(budget) = self.budget {
            if would_use > budget {
                return Err(ServerError::QuotaExhausted {
                    tenant: tenant.to_string(),
                    used: would_use,
                    budget,
                });
            }
        }
        meter.insert(tenant.to_string(), would_use);
        Ok(())
    }

    /// Work charged to `tenant` so far in this window.
    pub fn used(&self, tenant: &str) -> u64 {
        self.shard(tenant)
            .lock()
            .unwrap()
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Meters evicted to keep the shards bounded, across all windows. Each
    /// eviction forgot some tenant's in-window usage — a nonzero value means
    /// quotas may have been under-enforced, and a growing one means tenant
    /// cardinality exceeds [`TRACKED_TENANTS_PER_SHARD`] per shard.
    pub fn evicted_meters(&self) -> u64 {
        let _walk = self.walk.lock().unwrap();
        let live: u64 = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().stats().evictions)
            .sum();
        self.past_evictions.load(Ordering::Relaxed) + live
    }

    /// Start a fresh accounting window for every tenant.
    pub fn reset_window(&self) {
        let _walk = self.walk.lock().unwrap();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            self.past_evictions
                .fetch_add(shard.stats().evictions, Ordering::Relaxed);
            *shard = sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_limit_then_queues_then_rejects() {
        let gate = AdmissionController::new(1, 0, Duration::from_millis(10));
        let p1 = gate.admit().expect("first request admitted");
        let err = gate.admit().unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                in_flight: 1,
                queue_depth: 0
            }
        ));
        drop(p1);
        let _p2 = gate.admit().expect("slot freed");
    }

    #[test]
    fn queued_request_times_out_typed() {
        let gate = AdmissionController::new(1, 4, Duration::from_millis(20));
        let _p = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert!(
            matches!(err, ServerError::QueueTimeout { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = Arc::new(AdmissionController::new(1, 4, Duration::from_secs(5)));
        let served = Arc::new(AtomicUsize::new(0));
        let permit = gate.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let gate = gate.clone();
            let served = served.clone();
            handles.push(std::thread::spawn(move || {
                let _p = gate.admit().expect("queued then admitted");
                served.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Give the threads time to enter the queue, then release the slot.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            served.load(Ordering::SeqCst),
            0,
            "all three should be waiting"
        );
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(served.load(Ordering::SeqCst), 3);
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn new_arrivals_do_not_barge_past_queued_waiters() {
        let gate = Arc::new(AdmissionController::new(1, 4, Duration::from_secs(5)));
        let order = Arc::new(Mutex::new(Vec::new()));
        let p1 = gate.admit().unwrap();
        let waiter = {
            let gate = gate.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _p = gate.admit().expect("waiter admitted");
                order.lock().unwrap().push("waiter");
                // Hold the slot long enough that the main thread's admit()
                // call observably runs while the waiter owns it.
                std::thread::sleep(Duration::from_millis(50));
            })
        };
        while gate.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Free the slot with the waiter queued, then immediately contend for
        // it: the arrival must queue behind the waiter, never steal the slot.
        drop(p1);
        let _p2 = gate
            .admit()
            .expect("queued behind the waiter, then admitted");
        order.lock().unwrap().push("arrival");
        waiter.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["waiter", "arrival"]);
    }

    #[test]
    fn tenant_budget_rejects_after_exhaustion() {
        let budgets = TenantBudgets::new(Some(10));
        assert!(budgets.charge("alice", 6).is_ok());
        assert!(budgets.charge("alice", 4).is_ok());
        let err = budgets.charge("alice", 1).unwrap_err();
        assert!(matches!(
            err,
            ServerError::QuotaExhausted {
                used: 11,
                budget: 10,
                ..
            }
        ));
        assert_eq!(budgets.used("alice"), 10, "rejected request not charged");
        // Other tenants are unaffected; windows reset cleanly.
        assert!(budgets.charge("bob", 10).is_ok());
        budgets.reset_window();
        assert!(budgets.charge("alice", 10).is_ok());
    }

    #[test]
    fn tenant_meter_is_bounded_under_name_churn() {
        let budgets = TenantBudgets::new(None);
        for i in 0..200_000 {
            budgets.charge(&format!("drive-by-{i}"), 1).unwrap();
        }
        // Capacity is TENANT_SHARDS * TRACKED_TENANTS_PER_SHARD (65,536);
        // early drive-by tenants must have been evicted, recent ones kept.
        assert_eq!(budgets.used("drive-by-0"), 0, "idle tenants evicted");
        assert_eq!(budgets.used("drive-by-199999"), 1, "active tenants tracked");
        // Under-enforcement is observable: every forgotten meter is counted,
        // and the count survives window resets.
        let evicted = budgets.evicted_meters();
        assert!(evicted > 0, "evictions surface in the metric");
        budgets.reset_window();
        assert_eq!(budgets.evicted_meters(), evicted, "count is cumulative");
    }

    #[test]
    fn unlimited_budget_never_rejects() {
        let budgets = TenantBudgets::new(None);
        for _ in 0..1000 {
            budgets.charge("anyone", u64::MAX / 2).unwrap();
        }
    }
}
