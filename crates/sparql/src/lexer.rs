//! Tokenizer for the SPARQL subset.

use std::fmt;

use sapphire_rdf::term::unescape_literal;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (uppercased), e.g. `SELECT`.
    Keyword(String),
    /// A variable name without the leading `?`/`$`.
    Var(String),
    /// `<...>` IRI reference (without brackets).
    Iri(String),
    /// `prefix:local` name — kept split for late expansion.
    PName(String, String),
    /// String literal body (unescaped) with optional `@lang` or `^^`-datatype
    /// marker to follow (the parser consumes those separately).
    Str(String),
    /// Language tag without `@`.
    LangTag(String),
    /// `^^` datatype marker.
    DtMarker,
    /// Integer or decimal numeric literal, kept lexical.
    Number(String),
    /// The keyword-like `a` predicate shorthand.
    A,
    /// `*`
    Star,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (comparison — IRIs are lexed separately)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Iri(i) => write!(f, "<{i}>"),
            Token::PName(p, l) => write!(f, "{p}:{l}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LangTag(l) => write!(f, "@{l}"),
            Token::DtMarker => write!(f, "^^"),
            Token::Number(n) => write!(f, "{n}"),
            Token::A => write!(f, "a"),
            Token::Star => write!(f, "*"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// A lexer error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "WHERE",
    "FILTER",
    "PREFIX",
    "LIMIT",
    "OFFSET",
    "ORDER",
    "GROUP",
    "BY",
    "ASC",
    "DESC",
    "ASK",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "AS",
    "ISLITERAL",
    "ISIRI",
    "ISURI",
    "LANG",
    "STR",
    "STRLEN",
    "CONTAINS",
    "STRSTARTS",
    "REGEX",
    "LCASE",
    "UCASE",
    "YEAR",
    "BOUND",
    "TRUE",
    "FALSE",
];

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "lone '&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "lone '|'".into(),
                    });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                // Either an IRI `<...>` (no whitespace before `>`) or `<`/`<=`.
                if let Some(end) = scan_iri(bytes, i) {
                    let iri = &input[i + 1..end];
                    tokens.push(Token::Iri(iri.to_string()));
                    i = end + 1;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '^' => {
                if bytes.get(i + 1) == Some(&b'^') {
                    tokens.push(Token::DtMarker);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "lone '^'".into(),
                    });
                }
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'-')
                {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "empty language tag".into(),
                    });
                }
                tokens.push(Token::LangTag(input[start..j].to_ascii_lowercase()));
                i = j;
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "empty variable name".into(),
                    });
                }
                tokens.push(Token::Var(input[start..j].to_string()));
                i = j;
            }
            '"' | '\'' => {
                let quote = bytes[i];
                let start = i + 1;
                let mut j = start;
                let mut escaped = false;
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            offset: i,
                            message: "unterminated string".into(),
                        });
                    }
                    if escaped {
                        escaped = false;
                    } else if bytes[j] == b'\\' {
                        escaped = true;
                    } else if bytes[j] == quote {
                        break;
                    }
                    j += 1;
                }
                let body = unescape_literal(&input[start..j])
                    .map_err(|message| LexError { offset: i, message })?;
                tokens.push(Token::Str(body));
                i = j + 1;
            }
            '.' => {
                // Distinguish statement-terminating '.' from a leading decimal
                // point (we require digits before the point, so always Dot).
                tokens.push(Token::Dot);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                let mut j = i;
                if bytes[j] == b'-' || bytes[j] == b'+' {
                    j += 1;
                }
                let digits_start = j;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j == digits_start {
                    return Err(LexError {
                        offset: i,
                        message: format!("stray '{c}'"),
                    });
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                // Exponent part for doubles like 8.0E7.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'-' || bytes[k] == b'+') {
                        k += 1;
                    }
                    let exp_start = k;
                    while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        k += 1;
                    }
                    if k > exp_start {
                        j = k;
                    }
                }
                tokens.push(Token::Number(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'-')
                {
                    j += 1;
                }
                let word = &input[start..j];
                // Prefixed name?
                if j < bytes.len() && bytes[j] == b':' {
                    let local_start = j + 1;
                    let mut k = local_start;
                    while k < bytes.len()
                        && ((bytes[k] as char).is_ascii_alphanumeric()
                            || bytes[k] == b'_'
                            || bytes[k] == b'-'
                            || (bytes[k] == b'.'
                                && k + 1 < bytes.len()
                                && ((bytes[k + 1] as char).is_ascii_alphanumeric()
                                    || bytes[k + 1] == b'_')))
                    {
                        k += 1;
                    }
                    tokens.push(Token::PName(
                        word.to_string(),
                        input[local_start..k].to_string(),
                    ));
                    i = k;
                    continue;
                }
                let upper = word.to_ascii_uppercase();
                if word == "a" {
                    tokens.push(Token::A);
                } else if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    return Err(LexError {
                        offset: start,
                        message: format!(
                            "unexpected bare word: {word:?} (did you mean a prefixed name?)"
                        ),
                    });
                }
                i = j;
            }
            ':' => {
                // Default-prefix name `:local`.
                let local_start = i + 1;
                let mut k = local_start;
                while k < bytes.len()
                    && ((bytes[k] as char).is_ascii_alphanumeric()
                        || bytes[k] == b'_'
                        || bytes[k] == b'-')
                {
                    k += 1;
                }
                tokens.push(Token::PName(
                    String::new(),
                    input[local_start..k].to_string(),
                ));
                i = k;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

/// If `bytes[start] == '<'` begins a plausible IRI (a `>` appears before any
/// whitespace, quote, or second `<`), return the index of the closing `>`.
fn scan_iri(bytes: &[u8], start: usize) -> Option<usize> {
    debug_assert_eq!(bytes[start], b'<');
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'>' => return Some(j),
            b' ' | b'\t' | b'\r' | b'\n' | b'"' | b'<' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT DISTINCT ?uri WHERE { ?uri a dbo:Scientist . }").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("DISTINCT".into()));
        assert_eq!(toks[2], Token::Var("uri".into()));
        assert!(toks.contains(&Token::A));
        assert!(toks.contains(&Token::PName("dbo".into(), "Scientist".into())));
    }

    #[test]
    fn iri_vs_less_than() {
        let toks = tokenize("<http://x/p> < 5 <= ?v").unwrap();
        assert_eq!(toks[0], Token::Iri("http://x/p".into()));
        assert_eq!(toks[1], Token::Lt);
        assert_eq!(toks[2], Token::Number("5".into()));
        assert_eq!(toks[3], Token::Le);
    }

    #[test]
    fn string_with_lang_and_datatype() {
        let toks = tokenize(r#""Kennedy"@en "1945"^^xsd:integer"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("Kennedy".into()),
                Token::LangTag("en".into()),
                Token::Str("1945".into()),
                Token::DtMarker,
                Token::PName("xsd".into(), "integer".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_scientific() {
        let toks = tokenize("80000000 8.0E7 -3.5 +2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("80000000".into()),
                Token::Number("8.0E7".into()),
                Token::Number("-3.5".into()),
                Token::Number("+2".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("&& || ! != = >= >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::AndAnd,
                Token::OrOr,
                Token::Bang,
                Token::Ne,
                Token::Eq,
                Token::Ge,
                Token::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT # comment here\n ?x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select Where filter").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("WHERE".into()),
                Token::Keyword("FILTER".into()),
            ]
        );
    }

    #[test]
    fn bad_inputs() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("? ").is_err());
        assert!(tokenize("lone & here").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn pname_with_dots() {
        let toks = tokenize("res:New_York.City").unwrap();
        assert_eq!(
            toks,
            vec![Token::PName("res".into(), "New_York.City".into())]
        );
    }

    #[test]
    fn filter_functions_are_keywords() {
        let toks = tokenize("isLITERAL(?o) && lang(?o)").unwrap();
        assert_eq!(toks[0], Token::Keyword("ISLITERAL".into()));
        assert!(toks.contains(&Token::Keyword("LANG".into())));
    }
}
