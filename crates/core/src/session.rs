//! The interactive query-composition session (§4).
//!
//! The Sapphire UI "presents a text box for each part of a SPARQL query":
//! the user fills subject/predicate/object boxes per triple pattern, gets
//! QCM completions while typing, clicks Run, and receives QSM suggestions
//! alongside the answers. This module models that workflow headlessly — it is
//! what the simulated user study drives, replacing the web front-end the
//! paper demonstrates in \[13\].

use sapphire_rdf::{Literal, Term};
use sapphire_sparql::{
    Expr, GraphPattern, OrderKey, Projection, SelectQuery, TermPattern, TriplePattern,
};

use crate::answers::AnswerTable;
use crate::pum::PredictiveUserModel;
use crate::qcm::CompletionResult;
use crate::qsm::{QsmOutput, StructureSuggestion, TermAlternative};

/// The three text boxes of one triple-pattern row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleInput {
    /// Subject box.
    pub subject: String,
    /// Predicate box.
    pub predicate: String,
    /// Object box.
    pub object: String,
}

impl TripleInput {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        TripleInput {
            subject: s.into(),
            predicate: p.into(),
            object: o.into(),
        }
    }
}

/// Query modifiers entered below the triple boxes (Figure 2: "group by,
/// order by, limit, etc.").
#[derive(Debug, Clone, Default)]
pub struct Modifiers {
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// ORDER BY this variable.
    pub order_by: Option<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Aggregate the first projected variable with COUNT.
    pub count: bool,
    /// Raw FILTER expressions ("query modifiers … can be added here if
    /// desired", Figure 2).
    pub filters: Vec<Expr>,
}

/// A problem turning the text boxes into a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A box that must hold a variable or IRI holds something else.
    InvalidSubject(String),
    /// The predicate box is neither a variable, an IRI, nor a known keyword.
    UnknownPredicate(String),
    /// There are no triple rows.
    EmptyQuery,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidSubject(s) => {
                write!(f, "subject must be a ?variable or URI, got {s:?}")
            }
            SessionError::UnknownPredicate(p) => {
                write!(
                    f,
                    "predicate {p:?} matches no variable, URI, or cached predicate"
                )
            }
            SessionError::EmptyQuery => write!(f, "query has no triple patterns"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Result of pressing "Run".
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The answers, wrapped for table interaction.
    pub answers: AnswerTable,
    /// QSM suggestions.
    pub suggestions: QsmOutput,
    /// True if the query executed (even with zero answers).
    pub executed: bool,
}

/// One user's interactive session.
pub struct Session<'a> {
    pum: &'a PredictiveUserModel,
    /// Triple-pattern rows.
    pub triples: Vec<TripleInput>,
    /// Query modifiers.
    pub modifiers: Modifiers,
    attempts: u32,
}

impl<'a> Session<'a> {
    /// Start a session against a PUM.
    pub fn new(pum: &'a PredictiveUserModel) -> Self {
        Session {
            pum,
            triples: vec![TripleInput::default()],
            modifiers: Modifiers::default(),
            attempts: 0,
        }
    }

    /// Rehydrate a session from externally held state (triple rows, modifiers
    /// and the attempt counter). The serving layer stores session state in a
    /// registry and reconstructs a `Session` against the shared model for the
    /// duration of each request, so no per-session model copy ever exists.
    pub fn resume(
        pum: &'a PredictiveUserModel,
        triples: Vec<TripleInput>,
        modifiers: Modifiers,
        attempts: u32,
    ) -> Self {
        let triples = if triples.is_empty() {
            vec![TripleInput::default()]
        } else {
            triples
        };
        Session {
            pum,
            triples,
            modifiers,
            attempts,
        }
    }

    /// Number of times "Run" was clicked — an *attempt* in the user study's
    /// terms (§7.1.2).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Add an empty triple row; returns its index.
    pub fn add_row(&mut self) -> usize {
        self.triples.push(TripleInput::default());
        self.triples.len() - 1
    }

    /// Fill a triple row.
    pub fn set_row(&mut self, idx: usize, input: TripleInput) {
        if idx >= self.triples.len() {
            self.triples.resize_with(idx + 1, TripleInput::default);
        }
        self.triples[idx] = input;
    }

    /// QCM completion for text being typed into any box.
    pub fn complete(&self, typed: &str) -> CompletionResult {
        self.pum.complete(typed)
    }

    /// Turn the text boxes into a SPARQL query. Keywords in predicate boxes
    /// resolve against the cache (what the UI does when the user picks an
    /// auto-complete suggestion); keywords in object boxes become literals in
    /// the cache language.
    pub fn build_query(&self) -> Result<SelectQuery, SessionError> {
        let rows: Vec<&TripleInput> = self
            .triples
            .iter()
            .filter(|t| {
                !(t.subject.trim().is_empty()
                    && t.predicate.trim().is_empty()
                    && t.object.trim().is_empty())
            })
            .collect();
        if rows.is_empty() {
            return Err(SessionError::EmptyQuery);
        }
        let mut gp = GraphPattern::default();
        for row in rows {
            let subject = parse_subject(&row.subject)?;
            let predicate = self.parse_predicate(&row.predicate)?;
            let object = self.parse_object(&row.object, &predicate);
            gp.triples
                .push(TriplePattern::new(subject, predicate, object));
        }
        gp.filters.extend(self.modifiers.filters.iter().cloned());
        // "All variables are automatically included in the selection by
        // default" (Figure 2).
        let vars = gp.variables();
        let projection = if self.modifiers.count {
            let target = vars.first().cloned();
            Projection::Items(vec![sapphire_sparql::SelectItem::Agg {
                agg: sapphire_sparql::Aggregate::Count {
                    distinct: true,
                    var: target,
                },
                alias: "count".to_string(),
            }])
        } else {
            Projection::Star
        };
        let order_by = match &self.modifiers.order_by {
            Some((var, desc)) => {
                vec![OrderKey {
                    expr: Expr::Var(var.clone()),
                    descending: *desc,
                }]
            }
            None => Vec::new(),
        };
        Ok(SelectQuery {
            distinct: self.modifiers.distinct,
            projection,
            pattern: gp,
            group_by: Vec::new(),
            order_by,
            limit: self.modifiers.limit,
            offset: None,
        })
    }

    /// Click "Run": validate, execute, and gather suggestions.
    pub fn run(&mut self) -> Result<RunResult, SessionError> {
        let query = self.build_query()?;
        self.attempts += 1;
        let outcome = self.pum.run(&query);
        Ok(RunResult {
            answers: AnswerTable::new(outcome.answers),
            suggestions: outcome.suggestions,
            executed: outcome.executed,
        })
    }

    /// Accept a "did you mean" suggestion: update the altered box to the
    /// replacement and return the prefetched answers (§4: prefetching makes
    /// this "almost-instantaneous" — no re-execution happens here).
    pub fn apply_alternative(&mut self, alt: &TermAlternative) -> AnswerTable {
        if let Some(row) = self.triples.get_mut(alt.triple_index) {
            match alt.position {
                crate::qsm::AlteredPosition::Predicate => {
                    if let TermPattern::Term(Term::Iri(iri)) =
                        &alt.query.pattern.triples[alt.triple_index].predicate
                    {
                        row.predicate = format!("<{iri}>");
                    }
                }
                crate::qsm::AlteredPosition::Object => {
                    row.object = alt.replacement.clone();
                }
            }
        }
        AnswerTable::new(alt.answers.clone())
    }

    /// Accept a structure-relaxation suggestion: replace the whole query (the
    /// one QSM case shown as a full rewritten query, §4) and return the
    /// prefetched answers.
    pub fn apply_relaxation(&mut self, suggestion: &StructureSuggestion) -> AnswerTable {
        self.triples = suggestion
            .relaxed
            .query
            .pattern
            .triples
            .iter()
            .map(|tp| TripleInput {
                subject: pattern_text(&tp.subject),
                predicate: pattern_text(&tp.predicate),
                object: pattern_text(&tp.object),
            })
            .collect();
        AnswerTable::new(suggestion.answers.clone())
    }

    fn parse_predicate(&self, text: &str) -> Result<TermPattern, SessionError> {
        let t = text.trim();
        if t.is_empty() {
            return Err(SessionError::UnknownPredicate(text.to_string()));
        }
        if let Some(var) = t.strip_prefix('?') {
            return Ok(TermPattern::var(var));
        }
        if matches!(t, "a" | "type" | "is a" | "rdf:type") {
            return Ok(TermPattern::iri(sapphire_rdf::vocab::rdf::TYPE));
        }
        if let Some(iri) = as_iri(t) {
            return Ok(TermPattern::iri(iri));
        }
        // Keyword: resolve against cached predicates, best JW match first.
        let cache = self.pum.qcm().cache();
        if let Some((idx, _)) = cache.similar_predicates(t, 0.85).into_iter().next() {
            return Ok(TermPattern::iri(cache.predicates[idx].iri.clone()));
        }
        // Fall back to substring completion.
        let matches = cache.tree_lookup(t, 1);
        if let Some(m) = matches.into_iter().find(|m| m.predicate_iri.is_some()) {
            return Ok(TermPattern::iri(m.predicate_iri.unwrap()));
        }
        Err(SessionError::UnknownPredicate(text.to_string()))
    }

    fn parse_object(&self, text: &str, predicate: &TermPattern) -> TermPattern {
        let t = text.trim();
        if let Some(var) = t.strip_prefix('?') {
            return TermPattern::var(var);
        }
        if let Some(iri) = as_iri(t) {
            return TermPattern::iri(iri);
        }
        // In an rdf:type row, the object keyword names a *class*
        // ("scientist" in the paper's intro example) — resolve it against the
        // classes discovered during initialization.
        if predicate.as_term().and_then(Term::as_iri) == Some(sapphire_rdf::vocab::rdf::TYPE) {
            let cache = self.pum.qcm().cache();
            if let Some((idx, _)) = cache.similar_classes(t, 0.8).into_iter().next() {
                return TermPattern::iri(cache.classes[idx].iri.clone());
            }
        }
        if let Ok(n) = t.parse::<i64>() {
            return TermPattern::Term(Term::Literal(Literal::integer(n)));
        }
        // Keywords become literals in the cache language (§5.1: Sapphire maps
        // keywords to literals).
        TermPattern::Term(Term::Literal(Literal::lang_tagged(
            t,
            self.pum.config().language.clone(),
        )))
    }
}

fn parse_subject(text: &str) -> Result<TermPattern, SessionError> {
    let t = text.trim();
    if let Some(var) = t.strip_prefix('?') {
        return Ok(TermPattern::var(var));
    }
    if let Some(iri) = as_iri(t) {
        return Ok(TermPattern::iri(iri));
    }
    Err(SessionError::InvalidSubject(text.to_string()))
}

/// Accept `<http://…>` or bare `http://…` / `https://…` as IRIs.
fn as_iri(t: &str) -> Option<String> {
    if let Some(stripped) = t.strip_prefix('<') {
        return stripped.strip_suffix('>').map(str::to_string);
    }
    if t.starts_with("http://") || t.starts_with("https://") {
        return Some(t.to_string());
    }
    None
}

fn pattern_text(p: &TermPattern) -> String {
    match p {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(Term::Iri(iri)) => format!("<{iri}>"),
        TermPattern::Term(Term::Literal(l)) => l.value.clone(),
        TermPattern::Term(Term::Blank(b)) => format!("_:{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SapphireConfig;
    use crate::init::InitMode;
    use sapphire_endpoint::{Endpoint, EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;
    use sapphire_text::Lexicon;
    use std::sync::Arc;

    const DATA: &str = r#"
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "Robert F. Kennedy"@en .
res:Jack a dbo:Person ; dbo:surname "Kerry"@en ; dbo:name "John Kerry"@en .
"#;

    fn pum() -> PredictiveUserModel {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            turtle::parse(DATA).unwrap(),
            EndpointLimits::warehouse(),
        ));
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .unwrap()
    }

    #[test]
    fn figure_2_workflow_kennedys_to_kennedy() {
        let p = pum();
        let mut session = Session::new(&p);
        session.set_row(0, TripleInput::new("?person", "surname", "Kennedys"));
        let result = session.run().unwrap();
        assert!(result.executed);
        assert_eq!(result.answers.total_rows(), 0);
        let alt = result
            .suggestions
            .alternatives
            .iter()
            .find(|a| a.replacement == "Kennedy")
            .expect("Kennedy suggestion");
        // Accept the suggestion: the box updates, answers are instant.
        let table = session.apply_alternative(alt);
        assert_eq!(session.triples[0].object, "Kennedy");
        assert_eq!(table.total_rows(), 2);
        assert_eq!(session.attempts(), 1);
    }

    #[test]
    fn keyword_predicate_resolves_via_cache() {
        let p = pum();
        let session = Session::new(&p);
        let mut s2 = Session::new(&p);
        s2.set_row(0, TripleInput::new("?x", "surname", "?y"));
        let q = s2.build_query().unwrap();
        let TermPattern::Term(Term::Iri(iri)) = &q.pattern.triples[0].predicate else {
            panic!()
        };
        assert_eq!(iri, "http://dbpedia.org/ontology/surname");
        drop(session);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let p = pum();
        let mut s = Session::new(&p);
        s.set_row(0, TripleInput::new("not a uri", "surname", "x"));
        assert!(matches!(
            s.build_query(),
            Err(SessionError::InvalidSubject(_))
        ));
        s.set_row(0, TripleInput::new("?x", "zzzqqq", "x"));
        assert!(matches!(
            s.build_query(),
            Err(SessionError::UnknownPredicate(_))
        ));
        let mut empty = Session::new(&p);
        empty.triples.clear();
        assert!(matches!(empty.build_query(), Err(SessionError::EmptyQuery)));
    }

    #[test]
    fn modifiers_shape_the_query() {
        let p = pum();
        let mut s = Session::new(&p);
        s.set_row(0, TripleInput::new("?x", "surname", "?n"));
        s.modifiers.distinct = true;
        s.modifiers.limit = Some(5);
        s.modifiers.order_by = Some(("n".into(), true));
        let q = s.build_query().unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(5));
        assert!(q.order_by[0].descending);
    }

    #[test]
    fn count_modifier_counts() {
        let p = pum();
        let mut s = Session::new(&p);
        s.set_row(0, TripleInput::new("?x", "surname", "Kennedy"));
        s.modifiers.count = true;
        let r = s.run().unwrap();
        assert_eq!(r.answers.solutions().sole_value().unwrap().lexical(), "2");
    }

    #[test]
    fn completion_passthrough() {
        let p = pum();
        let s = Session::new(&p);
        assert!(s
            .complete("Kenn")
            .suggestions
            .iter()
            .any(|c| c.text.contains("Kennedy")));
    }
}
