//! `WireClient`: a shard replica behind a socket, presented to the cluster
//! router as just another [`ShardService`].
//!
//! Design rules, in order:
//!
//! 1. **The router owns failover.** The client never retries a request on
//!    another *replica* — it maps every transport failure onto the typed
//!    [`ServerError::Unreachable`] and lets the router's bounded retry /
//!    hedging machinery (built long before this crate existed) decide. The
//!    one exception is a *stale pooled connection*: if the request write
//!    itself fails on a connection checked out of the pool, the far side
//!    most likely closed it while idle, so the client redials once and
//!    replays — the request provably never reached the replica. Once the
//!    write has succeeded the request may be executing, so any later
//!    failure (a read timeout on a slow replica especially) surfaces
//!    directly instead of silently doubling the replica's work and the
//!    caller's latency; the router's bounded retry decides what happens
//!    next.
//! 2. **Load probes never block.** [`ShardService::admission_load`] and
//!    [`ShardService::shed_pressure_tier`] are answered from the load
//!    header piggybacked on the last reply (see
//!    [`LoadHeader`](crate::codec::LoadHeader)), not a round trip.
//! 3. **Every failure is counted.** `connects` / `reconnects` /
//!    `io_errors` / `corrupt_frames` feed the cluster report's transport
//!    section, so a flaky link is visible even when retries hide it from
//!    latency numbers.
//!
//! [`ServerError::Unreachable`]: sapphire_server::ServerError::Unreachable

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_server::{RunPayload, ServerError, ShardService, TransportStats};
use sapphire_sparql::{Query, QueryResult, SelectQuery};

use crate::codec::{
    decode_hello_ok, decode_reply, encode_hello, encode_request, WireReply, WireRequest,
};
use crate::frame::{self, kind, WireError, MAX_FRAME, WIRE_VERSION};

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct WireClientConfig {
    /// Deadline for one TCP connect + handshake.
    pub connect_timeout: Duration,
    /// Deadline for one request/reply exchange (the read side).
    pub call_timeout: Duration,
    /// Idle connections kept for reuse. Each in-flight call holds one
    /// connection exclusively, so this also bounds this client's
    /// socket-level concurrency against the replica.
    pub max_pool: usize,
    /// Largest frame payload accepted from the server.
    pub max_frame: u32,
}

impl Default for WireClientConfig {
    fn default() -> Self {
        WireClientConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(10),
            max_pool: 4,
            max_frame: MAX_FRAME,
        }
    }
}

/// A reconnecting, pooling client for one replica's [`WireServer`]
/// (see the module docs).
///
/// [`WireServer`]: crate::WireServer
pub struct WireClient {
    addr: SocketAddr,
    config: WireClientConfig,
    name: String,
    k: usize,
    pool: Mutex<Vec<TcpStream>>,
    /// Set on an IO failure, cleared by the next successful dial — that
    /// dial is a *re*connect.
    broken: AtomicBool,
    connects: AtomicU64,
    reconnects: AtomicU64,
    io_errors: AtomicU64,
    corrupt_frames: AtomicU64,
    load_in_flight: AtomicUsize,
    load_queued: AtomicUsize,
    load_pressure: AtomicUsize,
}

impl WireClient {
    /// Dial `addr` and handshake, learning the replica's name and top-k.
    /// The handshaken connection seeds the pool.
    pub fn connect(addr: SocketAddr, config: WireClientConfig) -> Result<WireClient, WireError> {
        let client = WireClient {
            addr,
            config,
            name: String::new(),
            k: 0,
            pool: Mutex::new(Vec::new()),
            broken: AtomicBool::new(false),
            connects: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            load_in_flight: AtomicUsize::new(0),
            load_queued: AtomicUsize::new(0),
            load_pressure: AtomicUsize::new(0),
        };
        let (stream, name, k) = client.dial()?;
        client.pool.lock().unwrap().push(stream);
        Ok(WireClient { name, k, ..client })
    }

    /// The replica address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// TCP connect + HELLO/HELLO_OK handshake.
    fn dial(&self) -> Result<(TcpStream, String, usize), WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(
            |e| match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
                kind => WireError::Io(kind, e.to_string()),
            },
        )?;
        stream.set_nodelay(true).ok();
        frame::set_deadline(&stream, Some(self.config.connect_timeout))?;
        let mut s = &stream;
        frame::write_frame(&mut s, kind::HELLO, &encode_hello(WIRE_VERSION))?;
        let (k, payload) = frame::read_frame(&mut s, self.config.max_frame)?;
        if k != kind::HELLO_OK {
            return Err(WireError::Corrupt(format!("expected HELLO_OK, got {k}")));
        }
        let (name, top_k, _server_max) = decode_hello_ok(&payload)?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        if self.broken.swap(false, Ordering::Relaxed) {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok((stream, name, top_k))
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().unwrap().pop()
    }

    fn check_in(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.config.max_pool {
            pool.push(stream);
        }
    }

    /// One request/reply exchange on one connection. `wrote` is set once
    /// the request write has succeeded — past that point the replica may
    /// be executing the request, so a failure is no longer provably
    /// pre-delivery (see [`call`](Self::call)).
    fn exchange(
        &self,
        stream: &TcpStream,
        payload: &[u8],
        wrote: &mut bool,
    ) -> Result<Result<WireReply, ServerError>, WireError> {
        frame::set_deadline(stream, Some(self.config.call_timeout))?;
        let mut s = stream;
        frame::write_frame(&mut s, kind::REQUEST, payload)?;
        *wrote = true;
        let (k, reply) = frame::read_frame(&mut s, self.config.max_frame)?;
        if k != kind::REPLY {
            return Err(WireError::Corrupt(format!("expected REPLY, got {k}")));
        }
        let (load, result) = decode_reply(&reply)?;
        self.load_in_flight
            .store(load.in_flight as usize, Ordering::Relaxed);
        self.load_queued
            .store(load.queued as usize, Ordering::Relaxed);
        self.load_pressure
            .store(load.pressure as usize, Ordering::Relaxed);
        Ok(result)
    }

    /// Issue one request, with the stale-pool redial described in the
    /// module docs, mapping transport failures onto typed errors.
    pub fn call(&self, req: &WireRequest) -> Result<WireReply, ServerError> {
        let payload = encode_request(req);
        let mut fresh = false;
        let mut stream = match self.checkout() {
            Some(s) => s,
            None => {
                fresh = true;
                self.dial().map_err(|e| self.fail(e))?.0
            }
        };
        loop {
            let mut wrote = false;
            match self.exchange(&stream, &payload, &mut wrote) {
                Ok(result) => {
                    self.check_in(stream);
                    return result;
                }
                Err(e) if !e.is_transport() => {
                    // Protocol violation: the connection may be desynced,
                    // never reuse it.
                    self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    return Err(e.to_server_error());
                }
                Err(e) if fresh || wrote => {
                    // Once the request write succeeded the replica may be
                    // executing it; replaying here would double its work
                    // (and stack a second call_timeout on top) exactly
                    // when it is slow. Surface the typed failure and let
                    // the router's bounded retry decide.
                    return Err(self.fail(e));
                }
                Err(_) => {
                    // The request write failed on a pooled connection: it
                    // died while idle (replica restarted, proxy killed
                    // it) and the request provably never reached the
                    // replica, so one redial is safe.
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.broken.store(true, Ordering::Relaxed);
                    fresh = true;
                    stream = self.dial().map_err(|e| self.fail(e))?.0;
                }
            }
        }
    }

    fn fail(&self, e: WireError) -> ServerError {
        if e.is_transport() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            self.broken.store(true, Ordering::Relaxed);
        } else {
            self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
        }
        e.to_server_error()
    }
}

impl ShardService for WireClient {
    fn shard_name(&self) -> String {
        self.name.clone()
    }

    fn top_k(&self) -> usize {
        self.k
    }

    fn complete_top(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError> {
        match self.call(&WireRequest::Complete {
            tenant: tenant.to_string(),
            term: typed.to_string(),
            fetch: k,
        })? {
            WireReply::Completion(c) => Ok(c),
            other => Err(protocol_mismatch("Completion", &other)),
        }
    }

    fn run_select_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        tier: usize,
        budget: Option<Duration>,
    ) -> Result<std::sync::Arc<RunPayload>, ServerError> {
        match self.call(&WireRequest::Run {
            tenant: tenant.to_string(),
            query: query.clone(),
            tier,
            budget,
        })? {
            WireReply::Run(p) => Ok(std::sync::Arc::new(p)),
            other => Err(protocol_mismatch("Run", &other)),
        }
    }

    fn execute_raw(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServerError> {
        match self.call(&WireRequest::Raw {
            tenant: tenant.to_string(),
            query: query.clone(),
        })? {
            WireReply::Raw(qr) => Ok(qr),
            other => Err(protocol_mismatch("Raw", &other)),
        }
    }

    fn admission_load(&self) -> (usize, usize) {
        (
            self.load_in_flight.load(Ordering::Relaxed),
            self.load_queued.load(Ordering::Relaxed),
        )
    }

    fn shed_pressure_tier(&self) -> usize {
        self.load_pressure.load(Ordering::Relaxed)
    }

    fn transport(&self) -> &'static str {
        "wire"
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
        }
    }
}

fn protocol_mismatch(want: &str, got: &WireReply) -> ServerError {
    let got = match got {
        WireReply::Completion(_) => "Completion",
        WireReply::Run(_) => "Run",
        WireReply::Raw(_) => "Raw",
    };
    ServerError::Backend(format!("protocol: expected {want} reply, got {got}"))
}
