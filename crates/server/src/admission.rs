//! Per-request admission control and per-tenant work budgets.
//!
//! The paper's endpoints protect themselves with per-query work budgets
//! ([`WorkBudget`](sapphire_sparql::WorkBudget)) and cost-estimate gates.
//! The serving tier lifts the same idea one level up: a bounded number of
//! requests run concurrently, a bounded number may wait, everything beyond
//! that is rejected with a typed error, and each tenant spends from a work
//! budget denominated in the same units the evaluator charges.
//!
//! Two ways to wait for a slot share one fair FIFO queue:
//!
//! * **Parked** ([`AdmissionController::admit`]) — the classic
//!   thread-per-request shape: the calling thread blocks on its ticket's
//!   private condvar until a releaser hands it the slot or its deadline
//!   passes.
//! * **Evented** ([`AdmissionController::admit_evented`]) — nothing blocks:
//!   the caller receives an [`AdmissionTicket`] and a grant *callback* fires
//!   when a releaser hands the ticket its slot. The evented front-end
//!   ([`crate::frontend`]) parks *sessions* in its reactor instead of
//!   parking worker threads here, which is what lets a fixed worker pool
//!   hold thousands of open sessions.
//!
//! Both kinds of waiter are strictly ordered by arrival: a freed slot is
//! handed to the queue head whichever kind it is, so evented waiters can
//! never barge past parked ones or vice versa.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServerError;

/// Callback fired (at most once) when an evented ticket's grant arrives.
///
/// It runs on whichever thread released the slot, *after* the controller
/// lock has been dropped — so it may safely call back into the controller
/// (claim, cancel, even a fresh admit). It is a wake-up hint, not an
/// ownership transfer: the grant may still be lost to a concurrent
/// [`AdmissionTicket::cancel`], so receivers must settle the outcome through
/// [`AdmissionTicket::try_claim`].
pub type GrantCallback = Box<dyn FnOnce() + Send>;

/// How a queued ticket's owner wants to learn about its grant.
enum Wakeup {
    /// A thread is parked on the ticket's condvar.
    Park,
    /// Nobody is parked: fire the callback (taken out exactly once).
    Callback(Mutex<Option<GrantCallback>>),
}

impl std::fmt::Debug for Wakeup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Wakeup::Park => write!(f, "Park"),
            Wakeup::Callback(_) => write!(f, "Callback"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketState {
    /// Still queued; owns no slot.
    Waiting,
    /// A releaser handed this ticket its slot (the in-flight count was
    /// *not* decremented — the slot moved directly from releaser to ticket).
    Granted,
    /// The owner gave up before any grant; the ticket owns nothing.
    Cancelled,
    /// The grant was converted into an [`AdmissionPermit`].
    Claimed,
}

/// One queued request's private wake-up slot.
///
/// Each ticket gets its *own* mutex + condvar: the releaser hands a freed
/// execution slot to exactly the queue head and notifies only that waiter,
/// so a release never wakes the whole queue (no thundering herd) and can
/// never wake the wrong waiter (strict FIFO).
#[derive(Debug)]
struct Ticket {
    state: Mutex<TicketState>,
    granted: Condvar,
    wakeup: Wakeup,
}

impl Ticket {
    fn parked() -> Arc<Self> {
        Arc::new(Ticket {
            state: Mutex::new(TicketState::Waiting),
            granted: Condvar::new(),
            wakeup: Wakeup::Park,
        })
    }

    fn evented(on_grant: GrantCallback) -> Arc<Self> {
        Arc::new(Ticket {
            state: Mutex::new(TicketState::Waiting),
            granted: Condvar::new(),
            wakeup: Wakeup::Callback(Mutex::new(Some(on_grant))),
        })
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    /// Queued tickets in arrival order. Invariant: the queue is non-empty
    /// only while every execution slot is taken — a freed slot is handed to
    /// the head before the releaser's in-flight count ever drops, and a new
    /// arrival takes a free slot only when the queue is empty.
    queue: VecDeque<Arc<Ticket>>,
}

/// Bounded-concurrency gate with a bounded, deadline-limited, **fair FIFO**
/// wait queue.
///
/// Queued requests are admitted strictly in arrival order: each waiter
/// blocks on (or subscribes to) its own ticket, and a released slot is
/// handed directly to the queue head under the controller lock (counted in
/// [`handoffs`](Self::handoffs)). New arrivals never barge past the queue,
/// and a waiter that gives up at its deadline removes itself under the same
/// lock — so a grant can never be stranded on a dead waiter, and no baton
/// re-notification dance is needed.
///
/// The controller is used through an [`Arc`] (permits own a clone), so the
/// admitting methods take `self: &Arc<Self>`.
#[derive(Debug)]
pub struct AdmissionController {
    state: Mutex<AdmissionState>,
    max_in_flight: usize,
    max_queue_depth: usize,
    queue_wait: Duration,
    handoffs: AtomicU64,
}

/// Outcome of a non-blocking [`admit_evented`](AdmissionController::admit_evented).
#[derive(Debug)]
pub enum AsyncAdmission {
    /// A free slot was granted immediately; no queueing happened.
    Ready(AdmissionPermit),
    /// All slots taken: the request joined the FIFO queue. The grant
    /// callback fires when a releaser hands this ticket the slot; settle
    /// the outcome with [`AdmissionTicket::try_claim`] /
    /// [`AdmissionTicket::cancel`].
    Queued(AdmissionTicket),
}

impl AdmissionController {
    /// A gate admitting `max_in_flight` concurrent requests, queueing at most
    /// `max_queue_depth` more for up to `queue_wait` each.
    pub fn new(max_in_flight: usize, max_queue_depth: usize, queue_wait: Duration) -> Self {
        AdmissionController {
            state: Mutex::new(AdmissionState::default()),
            max_in_flight: max_in_flight.max(1),
            max_queue_depth,
            queue_wait,
            handoffs: AtomicU64::new(0),
        }
    }

    fn permit(self: &Arc<Self>) -> AdmissionPermit {
        AdmissionPermit {
            controller: Arc::clone(self),
        }
    }

    /// Take a free slot *now* or queue a ticket; shared head of both the
    /// parked and the evented admission paths. `Ok(Ok(permit))` = admitted
    /// immediately, `Ok(Err(ticket))` = queued.
    #[allow(clippy::type_complexity)]
    fn admit_or_enqueue(
        self: &Arc<Self>,
        make_ticket: impl FnOnce() -> Arc<Ticket>,
    ) -> Result<Result<AdmissionPermit, Arc<Ticket>>, ServerError> {
        let mut state = self.state.lock().unwrap();
        // A free slot goes to a new arrival only when nobody is queued
        // ahead of it; released slots are handed to the queue head, so
        // with waiters present every slot is accounted for and arrivals
        // always join the back.
        if state.queue.is_empty() && state.in_flight < self.max_in_flight {
            state.in_flight += 1;
            return Ok(Ok(self.permit()));
        }
        if state.queue.len() >= self.max_queue_depth {
            return Err(ServerError::Overloaded {
                in_flight: state.in_flight,
                queue_depth: state.queue.len(),
            });
        }
        let ticket = make_ticket();
        state.queue.push_back(ticket.clone());
        Ok(Err(ticket))
    }

    /// Acquire an execution slot, blocking in the queue if allowed.
    ///
    /// Returns [`ServerError::Overloaded`] when the queue is full and
    /// [`ServerError::QueueTimeout`] when a queued request's deadline passes
    /// — both without running any query work.
    pub fn admit(self: &Arc<Self>) -> Result<AdmissionPermit, ServerError> {
        self.admit_within(self.queue_wait)
    }

    /// [`admit`](Self::admit) with a caller-supplied queue deadline instead
    /// of the configured `queue_wait`. This is the per-request deadline
    /// budget a cluster edge propagates per hop: a request with little
    /// deadline budget left gives up its queue slot sooner than the
    /// configured wait would, and a zero budget degenerates to "a free slot
    /// right now or a typed rejection". Callers should pass
    /// `min(remaining_budget, configured_wait)` — this method does not clamp.
    pub fn admit_within(
        self: &Arc<Self>,
        queue_wait: Duration,
    ) -> Result<AdmissionPermit, ServerError> {
        let ticket = match self.admit_or_enqueue(Ticket::parked)? {
            Ok(permit) => return Ok(permit),
            Err(ticket) => ticket,
        };

        let start = Instant::now();
        // `checked_add`, not `+`: a huge `queue_wait` ("wait as long as it
        // takes") must mean *no deadline*, never an Instant-overflow panic.
        let deadline = start.checked_add(queue_wait);
        let mut ts = ticket.state.lock().unwrap();
        while *ts == TicketState::Waiting {
            match deadline {
                None => ts = ticket.granted.wait(ts).unwrap(),
                Some(d) => {
                    // `saturating_duration_since`, not `d - now`: the clock
                    // may pass the deadline between the loop's check and the
                    // subtraction, and a bare `Duration` subtraction would
                    // panic exactly then (under load, with an expired or
                    // zero deadline — the worst possible moment).
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    ts = ticket.granted.wait_timeout(ts, remaining).unwrap().0;
                }
            }
        }
        if *ts == TicketState::Granted {
            *ts = TicketState::Claimed;
            return Ok(self.permit());
        }
        drop(ts);

        // Deadline passed. Remove ourselves from the queue under the
        // controller lock — but a releaser may have granted us between the
        // condvar timeout and taking that lock, so re-check first. Grants
        // only happen under the controller lock, so after this check the
        // outcome is settled.
        let mut state = self.state.lock().unwrap();
        {
            let mut ts = ticket.state.lock().unwrap();
            if *ts == TicketState::Granted {
                *ts = TicketState::Claimed;
                drop(ts);
                drop(state);
                return Ok(self.permit());
            }
            *ts = TicketState::Cancelled;
        }
        if let Some(pos) = state.queue.iter().position(|t| Arc::ptr_eq(t, &ticket)) {
            state.queue.remove(pos);
        }
        drop(state);
        Err(ServerError::QueueTimeout {
            waited_ms: start.elapsed().as_millis() as u64,
        })
    }

    /// Take a free slot if one exists *right now*; never queues, never
    /// blocks, never consumes queue capacity.
    pub fn try_admit(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let mut state = self.state.lock().unwrap();
        if state.queue.is_empty() && state.in_flight < self.max_in_flight {
            state.in_flight += 1;
            Some(self.permit())
        } else {
            None
        }
    }

    /// Non-blocking admission: grant a free slot immediately, or join the
    /// FIFO queue and fire `on_grant` when a releaser hands the ticket its
    /// slot. The caller is **never parked** — the waiting itself moves into
    /// whatever structure the caller uses to hold ready work (the evented
    /// front-end's reactor queue).
    ///
    /// The queued ticket carries the same deadline a parked waiter would
    /// have (`now + queue_wait`); nothing here enforces it — an evented
    /// waiter has no thread to time out on — so the *owner* is responsible
    /// for calling [`AdmissionTicket::cancel`] once
    /// [`AdmissionTicket::expired`] turns true, and for answering the
    /// request with [`ServerError::QueueTimeout`].
    pub fn admit_evented(
        self: &Arc<Self>,
        on_grant: GrantCallback,
    ) -> Result<AsyncAdmission, ServerError> {
        let enqueued = Instant::now();
        match self.admit_or_enqueue(|| Ticket::evented(on_grant))? {
            Ok(permit) => Ok(AsyncAdmission::Ready(permit)),
            Err(ticket) => Ok(AsyncAdmission::Queued(AdmissionTicket {
                ticket,
                controller: Arc::clone(self),
                enqueued,
                deadline: enqueued.checked_add(self.queue_wait),
            })),
        }
    }

    /// Current `(in_flight, queued)` snapshot.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.in_flight, state.queue.len())
    }

    /// Slots handed directly from a finishing request to the queue head.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }
}

/// A queued evented admission request: the FIFO queue position of one
/// not-yet-admitted request, owned by the caller instead of a parked thread.
///
/// Exactly one of three things ends its life:
///
/// * [`try_claim`](Self::try_claim) after the grant callback fired — the
///   normal path; yields the [`AdmissionPermit`].
/// * [`cancel`](Self::cancel) — deadline enforcement by the owner; removes
///   the ticket from the queue, or (if a grant raced the cancel) yields the
///   permit after all so the slot is never stranded.
/// * Drop — safety net; behaves like `cancel` and releases any raced grant.
pub struct AdmissionTicket {
    ticket: Arc<Ticket>,
    controller: Arc<AdmissionController>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

impl std::fmt::Debug for AdmissionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionTicket")
            .field("state", &*self.ticket.state.lock().unwrap())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl AdmissionTicket {
    /// The instant this ticket's queue wait becomes a timeout (`None` when
    /// the controller's `queue_wait` is effectively unbounded).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the queue-wait deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Milliseconds spent queued so far.
    pub fn waited_ms(&self) -> u64 {
        self.enqueued.elapsed().as_millis() as u64
    }

    /// Convert a delivered grant into the permit. `None` while still
    /// waiting (or after a cancel settled the ticket).
    pub fn try_claim(&self) -> Option<AdmissionPermit> {
        let mut ts = self.ticket.state.lock().unwrap();
        if *ts == TicketState::Granted {
            *ts = TicketState::Claimed;
            Some(self.controller.permit())
        } else {
            None
        }
    }

    /// Abandon the wait. `None` means the ticket was removed cleanly (it
    /// owned no slot). `Some(permit)` means a grant raced the cancel: the
    /// caller now owns the slot and must either use it or drop the permit
    /// (handing the slot to the next waiter) — it is never stranded.
    pub fn cancel(&self) -> Option<AdmissionPermit> {
        let mut state = self.controller.state.lock().unwrap();
        {
            let mut ts = self.ticket.state.lock().unwrap();
            match *ts {
                TicketState::Waiting => *ts = TicketState::Cancelled,
                TicketState::Granted => {
                    *ts = TicketState::Claimed;
                    drop(ts);
                    drop(state);
                    return Some(self.controller.permit());
                }
                // Already claimed or cancelled: nothing to release.
                TicketState::Cancelled | TicketState::Claimed => return None,
            }
        }
        if let Some(pos) = state
            .queue
            .iter()
            .position(|t| Arc::ptr_eq(t, &self.ticket))
        {
            state.queue.remove(pos);
        }
        None
    }
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        // A ticket dropped while granted-but-unclaimed would strand its
        // slot forever; cancel releases it onward.
        drop(self.cancel());
    }
}

/// An admitted request's slot; releasing it hands the slot to the queue head
/// (in arrival order), or frees it if nobody is waiting. Owns an `Arc` of
/// its controller, so it can outlive the admitting call frame (the evented
/// front-end carries permits through its reactor).
#[derive(Debug)]
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().unwrap();
        if let Some(head) = state.queue.pop_front() {
            // Hand the slot straight to the oldest waiter: in-flight stays
            // unchanged (the slot changes owners, it never frees), and only
            // that waiter is notified. Waiters abandon the queue only under
            // the controller lock held here, so the head is live — parked on
            // its condvar, subscribed through its callback, or about to
            // settle its state under this same lock — and the grant cannot
            // be stranded.
            *head.state.lock().unwrap() = TicketState::Granted;
            self.controller.handoffs.fetch_add(1, Ordering::Relaxed);
            match &head.wakeup {
                Wakeup::Park => {
                    head.granted.notify_one();
                }
                Wakeup::Callback(cb) => {
                    // Fire outside the controller lock so the callback may
                    // re-enter the controller (claim, cancel, even admit).
                    let cb = cb.lock().unwrap().take();
                    drop(state);
                    if let Some(cb) = cb {
                        cb();
                    }
                }
            }
        } else {
            state.in_flight -= 1;
        }
    }
}

/// Per-tenant work accounting for one budget window.
///
/// Budgets use the evaluator's work units: a request is charged an estimate
/// derived from its shape before it runs (see
/// [`ServerConfig`](crate::ServerConfig)), and a tenant over budget receives
/// typed [`ServerError::QuotaExhausted`] rejections until
/// [`reset_window`](TenantBudgets::reset_window) is called.
///
/// Accounting is sharded by tenant hash so it never becomes a global
/// serialization point, and each shard is a *bounded* LRU
/// ([`sapphire_core::BoundedCache`]): only the most recently active tenants
/// are tracked, so the meter cannot grow without bound under tenant-name
/// churn. The bound cuts both ways: when a shard sees more distinct tenants
/// than its capacity within one window, even a *legitimate, active* tenant's
/// meter can be evicted and silently restart from zero, under-enforcing its
/// quota — it is not only adversarial name cycling that slips through.
/// Every evicted meter is therefore counted
/// ([`TenantBudgets::evicted_meters`], surfaced as
/// `ServerMetrics::tenant_meter_evictions`), so a deployment can see when
/// its tenant cardinality outgrows the meter and quota enforcement degrades.
#[derive(Debug)]
pub struct TenantBudgets {
    budget: Option<u64>,
    shards: Vec<Mutex<sapphire_core::BoundedCache<String, u64>>>,
    /// Meters evicted across all windows. Folded in at charge time, under
    /// the owning shard's lock, as the delta in that shard's eviction count
    /// around the insert — so the total is monotonic and exact, a metrics
    /// read is one atomic load instead of a 16-shard lock walk, and no
    /// read/reset interleaving can ever observe an eviction twice (the
    /// double-count hazard the old `past_evictions` + walk-mutex scheme
    /// existed to paper over).
    evictions: AtomicU64,
}

/// Shards of the tenant meter.
const TENANT_SHARDS: usize = 16;
/// Most-recently-active tenants tracked per shard.
const TRACKED_TENANTS_PER_SHARD: usize = 4096;

impl TenantBudgets {
    /// `None` disables quota enforcement (the warehouse posture).
    pub fn new(budget: Option<u64>) -> Self {
        TenantBudgets {
            budget,
            shards: (0..TENANT_SHARDS)
                .map(|_| Mutex::new(sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD)))
                .collect(),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, tenant: &str) -> &Mutex<sapphire_core::BoundedCache<String, u64>> {
        &self.shards[crate::response_cache::shard_index(tenant, self.shards.len())]
    }

    /// Charge `work` units to `tenant`, rejecting if it would exceed the
    /// window budget. Rejected requests are not charged; usage is metered
    /// even when no budget is enforced (observability without enforcement).
    pub fn charge(&self, tenant: &str, work: u64) -> Result<(), ServerError> {
        let mut meter = self.shard(tenant).lock().unwrap();
        let would_use = meter.get(tenant).copied().unwrap_or(0).saturating_add(work);
        if let Some(budget) = self.budget {
            if would_use > budget {
                return Err(ServerError::QuotaExhausted {
                    tenant: tenant.to_string(),
                    used: would_use,
                    budget,
                });
            }
        }
        let before = meter.stats().evictions;
        meter.insert(tenant.to_string(), would_use);
        let after = meter.stats().evictions;
        if after > before {
            // Still under the shard lock, so the delta is exactly the
            // evictions this insert caused — the global count stays an
            // every-eviction-once ledger.
            self.evictions.fetch_add(after - before, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Work charged to `tenant` so far in this window.
    pub fn used(&self, tenant: &str) -> u64 {
        self.shard(tenant)
            .lock()
            .unwrap()
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Meters evicted to keep the shards bounded, across all windows. Each
    /// eviction forgot some tenant's in-window usage — a nonzero value means
    /// quotas may have been under-enforced, and a growing one means tenant
    /// cardinality exceeds `TRACKED_TENANTS_PER_SHARD` per shard. Monotonic:
    /// successive reads never go backwards, concurrent resets included.
    pub fn evicted_meters(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Start a fresh accounting window for every tenant. Eviction counts
    /// survive: they were folded into the global ledger as they happened.
    pub fn reset_window(&self) {
        for shard in &self.shards {
            *shard.lock().unwrap() = sapphire_core::BoundedCache::new(TRACKED_TENANTS_PER_SHARD);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    fn gate(
        max_in_flight: usize,
        max_queue_depth: usize,
        queue_wait: Duration,
    ) -> Arc<AdmissionController> {
        Arc::new(AdmissionController::new(
            max_in_flight,
            max_queue_depth,
            queue_wait,
        ))
    }

    #[test]
    fn admits_up_to_limit_then_queues_then_rejects() {
        let gate = gate(1, 0, Duration::from_millis(10));
        let p1 = gate.admit().expect("first request admitted");
        let err = gate.admit().unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                in_flight: 1,
                queue_depth: 0
            }
        ));
        drop(p1);
        let _p2 = gate.admit().expect("slot freed");
    }

    #[test]
    fn queued_request_times_out_typed() {
        let gate = gate(1, 4, Duration::from_millis(20));
        let _p = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert!(
            matches!(err, ServerError::QueueTimeout { .. }),
            "got {err:?}"
        );
    }

    /// Regression (issue 4 satellite): a zero/expired queue deadline must
    /// produce a typed `QueueTimeout`, never a `Duration`-underflow panic —
    /// the wait loop's remaining-time subtraction saturates.
    #[test]
    fn zero_deadline_times_out_typed_without_panicking() {
        let gate = gate(1, 4, Duration::ZERO);
        let _p = gate.admit().unwrap();
        for _ in 0..100 {
            let err = gate.admit().unwrap_err();
            assert!(
                matches!(err, ServerError::QueueTimeout { waited_ms: 0..=50 }),
                "got {err:?}"
            );
        }
        assert_eq!(gate.load(), (1, 0), "expired waiters left the queue");
    }

    /// Regression (issue 4 satellite): an effectively unbounded `queue_wait`
    /// must mean "no deadline", not an `Instant + Duration` overflow panic
    /// on the admission path.
    #[test]
    fn huge_queue_wait_waits_instead_of_panicking() {
        let gate = gate(1, 4, Duration::MAX);
        let holder = gate.admit().unwrap();
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.admit().expect("granted once the slot frees"))
        };
        while gate.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(holder);
        drop(waiter.join().unwrap());
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let served = Arc::new(AtomicUsize::new(0));
        let permit = gate.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let gate = gate.clone();
            let served = served.clone();
            handles.push(std::thread::spawn(move || {
                let _p = gate.admit().expect("queued then admitted");
                served.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Give the threads time to enter the queue, then release the slot.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            served.load(Ordering::SeqCst),
            0,
            "all three should be waiting"
        );
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(served.load(Ordering::SeqCst), 3);
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn new_arrivals_do_not_barge_past_queued_waiters() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let order = Arc::new(Mutex::new(Vec::new()));
        let p1 = gate.admit().unwrap();
        let waiter = {
            let gate = gate.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _p = gate.admit().expect("waiter admitted");
                order.lock().unwrap().push("waiter");
                // Hold the slot long enough that the main thread's admit()
                // call observably runs while the waiter owns it.
                std::thread::sleep(Duration::from_millis(50));
            })
        };
        while gate.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Free the slot with the waiter queued, then immediately contend for
        // it: the arrival must queue behind the waiter, never steal the slot.
        drop(p1);
        let _p2 = gate
            .admit()
            .expect("queued behind the waiter, then admitted");
        order.lock().unwrap().push("arrival");
        waiter.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["waiter", "arrival"]);
    }

    #[test]
    fn waiters_admitted_in_strict_arrival_order_under_sustained_load() {
        // One execution slot, a deep queue, and a stream of arrivals that
        // keeps joining while earlier waiters drain: every admission must
        // happen in exact arrival order — targeted head-of-queue handoff,
        // not condvar scramble.
        const WAITERS: usize = 12;
        let gate = gate(1, WAITERS, Duration::from_secs(10));
        let holder = gate.admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..WAITERS {
            let gate2 = gate.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let permit = gate2.admit().expect("queued then admitted");
                order2.lock().unwrap().push(i);
                drop(permit);
            }));
            // Arrival order is only defined once the waiter is actually
            // queued; gate each spawn on the queue length so the intended
            // order is the real order.
            while gate.load().1 != i + 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Sustained drain: each admitted waiter releases immediately, so the
        // slot hops head-to-head through the whole queue in one burst.
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(*order, (0..WAITERS).collect::<Vec<_>>());
        assert_eq!(gate.handoffs(), WAITERS as u64, "every admission a handoff");
        assert_eq!(gate.load(), (0, 0));
    }

    // --- Evented admission -------------------------------------------------

    #[test]
    fn evented_admission_grants_immediately_when_free() {
        let gate = gate(2, 4, Duration::from_secs(1));
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        match gate.admit_evented(Box::new(move || f.store(true, Ordering::SeqCst))) {
            Ok(AsyncAdmission::Ready(permit)) => drop(permit),
            Ok(AsyncAdmission::Queued(_)) => panic!("free slot must grant immediately"),
            Err(e) => panic!("unexpected rejection: {e:?}"),
        }
        assert!(!fired.load(Ordering::SeqCst), "no callback on a free slot");
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn evented_grant_callback_fires_and_claim_yields_the_permit() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let holder = gate.admit().unwrap();
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let ticket = match gate
            .admit_evented(Box::new(move || f.store(true, Ordering::SeqCst)))
            .unwrap()
        {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        assert!(ticket.try_claim().is_none(), "not granted yet");
        assert_eq!(gate.load(), (1, 1));
        drop(holder);
        assert!(fired.load(Ordering::SeqCst), "grant callback fired inline");
        let permit = ticket.try_claim().expect("grant claimable");
        assert_eq!(gate.load(), (1, 0), "slot moved, never freed");
        assert!(ticket.try_claim().is_none(), "claims are exactly-once");
        drop(permit);
        assert_eq!(gate.load(), (0, 0));
        assert_eq!(gate.handoffs(), 1);
    }

    #[test]
    fn evented_and_parked_waiters_share_one_fifo() {
        // Arrival order: parked waiter first, evented ticket second. The
        // first release must go to the parked thread, the second to the
        // ticket — strict FIFO regardless of waiter kind.
        let gate = gate(1, 4, Duration::from_secs(5));
        let holder = gate.admit().unwrap();
        let parked_admitted = Arc::new(AtomicBool::new(false));
        let parked = {
            let gate = gate.clone();
            let flag = parked_admitted.clone();
            std::thread::spawn(move || {
                let permit = gate.admit().expect("parked waiter admitted");
                flag.store(true, Ordering::SeqCst);
                // Hold briefly so the ticket's grant observably comes second.
                std::thread::sleep(Duration::from_millis(20));
                drop(permit);
            })
        };
        while gate.load().1 != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let granted = Arc::new(AtomicBool::new(false));
        let g = granted.clone();
        let ticket = match gate
            .admit_evented(Box::new(move || g.store(true, Ordering::SeqCst)))
            .unwrap()
        {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        drop(holder);
        parked.join().unwrap();
        assert!(parked_admitted.load(Ordering::SeqCst));
        assert!(granted.load(Ordering::SeqCst), "ticket granted second");
        drop(ticket.try_claim().expect("claimable after grant"));
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn evented_queue_overflow_rejects_typed() {
        let gate = gate(1, 1, Duration::from_secs(1));
        let _holder = gate.admit().unwrap();
        let _queued = match gate.admit_evented(Box::new(|| {})).unwrap() {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        let err = gate.admit_evented(Box::new(|| {})).unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                in_flight: 1,
                queue_depth: 1
            }
        ));
    }

    #[test]
    fn cancelled_ticket_leaves_the_queue_and_never_blocks_a_grant() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let holder = gate.admit().unwrap();
        let ticket = match gate.admit_evented(Box::new(|| {})).unwrap() {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        assert_eq!(gate.load(), (1, 1));
        assert!(ticket.cancel().is_none(), "clean cancel owns no slot");
        assert_eq!(gate.load(), (1, 0));
        // The freed slot goes to nobody (queue empty) — plain release.
        drop(holder);
        assert_eq!(gate.load(), (0, 0));
        let _p = gate.admit().expect("gate healthy after cancel");
    }

    #[test]
    fn cancel_after_grant_returns_the_permit_instead_of_stranding_it() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let holder = gate.admit().unwrap();
        let ticket = match gate.admit_evented(Box::new(|| {})).unwrap() {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        drop(holder); // grants the ticket
        let permit = ticket
            .cancel()
            .expect("grant raced the cancel: the slot surfaces, never strands");
        assert_eq!(gate.load(), (1, 0));
        drop(permit);
        assert_eq!(gate.load(), (0, 0));
        assert!(ticket.cancel().is_none(), "second cancel is a no-op");
    }

    #[test]
    fn dropping_a_granted_ticket_releases_the_slot() {
        let gate = gate(1, 4, Duration::from_secs(5));
        let holder = gate.admit().unwrap();
        let ticket = match gate.admit_evented(Box::new(|| {})).unwrap() {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        drop(holder); // grants the ticket
        drop(ticket); // never claimed — the Drop safety net must free it
        assert_eq!(gate.load(), (0, 0));
        let _p = gate.admit().expect("slot recovered");
    }

    #[test]
    fn evented_tickets_carry_the_queue_deadline() {
        let gate = gate(1, 4, Duration::from_millis(5));
        let _holder = gate.admit().unwrap();
        let ticket = match gate.admit_evented(Box::new(|| {})).unwrap() {
            AsyncAdmission::Queued(t) => t,
            AsyncAdmission::Ready(_) => panic!("slot was held"),
        };
        assert!(ticket.deadline().is_some());
        assert!(!ticket.expired() || ticket.waited_ms() >= 5);
        std::thread::sleep(Duration::from_millis(10));
        assert!(ticket.expired(), "deadline passed");
        assert!(ticket.cancel().is_none());
    }

    #[test]
    fn tenant_budget_rejects_after_exhaustion() {
        let budgets = TenantBudgets::new(Some(10));
        assert!(budgets.charge("alice", 6).is_ok());
        assert!(budgets.charge("alice", 4).is_ok());
        let err = budgets.charge("alice", 1).unwrap_err();
        assert!(matches!(
            err,
            ServerError::QuotaExhausted {
                used: 11,
                budget: 10,
                ..
            }
        ));
        assert_eq!(budgets.used("alice"), 10, "rejected request not charged");
        // Other tenants are unaffected; windows reset cleanly.
        assert!(budgets.charge("bob", 10).is_ok());
        budgets.reset_window();
        assert!(budgets.charge("alice", 10).is_ok());
    }

    #[test]
    fn tenant_meter_is_bounded_under_name_churn() {
        let budgets = TenantBudgets::new(None);
        for i in 0..200_000 {
            budgets.charge(&format!("drive-by-{i}"), 1).unwrap();
        }
        // Capacity is TENANT_SHARDS * TRACKED_TENANTS_PER_SHARD (65,536);
        // early drive-by tenants must have been evicted, recent ones kept.
        assert_eq!(budgets.used("drive-by-0"), 0, "idle tenants evicted");
        assert_eq!(budgets.used("drive-by-199999"), 1, "active tenants tracked");
        // Under-enforcement is observable: every forgotten meter is counted,
        // and the count survives window resets.
        let evicted = budgets.evicted_meters();
        assert!(evicted > 0, "evictions surface in the metric");
        budgets.reset_window();
        assert_eq!(budgets.evicted_meters(), evicted, "count is cumulative");
    }

    #[test]
    fn unlimited_budget_never_rejects() {
        let budgets = TenantBudgets::new(None);
        for _ in 0..1000 {
            budgets.charge("anyone", u64::MAX / 2).unwrap();
        }
    }

    #[test]
    fn eviction_count_is_monotonic_and_exact_under_concurrency() {
        // Regression for the old read-side scheme (past_evictions + a live
        // shard walk), where a metrics read racing reset_window could count
        // the same evictions twice. Readers and window resets now run
        // concurrently with eviction-heavy charges; every observed value
        // must be monotonic, and the final count must equal the exact number
        // of meters the shards actually dropped.
        const WRITERS: usize = 4;
        const CHARGES_PER_WRITER: usize = 60_000;
        let budgets = Arc::new(TenantBudgets::new(None));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let budgets = budgets.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let now = budgets.evicted_meters();
                        assert!(
                            now >= last,
                            "eviction count went backwards: {last} -> {now}"
                        );
                        last = now;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        let hammer = |phase: &str| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let budgets = budgets.clone();
                    let phase = phase.to_string();
                    std::thread::spawn(move || {
                        // Distinct names per writer and phase: every charge
                        // inserts a fresh meter, overflowing the per-shard
                        // LRU capacity many times over.
                        for i in 0..CHARGES_PER_WRITER {
                            budgets.charge(&format!("{phase}-w{w}-{i}"), 1).unwrap();
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
        };

        // Phase A, no resets: 240k fresh meters into 65,536 capacity must
        // evict, and concurrent reads stay monotonic while they do.
        hammer("a");
        let after_phase_a = budgets.evicted_meters();
        assert!(after_phase_a > 0, "churn forced evictions");

        // Phase B: same hammer, now racing window resets — the interleaving
        // the old read-side scheme double-counted under.
        let resetter = {
            let budgets = budgets.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    budgets.reset_window();
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };
        hammer("b");
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "readers observed the live count");
        }
        resetter.join().unwrap();

        // Every charge inserted one fresh meter and none was reinserted, so
        // at most inserted - resident meters can ever have been evicted
        // (resets drop entries without counting them as evictions). The old
        // scheme could exceed this bound by counting an eviction twice.
        let resident: u64 = ["a", "b"]
            .iter()
            .flat_map(|phase| (0..WRITERS).map(move |w| (phase, w)))
            .map(|(phase, w)| {
                (0..CHARGES_PER_WRITER)
                    .filter(|i| budgets.used(&format!("{phase}-w{w}-{i}")) > 0)
                    .count() as u64
            })
            .sum();
        let final_count = budgets.evicted_meters();
        assert!(final_count >= after_phase_a, "ledger survives resets");
        assert!(
            final_count <= (2 * WRITERS * CHARGES_PER_WRITER) as u64 - resident,
            "counted more evictions ({final_count}) than meters that left the shards"
        );
        assert_eq!(
            budgets.evicted_meters(),
            final_count,
            "quiescent reads are stable"
        );
    }

    #[test]
    fn eviction_count_exact_single_threaded() {
        // Exactness without concurrency noise: fill one logical window past
        // total capacity and check the ledger equals inserted - resident.
        let budgets = TenantBudgets::new(None);
        const INSERTED: usize = 100_000;
        for i in 0..INSERTED {
            budgets.charge(&format!("t{i}"), 1).unwrap();
        }
        let resident = (0..INSERTED)
            .filter(|i| budgets.used(&format!("t{i}")) > 0)
            .count();
        assert_eq!(
            budgets.evicted_meters(),
            (INSERTED - resident) as u64,
            "every eviction counted exactly once"
        );
    }
}
