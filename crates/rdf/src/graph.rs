//! An indexed, in-memory RDF graph with **columnar** storage.
//!
//! Triples are stored as interned id-triples in three rotated, sorted
//! columnar arrays (SPO, POS, OSP) so every bound/unbound combination of a
//! triple pattern is answerable with a binary-search range scan over a
//! contiguous `Vec` — the layout production triple stores persist, which is
//! exactly why the [`crate::snapshot`] format can be the same bytes on disk
//! as in memory.
//!
//! Mutation happens through a small sorted **delta overlay** (B-tree sets,
//! the seed implementation's structure) that is merged into the columns when
//! it grows past a fraction of the sealed size, and [`Graph::seal`] forces a
//! full merge. Scans interleave the sealed columns with the overlay in sort
//! order, so results are byte-identical to the historical all-B-tree
//! implementation regardless of when compaction happened. Bulk construction
//! ([`Graph::from_term_triples`]) skips the overlay entirely: intern, sort
//! each column once, done — the path datagen and the partitioner use.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::interner::{Interner, TermId};
use crate::term::Term;

/// A triple of interned term ids, in (subject, predicate, object) order.
pub type IdTriple = [TermId; 3];

/// A raw column entry. Rotation depends on the column: SPO holds
/// `(s, p, o)`, POS holds `(p, o, s)`, OSP holds `(o, s, p)`.
type Row = (u32, u32, u32);

/// Compact the delta overlay once it reaches this many triples (or a
/// quarter of the sealed size, whichever is larger): sealed size then grows
/// by at least 25% per compaction, so a build of `n` inserts costs
/// `O(n log n)` total merge work instead of `O(n²)`.
const DELTA_COMPACT_FLOOR: usize = 4096;

/// An in-memory RDF graph with sorted columnar SPO/POS/OSP indexes, a
/// B-tree delta overlay for incremental inserts, and a shared term interner.
#[derive(Default, Debug)]
pub struct Graph {
    interner: Interner,
    spo: Vec<Row>,
    pos: Vec<Row>,
    osp: Vec<Row>,
    delta_spo: BTreeSet<Row>,
    delta_pos: BTreeSet<Row>,
    delta_osp: BTreeSet<Row>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a **sealed** graph from term triples in one pass: terms are
    /// interned in `(s, p, o)` order per triple (identical id assignment to
    /// repeated [`Graph::insert`] calls over the same sequence), duplicates
    /// dropped, each column sorted exactly once. This is the bulk path the
    /// dataset generator and the [`crate::Partitioner`] use; the result is
    /// immediately snapshot-writable.
    pub fn from_term_triples<I>(triples: I) -> Self
    where
        I: IntoIterator<Item = (Term, Term, Term)>,
    {
        let mut interner = Interner::new();
        let iter = triples.into_iter();
        let mut spo: Vec<Row> = Vec::with_capacity(iter.size_hint().0);
        for (s, p, o) in iter {
            let s = interner.intern(s);
            let p = interner.intern(p);
            let o = interner.intern(o);
            spo.push((s.0, p.0, o.0));
        }
        spo.sort_unstable();
        spo.dedup();
        let mut pos: Vec<Row> = spo.iter().map(|&(s, p, o)| (p, o, s)).collect();
        pos.sort_unstable();
        let mut osp: Vec<Row> = spo.iter().map(|&(s, p, o)| (o, s, p)).collect();
        osp.sort_unstable();
        Graph {
            interner,
            spo,
            pos,
            osp,
            delta_spo: BTreeSet::new(),
            delta_pos: BTreeSet::new(),
            delta_osp: BTreeSet::new(),
        }
    }

    /// Reassemble a sealed graph from its interner and raw sorted columns —
    /// the snapshot loader's constructor. The caller (the snapshot module)
    /// has already validated sortedness, rotation consistency, and id
    /// bounds; debug builds re-check sortedness.
    pub(crate) fn from_columns(
        interner: Interner,
        spo: Vec<Row>,
        pos: Vec<Row>,
        osp: Vec<Row>,
    ) -> Self {
        debug_assert!(spo.windows(2).all(|w| w[0] < w[1]), "spo column sorted");
        debug_assert!(pos.windows(2).all(|w| w[0] < w[1]), "pos column sorted");
        debug_assert!(osp.windows(2).all(|w| w[0] < w[1]), "osp column sorted");
        Graph {
            interner,
            spo,
            pos,
            osp,
            delta_spo: BTreeSet::new(),
            delta_pos: BTreeSet::new(),
            delta_osp: BTreeSet::new(),
        }
    }

    /// The sealed columns, if the delta overlay is empty. The snapshot
    /// writer refuses unsealed graphs through this (typed, at its layer).
    pub(crate) fn sealed_columns(&self) -> Option<(&[Row], &[Row], &[Row])> {
        self.is_sealed()
            .then_some((&self.spo[..], &self.pos[..], &self.osp[..]))
    }

    /// True if every triple lives in the sorted columns (the delta overlay
    /// is empty) — the precondition for writing a snapshot.
    pub fn is_sealed(&self) -> bool {
        self.delta_spo.is_empty()
    }

    /// Merge the delta overlay into the sorted columns. Idempotent; a
    /// sealed graph is required by the snapshot writer and is also the
    /// fastest to scan (every range is one contiguous slice).
    pub fn seal(&mut self) {
        if self.is_sealed() {
            return;
        }
        merge_delta(&mut self.spo, std::mem::take(&mut self.delta_spo));
        merge_delta(&mut self.pos, std::mem::take(&mut self.delta_pos));
        merge_delta(&mut self.osp, std::mem::take(&mut self.delta_osp));
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.spo.len() + self.delta_spo.len()
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access to the term interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a term without asserting any triple.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Look up the id of a term, if it occurs anywhere in the graph's interner.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id back to a term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Insert a triple of terms. Returns `true` if the triple was new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.interner.intern(s);
        let p = self.interner.intern(p);
        let o = self.interner.intern(o);
        self.insert_ids([s, p, o])
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    ///
    /// New triples land in the delta overlay; once the overlay reaches a
    /// quarter of the sealed column size it is merged in, keeping
    /// insert-heavy builds `O(n log n)` overall.
    pub fn insert_ids(&mut self, t: IdTriple) -> bool {
        let row = (t[0].0, t[1].0, t[2].0);
        if self.spo.binary_search(&row).is_ok() {
            return false;
        }
        let added = self.delta_spo.insert(row);
        if added {
            let (s, p, o) = row;
            self.delta_pos.insert((p, o, s));
            self.delta_osp.insert((o, s, p));
            if self.delta_spo.len() >= DELTA_COMPACT_FLOOR.max(self.spo.len() / 4) {
                self.seal();
            }
        }
        added
    }

    /// True if the exact triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.term_id(s), self.term_id(p), self.term_id(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_row((s.0, p.0, o.0)),
            _ => false,
        }
    }

    fn contains_row(&self, row: Row) -> bool {
        self.spo.binary_search(&row).is_ok() || self.delta_spo.contains(&row)
    }

    /// Iterate over all triples matching a pattern of optionally-bound ids.
    ///
    /// Chooses the most selective index for the bound positions. Results are
    /// produced in index order; every yielded triple is in (s, p, o) order.
    pub fn matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let mut out = Vec::new();
        self.for_each_matching(s, p, o, |t| {
            out.push(t);
            true
        });
        out
    }

    /// Count the triples matching a pattern without materializing them.
    pub fn count_matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            // Prefix-bound patterns are pure range subtractions on the
            // sealed column plus a bounded overlay count — no iteration.
            (Some(s), Some(p), None) => self.scan2(Col::Spo, s.0, p.0).count(),
            (Some(s), None, None) => self.scan1(Col::Spo, s.0).count(),
            (None, Some(p), Some(o)) => self.scan2(Col::Pos, p.0, o.0).count(),
            (None, Some(p), None) => self.scan1(Col::Pos, p.0).count(),
            (None, None, Some(o)) => self.scan1(Col::Osp, o.0).count(),
            (Some(s), None, Some(o)) => self.scan2(Col::Osp, o.0, s.0).count(),
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_row((s.0, p.0, o.0))),
            (None, None, None) => self.len(),
        }
    }

    /// Visit each triple matching the pattern; the callback returns `false`
    /// to stop early (used by LIMIT-style early exits).
    pub fn for_each_matching<F>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) where
        F: FnMut(IdTriple) -> bool,
    {
        #[inline]
        fn t(a: u32, b: u32, c: u32) -> IdTriple {
            [TermId(a), TermId(b), TermId(c)]
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_row((s.0, p.0, o.0)) {
                    f(t(s.0, p.0, o.0));
                }
            }
            (Some(s), Some(p), None) => {
                for (a, b, c) in self.scan2(Col::Spo, s.0, p.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (Some(s), None, None) => {
                for (a, b, c) in self.scan1(Col::Spo, s.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for (b, c, a) in self.scan2(Col::Pos, p.0, o.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, Some(p), None) => {
                for (b, c, a) in self.scan1(Col::Pos, p.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, None, Some(o)) => {
                for (c, a, b) in self.scan1(Col::Osp, o.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                for (c, a, b) in self.scan2(Col::Osp, o.0, s.0) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
            (None, None, None) => {
                for (a, b, c) in self.scan_all(Col::Spo) {
                    if !f(t(a, b, c)) {
                        return;
                    }
                }
            }
        }
    }

    /// Estimated cardinality of a pattern — used for join ordering. Exact for
    /// fully-indexed prefixes, which all our patterns are.
    pub fn cardinality(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (None, None, None) => self.len(),
            _ => self.count_matching(s, p, o),
        }
    }

    /// In-degree of a term: the number of triples in which it is the object.
    /// This powers the literal significance score (Definition 1).
    pub fn in_degree(&self, id: TermId) -> usize {
        self.scan1(Col::Osp, id.0).count()
    }

    /// Out-degree of a term: the number of triples in which it is the subject.
    pub fn out_degree(&self, id: TermId) -> usize {
        self.scan1(Col::Spo, id.0).count()
    }

    /// Per-predicate triple counts, optionally restricted to triples with
    /// literal objects. This is the statistic real endpoints keep for query
    /// planning and answer `GROUP BY ?p` aggregates from; the simulated
    /// endpoint uses it for the same purpose.
    pub fn predicate_counts(&self, literal_objects_only: bool) -> Vec<(TermId, usize)> {
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for (p, o, _s) in self.scan_all(Col::Pos) {
            if literal_objects_only && !self.interner.resolve(TermId(o)).is_literal() {
                continue;
            }
            match out.last_mut() {
                Some((last, n)) if last.0 == p => *n += 1,
                _ => out.push((TermId(p), 1)),
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Per-type instance counts (subjects per `rdf:type` object).
    pub fn type_counts(&self) -> Vec<(TermId, usize)> {
        let type_term = Term::iri(crate::vocab::rdf::TYPE);
        let Some(type_id) = self.interner.get(&type_term) else {
            return Vec::new();
        };
        // The pos scan for `rdf:type` is ordered by object, so each class's
        // triples are consecutive — count runs, exactly as
        // `predicate_counts` does.
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for (_p, o, _s) in self.scan1(Col::Pos, type_id.0) {
            match out.last_mut() {
                Some((last, n)) if last.0 == o => *n += 1,
                _ => out.push((TermId(o), 1)),
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterate over every triple as term references.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&Term, &Term, &Term)> {
        self.scan_all(Col::Spo).map(move |(s, p, o)| {
            (
                self.interner.resolve(TermId(s)),
                self.interner.resolve(TermId(p)),
                self.interner.resolve(TermId(o)),
            )
        })
    }

    fn column(&self, col: Col) -> (&[Row], &BTreeSet<Row>) {
        match col {
            Col::Spo => (&self.spo, &self.delta_spo),
            Col::Pos => (&self.pos, &self.delta_pos),
            Col::Osp => (&self.osp, &self.delta_osp),
        }
    }

    /// All rows of one column whose first component is `a`, interleaving the
    /// sealed slice (binary-searched bounds) with the delta overlay in sort
    /// order.
    fn scan1(&self, col: Col, a: u32) -> MergedScan<'_> {
        self.scan(col, (a, 0, 0), (a, u32::MAX, u32::MAX))
    }

    /// All rows of one column whose first two components are `(a, b)`.
    fn scan2(&self, col: Col, a: u32, b: u32) -> MergedScan<'_> {
        self.scan(col, (a, b, 0), (a, b, u32::MAX))
    }

    /// Every row of one column.
    fn scan_all(&self, col: Col) -> MergedScan<'_> {
        self.scan(col, (0, 0, 0), (u32::MAX, u32::MAX, u32::MAX))
    }

    fn scan(&self, col: Col, lo: Row, hi: Row) -> MergedScan<'_> {
        let (column, delta) = self.column(col);
        let start = column.partition_point(|&r| r < lo);
        let end = column.partition_point(|&r| r <= hi);
        MergedScan {
            col: column[start..end].iter(),
            delta: delta.range((Bound::Included(lo), Bound::Included(hi))),
            col_next: None,
            delta_next: None,
        }
    }
}

#[derive(Clone, Copy)]
enum Col {
    Spo,
    Pos,
    Osp,
}

/// Sorted interleave of a sealed column slice and the delta overlay's range
/// over the same bounds. The two sources are disjoint by construction
/// (inserts check the sealed column first), so a plain two-way merge yields
/// exactly the order one B-tree over all rows would have.
struct MergedScan<'a> {
    col: std::slice::Iter<'a, Row>,
    delta: std::collections::btree_set::Range<'a, Row>,
    col_next: Option<Row>,
    delta_next: Option<Row>,
}

impl Iterator for MergedScan<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.col_next.is_none() {
            self.col_next = self.col.next().copied();
        }
        if self.delta_next.is_none() {
            self.delta_next = self.delta.next().copied();
        }
        match (self.col_next, self.delta_next) {
            (Some(c), Some(d)) => {
                if c <= d {
                    self.col_next = None;
                    if c == d {
                        self.delta_next = None;
                    }
                    Some(c)
                } else {
                    self.delta_next = None;
                    Some(d)
                }
            }
            (Some(c), None) => {
                self.col_next = None;
                Some(c)
            }
            (None, Some(d)) => {
                self.delta_next = None;
                Some(d)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (col_lo, col_hi) = self.col.size_hint();
        let (delta_lo, delta_hi) = self.delta.size_hint();
        let buffered =
            usize::from(self.col_next.is_some()) + usize::from(self.delta_next.is_some());
        (
            col_lo.max(delta_lo) + buffered,
            col_hi.and_then(|c| delta_hi.map(|d| c + d + buffered)),
        )
    }
}

/// Merge a sorted delta set into a sorted column in one linear pass.
fn merge_delta(column: &mut Vec<Row>, delta: BTreeSet<Row>) {
    if delta.is_empty() {
        return;
    }
    let old = std::mem::replace(column, Vec::with_capacity(column.len() + delta.len()));
    let mut a = old.into_iter().peekable();
    let mut b = delta.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    if x == y {
                        b.next();
                    }
                    column.push(x);
                    a.next();
                } else {
                    column.push(y);
                    b.next();
                }
            }
            (Some(_), None) => {
                column.extend(a);
                break;
            }
            (None, Some(_)) => {
                column.extend(b);
                break;
            }
            (None, None) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o1"));
        g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o2"));
        g.insert(Term::iri("s1"), Term::iri("p2"), Term::iri("o1"));
        g.insert(Term::iri("s2"), Term::iri("p1"), Term::iri("o1"));
        g.insert(Term::iri("s2"), Term::iri("p2"), Term::en("two"));
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = sample();
        assert_eq!(g.len(), 5);
        assert!(!g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o1")));
        assert_eq!(g.len(), 5);
        // Sealing and re-inserting must still deduplicate (the sealed-column
        // binary search path, not the overlay path).
        g.seal();
        assert!(!g.insert(Term::iri("s1"), Term::iri("p1"), Term::iri("o1")));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn contains_exact() {
        let g = sample();
        assert!(g.contains(&Term::iri("s1"), &Term::iri("p1"), &Term::iri("o1")));
        assert!(!g.contains(&Term::iri("s1"), &Term::iri("p1"), &Term::en("two")));
        assert!(!g.contains(&Term::iri("nope"), &Term::iri("p1"), &Term::iri("o1")));
    }

    #[test]
    fn all_access_patterns_agree() {
        let g = sample();
        let s1 = g.term_id(&Term::iri("s1")).unwrap();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        let o1 = g.term_id(&Term::iri("o1")).unwrap();

        assert_eq!(g.matching(Some(s1), None, None).len(), 3);
        assert_eq!(g.matching(None, Some(p1), None).len(), 3);
        assert_eq!(g.matching(None, None, Some(o1)).len(), 3);
        assert_eq!(g.matching(Some(s1), Some(p1), None).len(), 2);
        assert_eq!(g.matching(None, Some(p1), Some(o1)).len(), 2);
        assert_eq!(g.matching(Some(s1), None, Some(o1)).len(), 2);
        assert_eq!(g.matching(Some(s1), Some(p1), Some(o1)).len(), 1);
        assert_eq!(g.matching(None, None, None).len(), 5);
    }

    #[test]
    fn sealed_and_unsealed_scans_agree() {
        // The same triples through the overlay path and through seal() must
        // answer every pattern shape with identical bytes in identical
        // order — the invariant the snapshot identity rests on.
        let unsealed = sample();
        let mut sealed = sample();
        sealed.seal();
        assert!(sealed.is_sealed() && !unsealed.is_sealed());
        let ids = [None, Some(TermId(0)), Some(TermId(1)), Some(TermId(4))];
        for s in ids {
            for p in ids {
                for o in ids {
                    assert_eq!(
                        unsealed.matching(s, p, o),
                        sealed.matching(s, p, o),
                        "pattern ({s:?},{p:?},{o:?})"
                    );
                    assert_eq!(
                        unsealed.count_matching(s, p, o),
                        sealed.count_matching(s, p, o)
                    );
                }
            }
        }
        let a: Vec<_> = unsealed.iter_terms().collect();
        let b: Vec<_> = sealed.iter_terms().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_build_matches_incremental_inserts() {
        let incremental = sample();
        let bulk = Graph::from_term_triples([
            (Term::iri("s1"), Term::iri("p1"), Term::iri("o1")),
            (Term::iri("s1"), Term::iri("p1"), Term::iri("o2")),
            (Term::iri("s1"), Term::iri("p2"), Term::iri("o1")),
            (Term::iri("s2"), Term::iri("p1"), Term::iri("o1")),
            (Term::iri("s2"), Term::iri("p2"), Term::en("two")),
            // A duplicate the bulk path must drop like insert() does.
            (Term::iri("s1"), Term::iri("p1"), Term::iri("o1")),
        ]);
        assert!(bulk.is_sealed());
        assert_eq!(bulk.len(), incremental.len());
        // Same interning order => same ids => identical id-triples.
        assert_eq!(
            bulk.matching(None, None, None),
            incremental.matching(None, None, None)
        );
        for (id, term) in incremental.interner().iter() {
            assert_eq!(bulk.interner().resolve(id), term);
        }
    }

    #[test]
    fn compaction_threshold_keeps_scans_correct() {
        // Push well past the compaction floor so inserts hit both the
        // "overlay" and the "freshly compacted" regimes.
        let mut g = Graph::new();
        let p = Term::iri("p");
        for i in 0..(DELTA_COMPACT_FLOOR * 2 + 7) {
            g.insert(Term::iri(format!("s{i}")), p.clone(), Term::iri("o"));
        }
        assert_eq!(g.len(), DELTA_COMPACT_FLOOR * 2 + 7);
        let p_id = g.term_id(&p).unwrap();
        assert_eq!(g.count_matching(None, Some(p_id), None), g.len());
        let o_id = g.term_id(&Term::iri("o")).unwrap();
        assert_eq!(g.in_degree(o_id), g.len());
    }

    #[test]
    fn matching_yields_spo_order_from_every_index() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        for t in g.matching(None, Some(p1), None) {
            assert_eq!(t[1], p1, "predicate position must hold the predicate");
        }
        let o1 = g.term_id(&Term::iri("o1")).unwrap();
        for t in g.matching(None, None, Some(o1)) {
            assert_eq!(t[2], o1, "object position must hold the object");
        }
    }

    #[test]
    fn degrees() {
        let g = sample();
        let o1 = g.term_id(&Term::iri("o1")).unwrap();
        let s1 = g.term_id(&Term::iri("s1")).unwrap();
        assert_eq!(g.in_degree(o1), 3);
        assert_eq!(g.out_degree(s1), 3);
        assert_eq!(g.in_degree(s1), 0);
    }

    #[test]
    fn early_exit_stops_scan() {
        let g = sample();
        let mut seen = 0;
        g.for_each_matching(None, None, None, |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn count_matches_materialized_len() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        assert_eq!(
            g.count_matching(None, Some(p1), None),
            g.matching(None, Some(p1), None).len()
        );
    }

    #[test]
    fn type_counts_match_a_naive_tally_on_a_many_class_graph() {
        // Many distinct classes with interleaved insert order: the run-walk
        // over the pos scan must agree with a per-triple tally (the shape
        // the old O(distinct-classes)-per-triple scan handled correctly but
        // quadratically).
        let mut g = Graph::new();
        let rdf_type = Term::iri(crate::vocab::rdf::TYPE);
        for i in 0..50 {
            for c in 0..=(i % 7) {
                g.insert(
                    Term::iri(format!("s{i}-{c}")),
                    rdf_type.clone(),
                    Term::iri(format!("Class{c}")),
                );
            }
            // Non-type triples must not be counted.
            g.insert(
                Term::iri(format!("s{i}-0")),
                Term::iri("p"),
                Term::iri(format!("Class{}", i % 7)),
            );
        }
        let counts = g.type_counts();
        let mut naive: std::collections::HashMap<TermId, usize> = std::collections::HashMap::new();
        let type_id = g.term_id(&rdf_type).unwrap();
        for t in g.matching(None, Some(type_id), None) {
            *naive.entry(t[2]).or_default() += 1;
        }
        assert_eq!(counts.len(), naive.len());
        for (class, n) in &counts {
            assert_eq!(naive.get(class), Some(n));
        }
        // Ranked most-populous first, ties by TermId.
        assert!(counts
            .windows(2)
            .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
    }

    #[test]
    fn type_counts_empty_without_rdf_type() {
        assert!(sample().type_counts().is_empty());
    }
}
