//! The Figure 6 / Figure 7 walkthrough: the user asks for books by
//! "Jack Kerouac" published by "Viking Press" but connects both literals
//! directly to `?book` — a structure the data does not have. The QSM's
//! Steiner-tree relaxation (Algorithm 3) expands the graph from both literal
//! seed groups through SPARQL queries, connects them through the book
//! entities, and suggests the corrected query.
//!
//! Run with: `cargo run -p sapphire-bench --example kerouac_relaxation`

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_datagen::{generate, DatasetConfig};

fn main() {
    let graph = generate(DatasetConfig::tiny(42));
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = PredictiveUserModel::initialize(
        vec![endpoint],
        Lexicon::dbpedia_default(),
        SapphireConfig::default(),
        InitMode::Federated,
    )
    .expect("initialization");

    // The structurally naive query of Figure 6 (top-left box).
    let mut session = Session::new(&pum);
    session.set_row(0, TripleInput::new("?book", "writer", "Jack Kerouac"));
    session.set_row(1, TripleInput::new("?book", "publisher", "Viking Press"));
    let result = session.run().expect("run");
    println!("naive query:");
    println!("  ?book —writer→ \"Jack Kerouac\"");
    println!("  ?book —publisher→ \"Viking Press\"");
    println!(
        "answers: {} (the structure doesn't match the data)",
        result.answers.total_rows()
    );

    let relaxation = result
        .suggestions
        .relaxations
        .first()
        .expect("Algorithm 3 connects the two literals");
    println!(
        "\nQSM relaxation: connected {} terminals with {} expansion queries (budget 100)",
        relaxation.relaxed.terminals.len(),
        relaxation.relaxed.queries_used
    );
    println!("Steiner tree edges:");
    for (s, p, o) in &relaxation.relaxed.tree {
        println!("  {s} —{p}→ {o}");
    }

    println!("\nsuggested query (tree generalized to variables):");
    for t in &relaxation.relaxed.query.pattern.triples {
        println!("  {t}");
    }

    // Accept: the prefetched answers contain the two Viking Press books.
    let table = session.apply_relaxation(relaxation);
    println!("\nprefetched answers ({} rows):", table.total_rows());
    print!("{}", table.view().to_table());
}
