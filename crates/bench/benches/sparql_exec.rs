//! SPARQL evaluator benchmarks over the generated dataset: BGP joins of the
//! shapes the workload and the initialization queries use.

use criterion::{criterion_group, criterion_main, Criterion};
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_sparql::{evaluate_select, parse_select, WorkBudget};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let graph = generate(DatasetConfig::small(42));
    let cases = [
        ("point_lookup", r#"SELECT ?tz WHERE { ?c dbo:name "Salt Lake City"@en . ?c dbo:timeZone ?tz }"#),
        (
            "three_hop_join",
            r#"SELECT ?pop WHERE { ?c dbo:name "Australia"@en . ?c dbo:capital ?cap . ?cap dbo:population ?pop }"#,
        ),
        (
            "self_join",
            "SELECT ?p WHERE { ?p a dbo:ChessPlayer . ?p dbo:birthPlace ?place . ?p dbo:deathPlace ?place }",
        ),
        (
            "filter_scan",
            "SELECT ?o WHERE { ?s dbo:name ?o . FILTER(isliteral(?o) && lang(?o) = 'en' && strlen(str(?o)) < 80) }",
        ),
        (
            "group_count",
            "SELECT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?frequency)",
        ),
        (
            "order_limit",
            "SELECT ?c ?p WHERE { ?c a dbo:City ; dbo:population ?p } ORDER BY DESC(?p) LIMIT 1",
        ),
    ];
    let mut group = c.benchmark_group("sparql_exec");
    group.sample_size(20);
    for (name, query) in cases {
        let parsed = parse_select(query).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    evaluate_select(&graph, black_box(&parsed), &mut WorkBudget::unlimited())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
