//! Federation: Sapphire in front of *two* endpoints holding different
//! datasets (people vs places), with the federated query processor doing
//! source selection and a cross-endpoint bound join — the LOD-cloud scenario
//! of the paper's §3 architecture.
//!
//! Run with: `cargo run -p sapphire-bench --example federation`

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_rdf::turtle;

const PEOPLE: &str = r#"
dbo:Person a owl:Class ; rdfs:subClassOf owl:Thing .
res:Ada a dbo:Person ; dbo:name "Ada Lovelace"@en ; dbo:birthPlace res:London .
res:Alan a dbo:Person ; dbo:name "Alan Turing"@en ; dbo:birthPlace res:London .
res:Grace a dbo:Person ; dbo:name "Grace Hopper"@en ; dbo:birthPlace res:NYC .
"#;

const PLACES: &str = r#"
dbo:City a owl:Class ; rdfs:subClassOf owl:Thing .
res:London a dbo:City ; dbo:name "London"@en ; dbo:country res:UK .
res:NYC a dbo:City ; dbo:name "New York City"@en ; dbo:country res:USA .
res:UK a dbo:City ; dbo:name "United Kingdom"@en .
res:USA a dbo:City ; dbo:name "United States"@en .
"#;

fn main() {
    let people: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "people",
        turtle::parse(PEOPLE).expect("people turtle"),
        EndpointLimits::public_endpoint(100_000),
    ));
    let places: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "places",
        turtle::parse(PLACES).expect("places turtle"),
        EndpointLimits::public_endpoint(100_000),
    ));

    // Register both endpoints; initialization runs against each and the
    // caches merge (predicates, literals, classes).
    let pum = PredictiveUserModel::initialize(
        vec![people, places],
        Lexicon::dbpedia_default(),
        SapphireConfig::default(),
        InitMode::Federated,
    )
    .expect("initialization");
    for (name, stats) in pum.init_stats() {
        println!(
            "initialized {name:?}: {} queries, {} literals",
            stats.total_queries(),
            stats.literals_cached
        );
    }

    // Keywords from either dataset complete.
    for typed in ["Lovel", "United"] {
        let texts: Vec<String> = pum
            .complete(typed)
            .suggestions
            .iter()
            .take(3)
            .map(|s| s.text.clone())
            .collect();
        println!("complete {typed:?} → {texts:?}");
    }

    // A query joining people (endpoint 1) with places (endpoint 2): the
    // federated processor bound-joins across sources.
    let out = pum
        .run_str(
            r#"SELECT ?name ?country WHERE {
                 ?p dbo:name ?name ; dbo:birthPlace ?city .
                 ?city dbo:country ?c . ?c dbo:name ?country
               }"#,
        )
        .expect("query parses");
    println!("\ncross-endpoint join ({} rows):", out.answers.len());
    print!("{}", out.answers.to_table());
}
