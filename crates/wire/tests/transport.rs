//! Transport-behavior tests for `WireServer`/`WireClient` — the failure
//! semantics the review of the serving story pinned down:
//!
//! * a frame arriving in chunks spaced wider than the server's idle-poll
//!   deadline must be served, not desynced (the poll tick may fire
//!   mid-frame);
//! * closed connections must be deregistered server-side — a long-running
//!   replica under client reconnect churn must not leak descriptors;
//! * the client's stale-pool redial fires only when the request write
//!   itself failed; once the request is on the wire, a failure surfaces
//!   typed (the router owns failover) instead of silently replaying the
//!   request — and doubling the replica's work — behind the caller's back.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sapphire_core::qcm::{Completion, CompletionResult};
use sapphire_core::MatchSource;
use sapphire_server::{RunPayload, ServerError, ShardService};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions};
use sapphire_wire::codec::{decode_reply, encode_hello, encode_request};
use sapphire_wire::frame::{self, kind};
use sapphire_wire::{
    FaultProxy, WireClient, WireClientConfig, WireReply, WireRequest, WireServer, WireServerConfig,
    MAX_FRAME, WIRE_VERSION,
};

/// A trivial shard: answers every completion with one echo suggestion.
struct StubService;

impl ShardService for StubService {
    fn shard_name(&self) -> String {
        "stub".to_string()
    }

    fn top_k(&self) -> usize {
        3
    }

    fn complete_top(
        &self,
        _tenant: &str,
        typed: &str,
        _k: usize,
    ) -> Result<CompletionResult, ServerError> {
        Ok(CompletionResult {
            suggestions: vec![Completion {
                text: typed.to_string(),
                predicate_iri: None,
                source: MatchSource::SuffixTree,
            }],
            tree_hit: true,
            tree_time: Duration::ZERO,
            bins_time: Duration::ZERO,
            residual_candidates: 0,
        })
    }

    fn run_select_tiered(
        &self,
        _tenant: &str,
        _query: &SelectQuery,
        _tier: usize,
        _budget: Option<Duration>,
    ) -> Result<Arc<RunPayload>, ServerError> {
        Err(ServerError::Backend("stub has no model".to_string()))
    }

    fn execute_raw(&self, _tenant: &str, _query: &Query) -> Result<QueryResult, ServerError> {
        Ok(QueryResult::Solutions(Solutions {
            vars: Vec::new(),
            rows: Vec::new(),
        }))
    }

    fn admission_load(&self) -> (usize, usize) {
        (0, 0)
    }

    fn shed_pressure_tier(&self) -> usize {
        0
    }
}

fn serve_stub(idle_poll: Duration) -> WireServer {
    WireServer::serve(
        Arc::new(StubService),
        "127.0.0.1:0",
        WireServerConfig {
            idle_poll,
            ..WireServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_frame(&mut out, kind, payload).expect("Vec write cannot fail");
    out
}

#[test]
fn chunked_frames_across_idle_polls_are_served_without_desync() {
    let server = serve_stub(Duration::from_millis(10));
    let mut stream = TcpStream::connect(server.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(&frame_bytes(kind::HELLO, &encode_hello(WIRE_VERSION)))
        .unwrap();
    let (k, _) = frame::read_frame(&mut stream, MAX_FRAME).expect("handshake reply");
    assert_eq!(k, kind::HELLO_OK);

    let request = encode_request(&WireRequest::Complete {
        tenant: "t".to_string(),
        term: "dresden".to_string(),
        fetch: 1,
    });
    // Trickle the frame out 3 bytes at a time, pausing well past the
    // server's idle-poll deadline between chunks: the poll tick fires
    // mid-header and mid-payload, and the server must keep its place.
    for chunk in frame_bytes(kind::REQUEST, &request).chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let (k, reply) = frame::read_frame(&mut stream, MAX_FRAME).expect("reply to chunked frame");
    assert_eq!(k, kind::REPLY);
    let (_, result) = decode_reply(&reply).expect("decode reply");
    match result.expect("stub answers completions") {
        WireReply::Completion(c) => assert_eq!(c.suggestions[0].text, "dresden"),
        other => panic!("expected a Completion reply, got {other:?}"),
    }

    // The stream must still be frame-aligned: a whole request on the same
    // connection gets a whole reply.
    stream
        .write_all(&frame_bytes(kind::REQUEST, &request))
        .unwrap();
    let (k, _) = frame::read_frame(&mut stream, MAX_FRAME).expect("second reply");
    assert_eq!(k, kind::REPLY);
    assert_eq!(server.stats().corrupt_frames, 0);
    server.shutdown();
}

/// Poll `cond` for up to two seconds.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn closed_connections_are_deregistered() {
    let server = serve_stub(Duration::from_millis(10));
    let clients: Vec<WireClient> = (0..3)
        .map(|_| {
            WireClient::connect(server.local_addr(), WireClientConfig::default())
                .expect("handshake")
        })
        .collect();
    assert!(
        eventually(|| server.live_connections() == 3),
        "3 live peers must be registered, saw {}",
        server.live_connections()
    );
    // Reconnect churn: every client goes away. The workers notice the
    // closed sockets on their next poll tick and must deregister their
    // connection clones — this is what keeps a long-running replica from
    // leaking one descriptor per churned client.
    drop(clients);
    assert!(
        eventually(|| server.live_connections() == 0),
        "closed connections must deregister, {} still held",
        server.live_connections()
    );
    // The replica still serves new peers afterwards.
    let late = WireClient::connect(server.local_addr(), WireClientConfig::default())
        .expect("post-churn handshake");
    assert!(late.complete_top("t", "a", 1).is_ok());
    assert_eq!(server.stats().accepted, 4);
    server.shutdown();
}

#[test]
fn post_write_timeouts_surface_typed_instead_of_replaying() {
    let server = serve_stub(Duration::from_millis(10));
    let proxy = FaultProxy::start(server.local_addr()).expect("start proxy");
    // Pin the legacy pooled protocol: the discard-and-redial behavior
    // under test is specific to v1's connection-per-call model. The
    // pipelined path's timeout semantics are pinned separately below.
    let client = WireClient::connect(
        proxy.addr(),
        WireClientConfig {
            call_timeout: Duration::from_millis(300),
            max_version: WIRE_VERSION,
            ..WireClientConfig::default()
        },
    )
    .expect("handshake through proxy");

    // Half-open partition: the request reaches the replica (and is
    // executed there), the reply vanishes. The client's read deadline
    // fires *after* a successful write — replaying now would run the
    // request twice and stack a second call_timeout on top, so the
    // failure must surface typed for the router to decide.
    proxy.plan().set_partition_to_client(true);
    match client.complete_top("t", "a", 1) {
        Err(ServerError::Unreachable { reason }) => assert_eq!(reason, "timeout"),
        other => panic!("expected Unreachable(timeout), got {other:?}"),
    }
    let stats = client.transport_stats();
    assert_eq!(
        stats.connects, 1,
        "a post-write timeout must not redial-and-replay"
    );
    assert_eq!(stats.io_errors, 1);

    // Heal the link: the next call redials (the timed-out connection was
    // discarded) and succeeds — the failure was typed, not sticky.
    proxy.plan().set_partition_to_client(false);
    assert!(client.complete_top("t", "b", 1).is_ok());
    assert_eq!(client.transport_stats().connects, 2);
    assert_eq!(client.transport_stats().reconnects, 1);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn pipelined_timeouts_keep_the_connection() {
    let server = serve_stub(Duration::from_millis(10));
    let proxy = FaultProxy::start(server.local_addr()).expect("start proxy");
    let client = WireClient::connect(
        proxy.addr(),
        WireClientConfig {
            call_timeout: Duration::from_millis(300),
            ..WireClientConfig::default()
        },
    )
    .expect("handshake through proxy");
    assert_eq!(client.protocol_version(), 2, "loopback peers negotiate v2");

    // Same half-open partition as the v1 test: the request executes, the
    // reply vanishes, the per-call deadline fires after a successful
    // write. The failure surfaces typed — but on a pipelined connection
    // one call's deadline must NOT shoot the socket every other in-flight
    // call shares; the timed-out id is tombstoned instead.
    proxy.plan().set_partition_to_client(true);
    match client.complete_top("t", "a", 1) {
        Err(ServerError::Unreachable { reason }) => assert_eq!(reason, "timeout"),
        other => panic!("expected Unreachable(timeout), got {other:?}"),
    }
    assert_eq!(client.transport_stats().io_errors, 1);

    // Heal the link: the same connection serves the next call — no redial,
    // no reconnect, and the orphaned reply never desyncs the stream.
    proxy.plan().set_partition_to_client(false);
    assert!(client.complete_top("t", "b", 1).is_ok());
    let stats = client.transport_stats();
    assert_eq!(stats.connects, 1, "a pipelined timeout must not redial");
    assert_eq!(stats.reconnects, 0);
    assert_eq!(stats.corrupt_frames, 0);
    proxy.shutdown();
    server.shutdown();
}
