//! The shared cross-request neighborhood cache for Steiner expansion.
//!
//! Every expansion step of Algorithm 3 costs SPARQL round trips (one for the
//! incoming edges of a vertex, one more for the outgoing edges of an IRI) —
//! the very cost the paper's 100-query budget exists to bound. But the
//! *result* of an expansion is a pure function of the immutable dataset: the
//! neighbor list of `res:Kerouac` is the same for every request that ever
//! explores it. A serving tier handling many concurrent relaxations can
//! therefore amortize expansions across requests: the first request to
//! expand a vertex pays the round trips and publishes the neighbor list
//! here; every later request — any session, any thread — gets the list as a
//! pointer bump.
//!
//! **Determinism is preserved by charging budget as if the queries ran.**
//! The exploration frontier of Algorithm 3 depends on `budget_left` (both
//! the per-expansion affordability check and the sibling-fan-out heuristic),
//! so a cache hit that cost *nothing* would let a warm run explore further
//! than a cold one and produce a different tree. A hit instead debits
//! exactly the budget a cold expansion of that vertex would have debited —
//! the search makes byte-identical decisions, only the round trips are
//! skipped. The savings are visible in [`NeighborhoodStats::queries_saved`],
//! not in the relaxation output.
//!
//! Sharded like the server's response cache (a crate-internal `ShardedLru`
//! of independently locked [`BoundedCache`](crate::BoundedCache) LRUs), so
//! concurrent relaxations contend only on actual key collisions. Values are
//! `Arc`'d so a hit never deep-clones a neighbor list under the shard lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sapphire_rdf::Term;

use crate::cache::ShardedLru;

/// One discovered neighbor of an expanded vertex:
/// `(neighbor, predicate, outgoing-from-the-expanded-vertex?)`.
pub type Neighbor = (Term, Term, bool);

/// Counter snapshot of a [`NeighborhoodCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborhoodStats {
    /// Expansions served from the cache (no SPARQL issued).
    pub hits: u64,
    /// Expansions that found no cached neighbor list.
    pub misses: u64,
    /// Neighbor lists published into the cache.
    pub fills: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// SPARQL expansion queries actually executed (cold expansions).
    pub queries_executed: u64,
    /// SPARQL expansion queries *not* executed because the neighbor list was
    /// cached — the budget was still charged (see the module docs), so this
    /// is pure round-trip savings.
    pub queries_saved: u64,
}

impl NeighborhoodStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, sharded, concurrent map `Term → Arc<Vec<Neighbor>>` shared by
/// every Steiner relaxation running against one model.
#[derive(Debug)]
pub struct NeighborhoodCache {
    shards: ShardedLru<Term, Arc<Vec<Neighbor>>>,
    fills: AtomicU64,
    queries_executed: AtomicU64,
    queries_saved: AtomicU64,
}

impl NeighborhoodCache {
    /// `shards` independent LRUs of `capacity_per_shard` entries each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        NeighborhoodCache {
            shards: ShardedLru::new(shards, capacity_per_shard),
            fills: AtomicU64::new(0),
            queries_executed: AtomicU64::new(0),
            queries_saved: AtomicU64::new(0),
        }
    }

    /// The cached neighbor list of `term`, if any (counts a hit or miss and
    /// refreshes LRU recency).
    pub fn get(&self, term: &Term) -> Option<Arc<Vec<Neighbor>>> {
        self.shards.get(term)
    }

    /// Publish the neighbor list of `term`.
    pub fn fill(&self, term: Term, neighbors: Arc<Vec<Neighbor>>) {
        self.fills.fetch_add(1, Ordering::Relaxed);
        self.shards.insert(term, neighbors);
    }

    /// Record `n` SPARQL expansion queries actually executed.
    pub fn note_executed(&self, n: u64) {
        self.queries_executed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` SPARQL expansion queries skipped thanks to a hit.
    pub fn note_saved(&self, n: u64) {
        self.queries_saved.fetch_add(n, Ordering::Relaxed);
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot, aggregated across shards.
    pub fn stats(&self) -> NeighborhoodStats {
        let lru = self.shards.stats();
        NeighborhoodStats {
            hits: lru.hits,
            misses: lru.misses,
            evictions: lru.evictions,
            fills: self.fills.load(Ordering::Relaxed),
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            queries_saved: self.queries_saved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighbor(name: &str) -> Neighbor {
        (Term::iri(name), Term::iri("p"), true)
    }

    #[test]
    fn hit_miss_fill_counters() {
        let cache = NeighborhoodCache::new(4, 8);
        let v = Term::iri("v");
        assert!(cache.get(&v).is_none());
        cache.fill(v.clone(), Arc::new(vec![neighbor("a"), neighbor("b")]));
        let hit = cache.get(&v).expect("filled entry");
        assert_eq!(hit.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.fills), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < f64::EPSILON);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bounded_across_shards() {
        let cache = NeighborhoodCache::new(2, 4);
        for i in 0..100 {
            cache.fill(Term::iri(format!("v{i}")), Arc::new(Vec::new()));
        }
        assert!(cache.len() <= 8, "2 shards x 4 entries");
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn hits_are_pointer_bumps() {
        let cache = NeighborhoodCache::new(1, 4);
        let v = Term::iri("v");
        let list = Arc::new(vec![neighbor("a")]);
        cache.fill(v.clone(), list.clone());
        let hit = cache.get(&v).unwrap();
        assert!(Arc::ptr_eq(&hit, &list), "no deep clone on a hit");
    }

    #[test]
    fn query_accounting() {
        let cache = NeighborhoodCache::new(1, 4);
        cache.note_executed(2);
        cache.note_saved(4);
        let stats = cache.stats();
        assert_eq!(stats.queries_executed, 2);
        assert_eq!(stats.queries_saved, 4);
    }
}
