//! Cross-crate property-based tests on the reproduction's core invariants.

use proptest::prelude::*;

use sapphire_core::bins::{assign_tasks, LitId, ResidualBins};
use sapphire_core::{CachedData, SapphireConfig};
use sapphire_rdf::{ntriples, Graph, Term};
use sapphire_sparql::{evaluate_select, parse_select, WorkBudget};

proptest! {
    /// N-Triples serialization round-trips arbitrary term-shaped graphs.
    #[test]
    fn ntriples_roundtrip(
        triples in proptest::collection::vec(
            ("[a-z]{1,8}", "[a-z]{1,8}", "[ -~]{0,20}"),
            1..30,
        )
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert(
                Term::iri(format!("http://x/{s}")),
                Term::iri(format!("http://x/{p}")),
                Term::en(o.clone()),
            );
        }
        let text = ntriples::serialize(&g);
        let g2 = ntriples::parse(&text).expect("serialized graph parses");
        prop_assert_eq!(g.len(), g2.len());
        for (s, p, o) in g.iter_terms() {
            prop_assert!(g2.contains(s, p, o));
        }
    }

    /// Algorithm 1 is a partition: every literal assigned exactly once, and
    /// the per-worker load never exceeds ⌈n/P⌉ except for the final worker's
    /// remainder absorption.
    #[test]
    fn algorithm1_partition_invariants(
        sizes in proptest::collection::vec(0usize..40, 1..12),
        p in 1usize..9,
    ) {
        let mut next: u32 = 0;
        let owned: Vec<Vec<LitId>> = sizes
            .iter()
            .map(|&s| {
                let v: Vec<LitId> = (next..next + s as u32).collect();
                next += s as u32;
                v
            })
            .collect();
        let bins: Vec<&[LitId]> = owned.iter().map(Vec::as_slice).collect();
        let tasks = assign_tasks(&bins, p);
        prop_assert_eq!(tasks.len(), p);
        let mut seen: Vec<LitId> = tasks
            .iter()
            .flatten()
            .flat_map(|seg| bins[seg.bin][seg.range.clone()].iter().copied())
            .collect();
        seen.sort_unstable();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(seen, (0..total as u32).collect::<Vec<_>>());
    }

    /// The parallel residual scan finds exactly what a sequential scan finds,
    /// for any worker count.
    #[test]
    fn parallel_scan_equivalence(
        literals in proptest::collection::vec("[a-d]{1,12}", 1..60),
        needle in "[a-d]{1,3}",
        p in 1usize..6,
    ) {
        let mut bins = ResidualBins::new();
        for l in &literals {
            bins.add(l.clone());
        }
        let mut parallel: Vec<LitId> = bins
            .scan_parallel(0..20, p, |s| s.contains(needle.as_str()).then_some(1.0))
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        parallel.sort_unstable();
        let sequential: Vec<LitId> = (0..bins.len() as u32)
            .filter(|&id| bins.literal(id).contains(needle.as_str()))
            .collect();
        prop_assert_eq!(parallel, sequential);
    }

    /// QCM lookups through the whole cache (tree + bins) return every cached
    /// literal containing the probe, regardless of how the significance split
    /// distributed literals between tree and bins.
    #[test]
    fn cache_split_is_lossless_for_lookup(
        literals in proptest::collection::vec("[a-c]{2,10}", 1..40),
        capacity in 0usize..20,
        probe in "[a-c]{1,2}",
    ) {
        let config = SapphireConfig {
            suffix_tree_capacity: capacity,
            processes: 2,
            gamma: 20,
            ..SapphireConfig::default()
        };
        let scored: Vec<(String, u64)> =
            literals.iter().enumerate().map(|(i, l)| (l.clone(), i as u64)).collect();
        let cache = CachedData::from_raw(vec![], scored, &config);
        let mut found: Vec<String> = cache
            .tree_lookup(&probe, usize::MAX)
            .into_iter()
            .map(|m| m.text)
            .collect();
        // Residual scan from length 0: emulate by searching the whole band.
        for len in 0..20 {
            let needle = probe.to_lowercase();
            for &id in cache.bins.bin(len) {
                if cache.bins.literal(id).to_lowercase().contains(&needle) {
                    found.push(cache.bins.literal(id).to_string());
                }
            }
        }
        found.sort();
        found.dedup();
        let mut expected: Vec<String> =
            literals.iter().filter(|l| l.contains(probe.as_str())).cloned().collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(found, expected);
    }

    /// DISTINCT never increases result counts and is idempotent; LIMIT caps.
    #[test]
    fn select_modifier_invariants(
        names in proptest::collection::vec("[a-f]{1,6}", 1..25),
        limit in 1usize..10,
    ) {
        let mut g = Graph::new();
        for (i, n) in names.iter().enumerate() {
            g.insert(
                Term::iri(format!("http://x/e{i}")),
                Term::iri("http://x/name"),
                Term::en(n.clone()),
            );
        }
        let all = parse_select("SELECT ?n WHERE { ?s <http://x/name> ?n }").unwrap();
        let distinct = parse_select("SELECT DISTINCT ?n WHERE { ?s <http://x/name> ?n }").unwrap();
        let limited =
            parse_select(&format!("SELECT ?n WHERE {{ ?s <http://x/name> ?n }} LIMIT {limit}")).unwrap();
        let mut b = WorkBudget::unlimited();
        let r_all = evaluate_select(&g, &all, &mut b).unwrap();
        let r_distinct = evaluate_select(&g, &distinct, &mut b).unwrap();
        let r_limited = evaluate_select(&g, &limited, &mut b).unwrap();
        prop_assert!(r_distinct.len() <= r_all.len());
        prop_assert!(r_limited.len() <= limit);
        let mut uniq: Vec<&str> = r_all.values("n").map(|t| t.lexical()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(r_distinct.len(), uniq.len());
    }
}
