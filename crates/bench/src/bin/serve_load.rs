//! Closed-loop load generator for the `sapphire-server` serving tier.
//!
//! Drives N concurrent simulated users against ONE shared `SapphireServer`
//! (one `Arc`'d graph + Predictive User Model — no per-session copies). Each
//! user replays Appendix-B session scripts: per-keystroke QCM completions
//! for the keywords they type, then a QSM "Run" per question. Reports
//! throughput and p50/p95/p99 latency per request class as JSON, and writes
//! the same report to `BENCH_serve.json` as the baseline for later scaling
//! work.
//!
//! Usage: `cargo run --release -p sapphire-bench --bin serve_load
//!         [--users 32] [--rounds 3] [--scale tiny|small|medium]
//!         [--inflight N] [--queue N]`
//!
//! The dataset seed and workload are fixed, so request *streams* are
//! reproducible; only latencies vary run to run. All load-shed requests
//! surface as typed errors and are counted, never panicked on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sapphire_bench::{dataset_for, experiment_config};
use sapphire_core::prelude::*;
use sapphire_core::session::Modifiers;
use sapphire_core::InitMode;
use sapphire_datagen::generate;
use sapphire_datagen::workload::appendix_b;
use sapphire_server::{SapphireServer, ServerConfig, ServerError};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Latency samples and rejection counters for one request class.
#[derive(Debug, Default, Clone)]
struct ClassStats {
    latencies_us: Vec<u64>,
    overloaded: u64,
    queue_timeout: u64,
    quota: u64,
    invalid: u64,
}

impl ClassStats {
    fn record(&mut self, started: Instant, result: &Result<(), ServerError>) {
        match result {
            Ok(()) => self.latencies_us.push(started.elapsed().as_micros() as u64),
            Err(ServerError::Overloaded { .. }) => self.overloaded += 1,
            Err(ServerError::QueueTimeout { .. }) => self.queue_timeout += 1,
            Err(ServerError::QuotaExhausted { .. }) => self.quota += 1,
            Err(_) => self.invalid += 1,
        }
    }

    fn merge(&mut self, other: ClassStats) {
        self.latencies_us.extend(other.latencies_us);
        self.overloaded += other.overloaded;
        self.queue_timeout += other.queue_timeout;
        self.quota += other.quota;
        self.invalid += other.invalid;
    }

    fn rejected(&self) -> u64 {
        self.overloaded + self.queue_timeout + self.quota
    }

    fn json(&self, wall: Duration) -> String {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let count = sorted.len();
        let throughput = count as f64 / wall.as_secs_f64().max(1e-9);
        format!(
            "{{\"completed\": {count}, \"throughput_rps\": {throughput:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"rejected_overloaded\": {}, \"rejected_queue_timeout\": {}, \
             \"rejected_quota\": {}, \"invalid\": {}}}",
            pct(50.0),
            pct(95.0),
            pct(99.0),
            self.overloaded,
            self.queue_timeout,
            self.quota,
            self.invalid
        )
    }
}

fn main() {
    let users = arg("--users", 32);
    let rounds = arg("--rounds", 3);
    // Baseline scale is tiny so the reference numbers are quick to
    // regenerate; pass `--scale small|medium` for a heavier run.
    let scale_label = {
        let args: Vec<String> = std::env::args().collect();
        let requested = args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "tiny".to_string());
        if !["tiny", "small", "medium"].contains(&requested.as_str()) {
            // `dataset_for` falls back to small; keep the report label honest.
            eprintln!("warning: unknown scale {requested:?}, using \"small\"");
            "small".to_string()
        } else {
            requested
        }
    };
    let dataset = dataset_for(&scale_label);

    eprintln!("(generating dataset + initializing shared model…)");
    let graph = generate(dataset);
    let triple_count = graph.len();
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            experiment_config(),
            InitMode::Federated,
        )
        .expect("initialization"),
    );

    // Service posture: hardware-sized concurrency (floored at 8 so cramped
    // CI boxes still exercise real parallelism), a finite queue, and no
    // tenant quotas — overload shedding comes from the gate alone.
    let default_in_flight = ServerConfig::default().max_in_flight.max(8);
    let max_in_flight = arg("--inflight", default_in_flight);
    let max_queue_depth = arg("--queue", max_in_flight * 4);
    let config = ServerConfig {
        max_in_flight,
        max_queue_depth,
        queue_wait: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = Arc::new(SapphireServer::new(pum, config));

    let questions = appendix_b();
    eprintln!(
        "(driving {users} users x {rounds} rounds over {} scripted questions…)",
        questions.len()
    );

    let started = Instant::now();
    let (mut qcm, mut qsm) = (ClassStats::default(), ClassStats::default());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for user in 0..users {
            let server = server.clone();
            let questions = &questions;
            handles.push(scope.spawn(move || {
                let mut qcm = ClassStats::default();
                let mut qsm = ClassStats::default();
                let session = server
                    .open_session(&format!("user-{user}"))
                    .expect("session registry sized for the fleet");
                for round in 0..rounds {
                    // Each user walks the question list from its own offset,
                    // so the mix of in-flight queries varies while the total
                    // workload stays fixed.
                    for qi in 0..questions.len() {
                        let q = &questions[(qi + user + round) % questions.len()];
                        for (row, input) in q.script.rows.iter().enumerate() {
                            // Per-keystroke QCM on the object keyword.
                            let keyword = input.object.trim_start_matches('?');
                            for end in 1..=keyword.chars().count().min(6) {
                                let prefix: String = keyword.chars().take(end).collect();
                                let t = Instant::now();
                                let r = server.complete(session, &prefix).map(|_| ());
                                qcm.record(t, &r);
                            }
                            server
                                .set_row(session, row, input.clone())
                                .expect("session owned by this thread");
                        }
                        server
                            .set_modifiers(
                                session,
                                Modifiers {
                                    distinct: false,
                                    order_by: q.script.order_by.clone(),
                                    limit: q.script.limit,
                                    count: q.script.count,
                                    filters: q.script.filters.clone(),
                                },
                            )
                            .expect("session owned by this thread");
                        let t = Instant::now();
                        let r = server.run(session).map(|_| ());
                        qsm.record(t, &r);
                    }
                }
                server.close_session(session);
                (qcm, qsm)
            }));
        }
        for h in handles {
            let (c, s) = h.join().expect("no worker panics");
            qcm.merge(c);
            qsm.merge(s);
        }
    });
    let wall = started.elapsed();

    let metrics = server.metrics();
    let cache_stats = |s: sapphire_core::CacheStats| {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_ratio\": {:.3}}}",
            s.hits,
            s.misses,
            s.evictions,
            s.hit_ratio()
        )
    };
    let report = format!(
        "{{\n  \"benchmark\": \"serve_load\",\n  \"config\": {{\"users\": {users}, \
         \"rounds\": {rounds}, \"scale\": \"{scale_label}\", \"triples\": {triple_count}, \
         \"max_in_flight\": {max_in_flight}, \"max_queue_depth\": {max_queue_depth}}},\n  \
         \"wall_seconds\": {:.3},\n  \"total_throughput_rps\": {:.1},\n  \
         \"qcm\": {},\n  \"qsm\": {},\n  \
         \"rejected_total\": {},\n  \
         \"completion_cache\": {},\n  \"run_cache\": {},\n  \
         \"sessions_leaked\": {}\n}}",
        wall.as_secs_f64(),
        (qcm.latencies_us.len() + qsm.latencies_us.len()) as f64 / wall.as_secs_f64().max(1e-9),
        qcm.json(wall),
        qsm.json(wall),
        qcm.rejected() + qsm.rejected(),
        cache_stats(metrics.completion_cache),
        cache_stats(metrics.run_cache),
        metrics.open_sessions,
    );

    println!("{report}");
    if let Err(e) = std::fs::write("BENCH_serve.json", format!("{report}\n")) {
        eprintln!("warning: could not write BENCH_serve.json: {e}");
    } else {
        eprintln!("(wrote BENCH_serve.json)");
    }
}
