//! Configuration knobs, with defaults matching the paper's reported values.

/// All tunable parameters of Sapphire. Field defaults are the constants the
/// paper states it uses; the ablation bench sweeps several of them.
#[derive(Debug, Clone)]
pub struct SapphireConfig {
    /// Number of suggestions returned by the QCM and QSM (`k = 10`, §6.1).
    pub k: usize,
    /// QCM searches residual bins of literal length `|t| ..= |t| + gamma`
    /// (`γ = 10`, §6.1).
    pub gamma: usize,
    /// QSM literal-alternative search covers lengths `|l| - alpha ..= |l| + beta`
    /// (`α = 2`, `β = 3`, §6.2.1).
    pub alpha: usize,
    /// See [`alpha`](Self::alpha).
    pub beta: usize,
    /// Jaro-Winkler similarity threshold (`θ = 0.7`, §6.2.1).
    pub theta: f64,
    /// Maximum cached literal length in characters (80, §5.1).
    pub literal_max_len: usize,
    /// Cached literal language (`"en"`, §5.1).
    pub language: String,
    /// How many significant literals go into the suffix tree (the paper uses
    /// 40K for DBpedia; scale to your dataset).
    pub suffix_tree_capacity: usize,
    /// Number of parallel worker processes `P` for residual-bin scans
    /// (the paper's machine has 8 cores).
    pub processes: usize,
    /// Optional cap on the number of initialization queries sent to an
    /// endpoint ("Sapphire allows the user to set a limit on the number of
    /// queries to issue", §5.1).
    pub init_query_limit: Option<usize>,
    /// Page size for OFFSET/LIMIT pagination during initialization.
    pub init_page_size: usize,
    /// Steiner-tree expansion parameters (§6.2.2).
    pub steiner: SteinerConfig,
    /// Shards of the QSM's cross-request memo caches: the Steiner
    /// neighborhood cache ([`crate::qsm::NeighborhoodCache`]) *and* the two
    /// Algorithm-2 alternative caches (literal and predicate sweeps inside
    /// `AlternativeFinder`) — all three are sharded identically.
    pub neighborhood_cache_shards: usize,
    /// LRU capacity per shard of those same three caches: expanded vertices
    /// whose neighbor lists stay resident, and query terms whose ranked
    /// alternative lists stay resident.
    pub neighborhood_cache_capacity: usize,
}

/// Parameters of the structure-relaxation (Steiner tree) search.
#[derive(Debug, Clone, Copy)]
pub struct SteinerConfig {
    /// SPARQL-query budget for graph expansion (100, §6.2.2) — the budget of
    /// tier 0, the only tier a non-shedding deployment ever runs.
    pub query_budget: usize,
    /// The reduced budgets of the degraded tiers: tier `t > 0` relaxes with
    /// `shed_budgets[t - 1]` expansion queries. Together with
    /// [`query_budget`](Self::query_budget) this forms the serving tier's
    /// budget ladder (see [`budget_for`](Self::budget_for)): under load a
    /// server may *opt in* to answering at a lower rung, trading relaxation
    /// depth for tail latency. Output produced at `t > 0` is flagged
    /// `degraded` and must never share a cache entry with full-tier output.
    pub shed_budgets: [usize; 2],
    /// Edge weight for predicates matching the query (or their alternatives).
    pub weight_query_predicate: f64,
    /// Edge weight for all other predicates; must exceed
    /// [`weight_query_predicate`](Self::weight_query_predicate).
    pub weight_default: f64,
    /// Seed group size: the literal itself plus up to `k - 1` alternatives
    /// (Algorithm 3 line 3).
    pub seeds_per_group: usize,
}

impl SteinerConfig {
    /// The deepest degraded tier; tiers are `0..=MAX_TIER`.
    pub const MAX_TIER: usize = 2;

    /// The expansion budget of `tier`: `query_budget` at tier 0, the ladder
    /// entries below it (clamped to the last rung for out-of-range tiers).
    pub fn budget_for(&self, tier: usize) -> usize {
        match tier {
            0 => self.query_budget,
            t => self.shed_budgets[(t - 1).min(self.shed_budgets.len() - 1)],
        }
    }

    /// The whole ladder, full tier first.
    pub fn budget_ladder(&self) -> [usize; Self::MAX_TIER + 1] {
        [
            self.query_budget,
            self.shed_budgets[0],
            self.shed_budgets[1],
        ]
    }
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            query_budget: 100,
            shed_budgets: [25, 5],
            weight_query_predicate: 1.0,
            weight_default: 2.0,
            seeds_per_group: 3,
        }
    }
}

impl Default for SapphireConfig {
    fn default() -> Self {
        SapphireConfig {
            k: 10,
            gamma: 10,
            alpha: 2,
            beta: 3,
            theta: 0.7,
            literal_max_len: 80,
            language: "en".to_string(),
            suffix_tree_capacity: 40_000,
            processes: 8,
            init_query_limit: None,
            init_page_size: 1_000,
            steiner: SteinerConfig::default(),
            neighborhood_cache_shards: 16,
            neighborhood_cache_capacity: 4096,
        }
    }
}

impl SapphireConfig {
    /// A configuration sized for unit tests: tiny tree, two workers.
    pub fn for_tests() -> Self {
        SapphireConfig {
            suffix_tree_capacity: 64,
            processes: 2,
            init_page_size: 64,
            neighborhood_cache_shards: 4,
            neighborhood_cache_capacity: 256,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SapphireConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.gamma, 10);
        assert_eq!(c.alpha, 2);
        assert_eq!(c.beta, 3);
        assert!((c.theta - 0.7).abs() < f64::EPSILON);
        assert_eq!(c.literal_max_len, 80);
        assert_eq!(c.language, "en");
        assert_eq!(c.steiner.query_budget, 100);
        assert!(c.steiner.weight_query_predicate < c.steiner.weight_default);
    }

    #[test]
    fn budget_ladder_descends_from_the_paper_budget() {
        let s = SteinerConfig::default();
        assert_eq!(s.budget_for(0), s.query_budget);
        let ladder = s.budget_ladder();
        assert_eq!(ladder[0], s.query_budget);
        assert!(
            ladder.windows(2).all(|w| w[0] > w[1]),
            "each rung strictly cheaper: {ladder:?}"
        );
        // Out-of-range tiers clamp to the deepest rung rather than panic.
        assert_eq!(s.budget_for(99), ladder[SteinerConfig::MAX_TIER]);
        // A custom full budget flows through tier 0 untouched.
        let custom = SteinerConfig {
            query_budget: 7,
            ..SteinerConfig::default()
        };
        assert_eq!(custom.budget_for(0), 7);
    }
}
