//! `sapphire-obs`: the observability substrate for every serving tier.
//!
//! Three pieces, all dependency-free and std-only:
//!
//! - **Stage histograms** ([`Histogram`], [`Stage`], [`StageTimer`]): a
//!   lock-free sharded log-bucketed latency histogram per named pipeline
//!   stage. Always on — recording is two relaxed atomics — so per-stage
//!   count/p50/p95/p99/max are available after any run. Instrumenting a
//!   stage is one RAII line: `let _t = obs.time(Stage::QsmScan);`.
//! - **Trace spans + flight recorder** ([`trace::Trace`],
//!   [`trace::FlightRecorder`]): 1-in-N sampled per-request traces (default
//!   off ⇒ near-zero cost) threaded from the entry tier through admission,
//!   coalescing, execution, and cluster scatter (per-shard child spans),
//!   landing in a bounded lock-sharded ring buffer that also keeps the
//!   slowest-N exemplars per stage.
//! - **MetricsHub** ([`MetricsHub`]): a neutral snapshot container every
//!   tier's metric struct converts into, with hand-rolled JSON and
//!   Prometheus-style text exposition.
//!
//! Instrumentation must never perturb what the system computes: nothing in
//! this crate feeds back into request execution, and the serving oracle
//! test pins that sampled and unsampled runs produce byte-identical
//! responses.

pub mod histogram;
pub mod hub;
pub mod trace;

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

pub use histogram::{Histogram, Snapshot};
pub use hub::{MetricsHub, Section, Value};
pub use trace::{FlightRecorder, RequestMark, SpanRecord, Trace, TraceRecord, TraceScope};

/// Every named stage of the serving pipeline, across all tiers.
///
/// The discriminants index histogram arrays; `ALL` and [`Stage::name`] are
/// the single source of truth for report sections and recorder slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Front-end tier: submit → a worker picks the request off its session
    /// queue.
    FrontendQueue = 0,
    /// Admission tier: gate entry → slot grant (0 for immediate grants).
    AdmissionWait,
    /// Single-flight tier: a follower blocking on its leader's scan.
    CoalesceWait,
    /// Response-cache probe (completion or run cache).
    CacheLookup,
    /// QCM model scan (suffix-tree completion sweep).
    QcmScan,
    /// QSM model scan (alternatives + relaxation + execution).
    QsmScan,
    /// The Steiner-tree relaxation inside a QSM scan.
    SteinerRelax,
    /// Cluster tier: one shard round trip within a scatter (per attempt,
    /// hedges and retries included).
    ShardRtt,
    /// Cluster tier: merging shard partials into the final top-k.
    EdgeMerge,
    /// Shared executor: a task sitting in a worker queue before it starts
    /// (scatter shard calls, hedges, residual-bin scan tasks).
    ExecQueue,
    /// Whole request, entry tier → reply.
    EndToEnd,
}

impl Stage {
    /// Number of stages (array sizes; recorder adds one slot for totals).
    pub const COUNT: usize = 11;

    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::FrontendQueue,
        Stage::AdmissionWait,
        Stage::CoalesceWait,
        Stage::CacheLookup,
        Stage::QcmScan,
        Stage::QsmScan,
        Stage::SteinerRelax,
        Stage::ShardRtt,
        Stage::EdgeMerge,
        Stage::ExecQueue,
        Stage::EndToEnd,
    ];

    /// Stable snake_case name used in reports, spans, and exposition.
    pub fn name(self) -> &'static str {
        match self {
            Stage::FrontendQueue => "frontend_queue",
            Stage::AdmissionWait => "admission_wait",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::QcmScan => "qcm_scan",
            Stage::QsmScan => "qsm_scan",
            Stage::SteinerRelax => "steiner_relax",
            Stage::ShardRtt => "shard_rtt",
            Stage::EdgeMerge => "edge_merge",
            Stage::ExecQueue => "exec_queue",
            Stage::EndToEnd => "end_to_end",
        }
    }
}

/// One tier's observability handle: per-stage histograms, the trace
/// sampler, and the flight recorder. Shared as `Arc<Obs>` by whichever
/// components should aggregate together (a server and its front-end; a
/// cluster edge and, in benches, its shards).
pub struct Obs {
    stages: [Histogram; Stage::COUNT],
    recorder: FlightRecorder,
    /// Trace one request in N; 0 disables tracing entirely (the default).
    sample_every: AtomicU32,
    sample_seq: AtomicU64,
    ids: AtomicU64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Histograms on, tracing off.
    pub fn new() -> Obs {
        Obs {
            stages: std::array::from_fn(|_| Histogram::new()),
            recorder: FlightRecorder::default(),
            sample_every: AtomicU32::new(0),
            sample_seq: AtomicU64::new(0),
            ids: AtomicU64::new(1),
        }
    }

    /// Trace one request in `every` (1 = all, 0 = off). Takes effect for
    /// requests that *enter* after the store; in-flight traces complete.
    pub fn set_sampling(&self, every: u32) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    pub fn sampling(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Record one latency observation for a stage, microseconds.
    #[inline]
    pub fn record(&self, stage: Stage, us: u64) {
        self.stages[stage as usize].record(us);
    }

    /// RAII stage timer: records into the stage histogram on drop, and —
    /// when this thread is executing a sampled request — appends a span to
    /// the current trace.
    #[inline]
    pub fn time(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            obs: self,
            stage,
            start: Instant::now(),
            tag: None,
        }
    }

    /// Start a sampled trace for a request entering at this tier, or `None`
    /// (the 1-in-N counter says skip, or tracing is off — one relaxed load).
    pub fn begin_trace(&self, kind: &'static str, tenant: &str) -> Option<Trace> {
        let every = self.sample_every.load(Ordering::Relaxed) as u64;
        if every == 0 {
            return None;
        }
        if !self
            .sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            return None;
        }
        Some(Trace::new(
            self.ids.fetch_add(1, Ordering::Relaxed),
            kind,
            tenant,
        ))
    }

    /// Seal a finished trace into the flight recorder.
    pub fn finish_trace(&self, trace: Trace) {
        self.recorder.push(trace.finish());
    }

    /// Request-entry guard for tiers that own a whole request on one call
    /// stack (the blocking server API, the cluster edge). Times
    /// [`Stage::EndToEnd`], begins a sampled trace, and installs it as the
    /// thread's current context; drop finishes both. Inert when an outer
    /// tier already owns the request (see [`trace::RequestMark`]), so
    /// nesting tiers never double-count.
    pub fn request_scope(&self, kind: &'static str, tenant: &str) -> RequestScope<'_> {
        if trace::in_request() {
            return RequestScope {
                obs: self,
                start: Instant::now(),
                active: None,
            };
        }
        let trace = self.begin_trace(kind, tenant);
        RequestScope {
            obs: self,
            start: Instant::now(),
            active: Some(ActiveRequest {
                _mark: RequestMark::new(),
                scope: TraceScope::enter(trace.clone()),
                trace,
            }),
        }
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    pub fn stage_snapshot(&self, stage: Stage) -> Snapshot {
        self.stages[stage as usize].snapshot()
    }

    /// All stages as [`MetricsHub`] sections (count/p50/p95/p99/max per
    /// stage), skipping stages with no observations.
    pub fn stage_sections(&self, hub: &mut MetricsHub) {
        for stage in Stage::ALL {
            let snap = self.stage_snapshot(stage);
            if snap.count() == 0 {
                continue;
            }
            hub.section(stage.name())
                .field("count", snap.count())
                .field("p50_us", snap.percentile(50.0))
                .field("p95_us", snap.percentile(95.0))
                .field("p99_us", snap.percentile(99.0))
                .field("max_us", snap.max);
        }
    }

    /// The `"stages"` report object: `{"<stage>": {"count": …, …}, …}`.
    pub fn stages_json(&self) -> String {
        let mut hub = MetricsHub::new();
        self.stage_sections(&mut hub);
        hub.to_json()
    }
}

struct ActiveRequest {
    _mark: RequestMark,
    scope: TraceScope,
    trace: Option<Trace>,
}

/// See [`Obs::request_scope`].
pub struct RequestScope<'a> {
    obs: &'a Obs,
    start: Instant,
    active: Option<ActiveRequest>,
}

impl RequestScope<'_> {
    /// The trace this scope opened, if the sampler fired.
    pub fn trace(&self) -> Option<&Trace> {
        self.active.as_ref().and_then(|a| a.trace.as_ref())
    }
}

impl Drop for RequestScope<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            self.obs
                .record(Stage::EndToEnd, self.start.elapsed().as_micros() as u64);
            // Restore the thread context *before* sealing, so the recorder
            // push never races a reader seeing a half-current trace.
            drop(active.scope);
            if let Some(trace) = active.trace {
                self.obs.finish_trace(trace);
            }
        }
    }
}

/// RAII stage timer from [`Obs::time`].
pub struct StageTimer<'a> {
    obs: &'a Obs,
    stage: Stage,
    start: Instant,
    tag: Option<std::borrow::Cow<'static, str>>,
}

impl StageTimer<'_> {
    /// Annotate the span this timer will emit (no effect on the histogram).
    /// Static tags cost nothing; the string materializes only if this
    /// thread is executing a sampled request.
    pub fn tag(&mut self, tag: impl Into<std::borrow::Cow<'static, str>>) {
        self.tag = Some(tag.into());
    }

    /// Elapsed so far, microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        self.obs.record(self.stage, dur_us);
        if let Some((trace, parent)) = trace::current_ctx() {
            trace.add_span(
                self.stage.name(),
                self.start,
                dur_us,
                parent,
                self.tag.take().map(|t| t.into_owned()).unwrap_or_default(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_match_all() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, i);
        }
    }

    #[test]
    fn timers_feed_histograms_always_and_spans_only_when_sampled() {
        let obs = Obs::new();
        {
            let _t = obs.time(Stage::QcmScan);
        }
        assert_eq!(obs.stage_snapshot(Stage::QcmScan).count(), 1);
        assert_eq!(obs.recorder().recorded(), 0);

        obs.set_sampling(1);
        {
            let scope = obs.request_scope("complete", "alice");
            assert!(scope.trace().is_some());
            let _t = obs.time(Stage::QcmScan);
        }
        assert_eq!(obs.stage_snapshot(Stage::QcmScan).count(), 2);
        assert_eq!(obs.stage_snapshot(Stage::EndToEnd).count(), 1);
        assert_eq!(obs.recorder().recorded(), 1);
        let rec = &obs.recorder().slowest(1)[0];
        assert_eq!(rec.kind, "complete");
        assert_eq!(rec.tenant, "alice");
        assert!(rec.spans.iter().any(|s| s.name == "qcm_scan"));
    }

    #[test]
    fn nested_request_scopes_are_inert() {
        let obs = Obs::new();
        obs.set_sampling(1);
        {
            let _outer = obs.request_scope("run", "t");
            let inner = obs.request_scope("run", "t");
            assert!(inner.trace().is_none());
            drop(inner);
            // The inert inner scope recorded nothing.
            assert_eq!(obs.stage_snapshot(Stage::EndToEnd).count(), 0);
        }
        assert_eq!(obs.stage_snapshot(Stage::EndToEnd).count(), 1);
        assert_eq!(obs.recorder().recorded(), 1);
    }

    #[test]
    fn sampling_is_one_in_n() {
        let obs = Obs::new();
        obs.set_sampling(4);
        let mut sampled = 0;
        for _ in 0..16 {
            if let Some(t) = obs.begin_trace("run", "t") {
                obs.finish_trace(t);
                sampled += 1;
            }
        }
        assert_eq!(sampled, 4);
        assert_eq!(obs.recorder().recorded(), 4);
    }

    #[test]
    fn sampling_off_is_the_default_and_yields_no_traces() {
        let obs = Obs::new();
        assert_eq!(obs.sampling(), 0);
        assert!(obs.begin_trace("run", "t").is_none());
        let scope = obs.request_scope("run", "t");
        assert!(scope.trace().is_none());
        drop(scope);
        // End-to-end histograms still record; the recorder stays empty.
        assert_eq!(obs.stage_snapshot(Stage::EndToEnd).count(), 1);
        assert_eq!(obs.recorder().recorded(), 0);
        assert_eq!(obs.recorder().evicted(), 0);
    }

    #[test]
    fn stages_json_emits_only_recorded_stages() {
        let obs = Obs::new();
        obs.record(Stage::AdmissionWait, 5);
        obs.record(Stage::AdmissionWait, 500);
        let json = obs.stages_json();
        assert!(json.starts_with("{\"admission_wait\": {\"count\": 2, "));
        assert!(!json.contains("qsm_scan"));
        assert!(json.contains("\"max_us\": 500"));
    }
}
