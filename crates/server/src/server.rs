//! The multi-session Sapphire server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_core::qsm::QsmOutput;
use sapphire_core::session::{Modifiers, Session, TripleInput};
use sapphire_core::{AnswerTable, CacheStats, PredictiveUserModel};
use sapphire_endpoint::{QueryService, ServiceError};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, WorkBudget};

use crate::admission::{AdmissionController, TenantBudgets};
use crate::error::{from_federation, ServerError};
use crate::registry::{SessionId, SessionRegistry};
use crate::response_cache::{completion_key, run_key, ShardedResponseCache};

/// Tuning knobs of a [`SapphireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Service name (reported through the [`QueryService`] surface).
    pub name: String,
    /// Requests allowed to execute concurrently.
    pub max_in_flight: usize,
    /// Requests allowed to wait for a slot beyond `max_in_flight`; everything
    /// past this is rejected with [`ServerError::Overloaded`].
    pub max_queue_depth: usize,
    /// How long a queued request may wait before a typed
    /// [`ServerError::QueueTimeout`].
    pub queue_wait: Duration,
    /// Per-tenant work budget per accounting window (`None` = unlimited).
    /// Denominated in evaluator work units — see
    /// [`ServerConfig::with_tenant_budget`].
    pub tenant_window_budget: Option<u64>,
    /// Work units charged per QCM completion request.
    pub completion_cost: u64,
    /// Work units charged per run request, plus
    /// [`run_per_pattern_cost`](Self::run_per_pattern_cost) per triple pattern.
    pub run_base_cost: u64,
    /// Extra work units charged per triple pattern in a run request.
    pub run_per_pattern_cost: u64,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per response-cache shard.
    pub cache_capacity_per_shard: usize,
    /// Session-registry shards.
    pub registry_shards: usize,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(8);
        ServerConfig {
            name: "sapphire".to_string(),
            max_in_flight: cores,
            max_queue_depth: cores * 4,
            queue_wait: Duration::from_millis(250),
            tenant_window_budget: None,
            completion_cost: 1,
            run_base_cost: 4,
            run_per_pattern_cost: 4,
            cache_shards: 16,
            cache_capacity_per_shard: 4096,
            registry_shards: 16,
            max_sessions: 65_536,
        }
    }
}

impl ServerConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        ServerConfig {
            max_in_flight: 4,
            max_queue_depth: 8,
            queue_wait: Duration::from_millis(100),
            cache_shards: 4,
            cache_capacity_per_shard: 64,
            registry_shards: 4,
            max_sessions: 256,
            ..Self::default()
        }
    }

    /// Derive the per-tenant window quota from an evaluator [`WorkBudget`] —
    /// the same knob the endpoints use per query, promoted to a service-level
    /// QoS setting. An unlimited budget disables quotas.
    pub fn with_tenant_budget(mut self, budget: &WorkBudget) -> Self {
        self.tenant_window_budget = budget.limit();
        self
    }
}

/// Point-in-time observability snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// QCM completion requests received.
    pub completion_requests: u64,
    /// Run (QSM) requests received.
    pub run_requests: u64,
    /// Raw queries served through the [`QueryService`] surface.
    pub service_requests: u64,
    /// Requests rejected with [`ServerError::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests rejected with [`ServerError::QueueTimeout`].
    pub rejected_queue_timeout: u64,
    /// Requests rejected with [`ServerError::QuotaExhausted`].
    pub rejected_quota: u64,
    /// Tenant meters evicted from the bounded budget-accounting LRU. Each
    /// eviction silently reset some tenant's in-window usage, so a nonzero
    /// value means quotas may have been under-enforced; a growing one means
    /// tenant cardinality exceeds what the meter tracks.
    pub tenant_meter_evictions: u64,
    /// Completion-cache counters.
    pub completion_cache: CacheStats,
    /// Run-cache counters.
    pub run_cache: CacheStats,
    /// Sessions currently open.
    pub open_sessions: usize,
}

#[derive(Debug, Default)]
struct Counters {
    completion_requests: AtomicU64,
    run_requests: AtomicU64,
    service_requests: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_queue_timeout: AtomicU64,
    rejected_quota: AtomicU64,
}

/// Result of a server-side "Run" click.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The query's answers, wrapped for table interaction.
    pub answers: AnswerTable,
    /// QSM suggestions (also retained server-side for
    /// [`SapphireServer::apply_alternative`]).
    pub suggestions: QsmOutput,
    /// True if the query executed (even with zero answers).
    pub executed: bool,
    /// The session's attempt count after this run.
    pub attempts: u32,
    /// True if answers and suggestions came from the response cache.
    pub cached: bool,
}

/// What the run cache stores — the model-derived payload, not the
/// session-specific bookkeeping. Suggestions are shared (`Arc`) because they
/// also land in `SessionEntry::last_suggestions`: committing them must be a
/// pointer bump, not a deep copy of per-alternative answer sets under the
/// session lock.
#[derive(Debug)]
struct CachedRun {
    answers: Solutions,
    executed: bool,
    suggestions: Arc<QsmOutput>,
}

/// A concurrent, multi-session Sapphire query service.
///
/// One `SapphireServer` owns exactly one shared, immutable
/// [`PredictiveUserModel`] behind an [`Arc`] — the knowledge-graph endpoints,
/// the assembled cache (suffix tree + residual bins), the lexica. Sessions
/// are entries in a sharded registry holding only the user's typed state;
/// requests rehydrate a [`Session`] against the shared model for their
/// duration. Every model-touching request passes admission control and
/// per-tenant budgets first, and QCM/QSM responses are memoized in a sharded
/// bounded LRU.
pub struct SapphireServer {
    pum: Arc<PredictiveUserModel>,
    config: ServerConfig,
    registry: SessionRegistry,
    admission: AdmissionController,
    tenants: TenantBudgets,
    completion_cache: ShardedResponseCache<CompletionResult>,
    run_cache: ShardedResponseCache<CachedRun>,
    counters: Counters,
}

impl SapphireServer {
    /// Stand up a server over a shared model.
    pub fn new(pum: Arc<PredictiveUserModel>, config: ServerConfig) -> Self {
        SapphireServer {
            registry: SessionRegistry::new(config.registry_shards, config.max_sessions),
            admission: AdmissionController::new(
                config.max_in_flight,
                config.max_queue_depth,
                config.queue_wait,
            ),
            tenants: TenantBudgets::new(config.tenant_window_budget),
            completion_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            run_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            counters: Counters::default(),
            pum,
            config,
        }
    }

    /// The shared model (e.g. for registering its endpoints elsewhere).
    pub fn model(&self) -> &Arc<PredictiveUserModel> {
        &self.pum
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Open an interactive session for `tenant`.
    pub fn open_session(&self, tenant: &str) -> Result<SessionId, ServerError> {
        self.registry.open(tenant)
    }

    /// Close a session; returns true if it existed.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.registry.close(id)
    }

    /// Replace one triple-pattern row of a session.
    pub fn set_row(
        &self,
        id: SessionId,
        idx: usize,
        input: TripleInput,
    ) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        if idx >= entry.triples.len() {
            entry.triples.resize_with(idx + 1, TripleInput::default);
        }
        entry.triples[idx] = input;
        entry.generation += 1;
        // Suggestions were derived from the rows just replaced; accepting
        // one now would splice its replacement into rows it never described.
        entry.last_suggestions = None;
        Ok(())
    }

    /// Replace a session's query modifiers.
    pub fn set_modifiers(&self, id: SessionId, modifiers: Modifiers) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        entry.modifiers = modifiers;
        entry.generation += 1;
        entry.last_suggestions = None;
        Ok(())
    }

    /// QCM: complete the term being typed in one of `id`'s text boxes.
    ///
    /// Admission-controlled and budget-charged; identical (normalized) terms
    /// across all sessions share one cached response.
    pub fn complete(&self, id: SessionId, typed: &str) -> Result<CompletionResult, ServerError> {
        self.counters
            .completion_requests
            .fetch_add(1, Ordering::Relaxed);
        let tenant = self.registry.get(id)?.lock().unwrap().tenant.clone();
        let permit = self.count_rejection(self.admission.admit())?;
        self.count_rejection(self.tenants.charge(&tenant, self.config.completion_cost))?;
        let key = completion_key(typed);
        if let Some(hit) = self.completion_cache.get(&key) {
            drop(permit);
            return Ok((*hit).clone());
        }
        let result = self.pum.complete(typed);
        self.completion_cache.insert(key, result.clone());
        drop(permit);
        Ok(result)
    }

    /// QSM + execution: press "Run" on session `id`.
    ///
    /// The session is snapshotted under its lock and the lock is *released*
    /// before admission, which may block for the full configured queue wait —
    /// concurrent `complete`/`set_row`/`apply_alternative` calls on the same
    /// session must never stall behind a queued run. The attempt counter and
    /// last suggestions are committed under a fresh lock afterwards, so
    /// concurrent runs of the same session each count; each builds its query
    /// from its own snapshot, and a run whose snapshot has been superseded
    /// (the generation moved while it executed) keeps its attempt but does
    /// not overwrite the newer state's suggestions. The model-derived payload
    /// is memoized across sessions by normalized query; a cache hit still
    /// passes admission (the key requires building the query against the
    /// shared cache) and still consumes quota — budgets are deliberately
    /// request-denominated, so a tenant cannot exceed its window by replaying
    /// one hot query.
    pub fn run(&self, id: SessionId) -> Result<RunOutput, ServerError> {
        self.counters.run_requests.fetch_add(1, Ordering::Relaxed);
        let entry = self.registry.get(id)?;
        let (tenant, triples, modifiers, attempts, generation) = {
            let entry = entry.lock().unwrap();
            (
                entry.tenant.clone(),
                entry.triples.clone(),
                entry.modifiers.clone(),
                entry.attempts,
                entry.generation,
            )
        };
        // Admission comes first: a shed request must cost nothing, and even
        // query building resolves keyword predicates against the shared
        // cache. The quota charge needs the built query's shape, so it
        // follows — an over-budget tenant gives its slot straight back.
        let permit = self.count_rejection(self.admission.admit())?;
        let query = Session::resume(&self.pum, triples, modifiers, attempts).build_query()?;
        let cost = self.run_cost(&query);
        self.count_rejection(self.tenants.charge(&tenant, cost))?;
        let key = run_key(&query);
        let (cached, run) = match self.run_cache.get(&key) {
            Some(hit) => (true, hit),
            None => {
                let outcome = self.pum.run(&query);
                let run = self.run_cache.insert(
                    key,
                    CachedRun {
                        answers: outcome.answers,
                        executed: outcome.executed,
                        suggestions: Arc::new(outcome.suggestions),
                    },
                );
                (false, run)
            }
        };
        drop(permit);
        let attempts = {
            let mut entry = entry.lock().unwrap();
            entry.attempts += 1;
            // Commit suggestions only if they still describe the session's
            // current rows; a superseded run must not clobber a newer run's
            // suggestions with ones the user can no longer see.
            if entry.generation == generation {
                entry.last_suggestions = Some(run.suggestions.clone());
            }
            entry.attempts
        };
        Ok(RunOutput {
            answers: AnswerTable::new(run.answers.clone()),
            suggestions: (*run.suggestions).clone(),
            executed: run.executed,
            attempts,
            cached,
        })
    }

    /// Accept the `alt_index`-th term alternative from `id`'s last run:
    /// updates the session's boxes and returns the prefetched answers
    /// (§4's "almost-instantaneous" accept — no re-execution, so no
    /// admission charge either).
    pub fn apply_alternative(
        &self,
        id: SessionId,
        alt_index: usize,
    ) -> Result<AnswerTable, ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        let suggestions = entry
            .last_suggestions
            .clone()
            .ok_or(ServerError::UnknownSuggestion {
                index: alt_index,
                available: 0,
            })?;
        let alt =
            suggestions
                .alternatives
                .get(alt_index)
                .ok_or(ServerError::UnknownSuggestion {
                    index: alt_index,
                    available: suggestions.alternatives.len(),
                })?;
        let mut session = Session::resume(
            &self.pum,
            entry.triples.clone(),
            entry.modifiers.clone(),
            entry.attempts,
        );
        let answers = session.apply_alternative(alt);
        entry.triples = session.triples;
        entry.generation += 1;
        // The remaining alternatives described the pre-accept rows; a second
        // accept must come from a fresh run.
        entry.last_suggestions = None;
        Ok(answers)
    }

    /// The per-tenant work charged so far in this window.
    pub fn tenant_usage(&self, tenant: &str) -> u64 {
        self.tenants.used(tenant)
    }

    /// Start a fresh tenant-budget accounting window.
    pub fn reset_budget_window(&self) {
        self.tenants.reset_window();
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        ServerMetrics {
            completion_requests: self.counters.completion_requests.load(Ordering::Relaxed),
            run_requests: self.counters.run_requests.load(Ordering::Relaxed),
            service_requests: self.counters.service_requests.load(Ordering::Relaxed),
            rejected_overloaded: self.counters.rejected_overloaded.load(Ordering::Relaxed),
            rejected_queue_timeout: self.counters.rejected_queue_timeout.load(Ordering::Relaxed),
            rejected_quota: self.counters.rejected_quota.load(Ordering::Relaxed),
            tenant_meter_evictions: self.tenants.evicted_meters(),
            completion_cache: self.completion_cache.stats(),
            run_cache: self.run_cache.stats(),
            open_sessions: self.registry.len(),
        }
    }

    fn run_cost(&self, query: &SelectQuery) -> u64 {
        self.config.run_base_cost
            + self.config.run_per_pattern_cost * query.pattern.triples.len() as u64
    }

    fn count_rejection<T>(&self, result: Result<T, ServerError>) -> Result<T, ServerError> {
        if let Err(e) = &result {
            match e {
                ServerError::Overloaded { .. } => {
                    self.counters
                        .rejected_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QueueTimeout { .. } => {
                    self.counters
                        .rejected_queue_timeout
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QuotaExhausted { .. } => {
                    self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        result
    }
}

/// Raw SPARQL surface: lets a `SapphireServer` stand behind a
/// [`ServiceEndpoint`](sapphire_endpoint::ServiceEndpoint) so other
/// deployments can federate over it, with this server's admission control
/// and budgets still enforced.
impl QueryService for SapphireServer {
    fn service_name(&self) -> &str {
        &self.config.name
    }

    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
        self.counters
            .service_requests
            .fetch_add(1, Ordering::Relaxed);
        let cost = match query {
            Query::Select(s) => self.run_cost(s),
            Query::Ask(gp) => {
                self.config.run_base_cost
                    + self.config.run_per_pattern_cost * gp.triples.len() as u64
            }
        };
        let admit = || -> Result<_, ServerError> {
            let permit = self.count_rejection(self.admission.admit())?;
            self.count_rejection(self.tenants.charge(tenant, cost))?;
            Ok(permit)
        };
        let _permit = admit().map_err(ServerError::into_service_error)?;
        self.pum
            .federation()
            .execute_parsed(query)
            .map_err(|e| from_federation(e).into_service_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_core::prelude::*;
    use sapphire_core::InitMode;

    fn pum() -> Arc<PredictiveUserModel> {
        let graph = sapphire_rdf::turtle::parse(
            r#"res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en ."#,
        )
        .unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            graph,
            EndpointLimits::warehouse(),
        ));
        Arc::new(
            PredictiveUserModel::initialize(
                vec![ep],
                Lexicon::dbpedia_default(),
                SapphireConfig::for_tests(),
                InitMode::Federated,
            )
            .unwrap(),
        )
    }

    #[test]
    fn queued_run_does_not_hold_the_session_lock() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 1,
            queue_wait: Duration::from_millis(500),
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let session = server.open_session("alice").unwrap();
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
            .unwrap();
        // Occupy the only execution slot so the run below queues in admission.
        let permit = server.admission.admit().unwrap();
        let queued_run = {
            let server = server.clone();
            std::thread::spawn(move || server.run(session))
        };
        while server.admission.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The queued run must wait *without* the session entry lock: other
        // requests touching the same session proceed immediately.
        let t = std::time::Instant::now();
        server
            .set_row(session, 1, TripleInput::new("?p", "name", "?n"))
            .unwrap();
        assert!(
            t.elapsed() < Duration::from_millis(100),
            "set_row stalled behind a queued run for {:?}",
            t.elapsed()
        );
        drop(permit);
        let out = queued_run
            .join()
            .unwrap()
            .expect("run admitted after release");
        assert!(out.executed);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn superseded_run_does_not_commit_stale_suggestions() {
        let config = ServerConfig {
            max_in_flight: 1,
            max_queue_depth: 4,
            queue_wait: Duration::from_secs(2),
            ..ServerConfig::for_tests()
        };
        let server = Arc::new(SapphireServer::new(pum(), config));
        let session = server.open_session("alice").unwrap();
        // "Kennedys" matches nothing, so its run yields a "Kennedy"
        // alternative — exactly the payload that must NOT survive the commit.
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedys"))
            .unwrap();
        let permit = server.admission.admit().unwrap();
        let stale_run = {
            let server = server.clone();
            std::thread::spawn(move || server.run(session))
        };
        while server.admission.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Supersede the queued run's snapshot while it waits for a slot.
        server
            .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedy"))
            .unwrap();
        drop(permit);
        let out = stale_run.join().unwrap().expect("stale run still served");
        // The run's own output reflects its own snapshot…
        assert_eq!(out.attempts, 1);
        assert!(
            out.suggestions
                .alternatives
                .iter()
                .any(|a| a.replacement == "Kennedy"),
            "stale run produced its snapshot's suggestions"
        );
        // …but its suggestions were not committed against the newer rows:
        // accepting alternative 0 would splice "Kennedy"-for-"Kennedys" into
        // a session that no longer says "Kennedys".
        assert!(matches!(
            server.apply_alternative(session, 0),
            Err(ServerError::UnknownSuggestion { available: 0, .. })
        ));
        // A run of the current state commits normally.
        let fresh = server.run(session).unwrap();
        assert!(fresh.executed);
        assert_eq!(fresh.attempts, 2);
    }
}
