//! Abstract syntax for the SPARQL subset the reproduction needs.
//!
//! The subset covers everything the paper's queries use (Q1–Q10 in Appendix A,
//! the user-study gold queries, and the QSM's generated queries): `SELECT
//! [DISTINCT]`, basic graph patterns, `FILTER` expressions, aggregates with
//! `GROUP BY`, `ORDER BY`, `LIMIT`/`OFFSET`, and `ASK`.

use std::fmt;

use sapphire_rdf::Term;

/// A position in a triple pattern: either a variable or a concrete term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// A variable, stored without the leading `?`.
    Var(String),
    /// A ground RDF term.
    Term(Term),
}

impl TermPattern {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        TermPattern::Var(name.into())
    }

    /// Convenience constructor for an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        TermPattern::Term(Term::iri(value))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// The ground term, if this is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Term(t) => Some(t),
        }
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "?{v}"),
            TermPattern::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern in a basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: TermPattern,
    /// Object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Construct a pattern.
    pub fn new(subject: TermPattern, predicate: TermPattern, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Iterate over the three positions.
    pub fn positions(&self) -> [&TermPattern; 3] {
        [&self.subject, &self.predicate, &self.object]
    }

    /// Variables mentioned in this pattern, in s/p/o order (with duplicates).
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.positions().into_iter().filter_map(|p| p.as_var())
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// Comparison operators in filter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Filter/projection expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// A constant term (IRI or literal).
    Const(Term),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `isLITERAL(e)`.
    IsLiteral(Box<Expr>),
    /// `isIRI(e)`.
    IsIri(Box<Expr>),
    /// `LANG(e)` — language tag as a plain literal (empty if none).
    Lang(Box<Expr>),
    /// `STR(e)` — lexical form as a plain literal.
    Str(Box<Expr>),
    /// `STRLEN(e)` — length in characters.
    StrLen(Box<Expr>),
    /// `CONTAINS(haystack, needle)` — case-sensitive substring test.
    Contains(Box<Expr>, Box<Expr>),
    /// `STRSTARTS(s, prefix)`.
    StrStarts(Box<Expr>, Box<Expr>),
    /// `REGEX(text, pattern [, flags])` — we support literal-substring
    /// patterns plus `^`/`$` anchors, with the `i` flag.
    Regex(Box<Expr>, String, bool),
    /// `LCASE(e)`.
    LCase(Box<Expr>),
    /// `UCASE(e)`.
    UCase(Box<Expr>),
    /// `YEAR(e)` — year of an xsd:date-shaped literal.
    Year(Box<Expr>),
    /// `BOUND(?v)`.
    Bound(String),
}

impl Expr {
    /// All variables mentioned anywhere in the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) | Expr::Bound(v) => out.push(v),
            Expr::Const(_) => {}
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::Contains(a, b)
            | Expr::StrStarts(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e)
            | Expr::IsLiteral(e)
            | Expr::IsIri(e)
            | Expr::Lang(e)
            | Expr::Str(e)
            | Expr::StrLen(e)
            | Expr::LCase(e)
            | Expr::UCase(e)
            | Expr::Year(e) => e.collect_vars(out),
            Expr::Regex(e, _, _) => e.collect_vars(out),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `COUNT(*)`, `COUNT(?v)`, or `COUNT(DISTINCT ?v)`.
    Count {
        /// Deduplicate before counting.
        distinct: bool,
        /// `None` means `COUNT(*)`.
        var: Option<String>,
    },
    /// `SUM(?v)`.
    Sum(String),
    /// `MIN(?v)`.
    Min(String),
    /// `MAX(?v)`.
    Max(String),
    /// `AVG(?v)`.
    Avg(String),
}

/// One item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable.
    Var(String),
    /// An aggregate, optionally aliased with `AS`.
    Agg {
        /// The aggregate function.
        agg: Aggregate,
        /// Output column name. Auto-generated when the query omits `AS`.
        alias: String,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Agg { alias, .. } => alias,
        }
    }
}

/// SELECT projection: explicit items or `*`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *` — all variables in scope, sorted.
    Star,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// A sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (usually a variable).
    pub expr: Expr,
    /// Descending order if true.
    pub descending: bool,
}

/// The body shared by SELECT and ASK: a basic graph pattern plus filters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphPattern {
    /// Triple patterns, in source order.
    pub triples: Vec<TriplePattern>,
    /// Filter expressions (conjunctive).
    pub filters: Vec<Expr>,
}

impl GraphPattern {
    /// All distinct variable names in the pattern, in first-mention order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for t in &self.triples {
            for v in t.variables() {
                if !seen.iter().any(|s| s == v) {
                    seen.push(v.to_string());
                }
            }
        }
        for f in &self.filters {
            for v in f.variables() {
                if !seen.iter().any(|s| s == v) {
                    seen.push(v.to_string());
                }
            }
        }
        seen
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT ... WHERE { ... }`.
    Select(SelectQuery),
    /// `ASK { ... }`.
    Ask(GraphPattern),
}

impl Query {
    /// The SELECT form, if this is one.
    pub fn as_select(&self) -> Option<&SelectQuery> {
        match self {
            Query::Select(s) => Some(s),
            Query::Ask(_) => None,
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// Projection list.
    pub projection: Projection,
    /// WHERE clause.
    pub pattern: GraphPattern,
    /// GROUP BY variables.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// A minimal `SELECT * WHERE { pattern }` query.
    pub fn star(pattern: GraphPattern) -> Self {
        SelectQuery {
            distinct: false,
            projection: Projection::Star,
            pattern,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// True if the projection contains any aggregate.
    pub fn has_aggregates(&self) -> bool {
        match &self.projection {
            Projection::Star => false,
            Projection::Items(items) => items.iter().any(|i| matches!(i, SelectItem::Agg { .. })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_variables_in_order() {
        let mut gp = GraphPattern::default();
        gp.triples.push(TriplePattern::new(
            TermPattern::var("uri"),
            TermPattern::iri("p"),
            TermPattern::var("university"),
        ));
        gp.triples.push(TriplePattern::new(
            TermPattern::var("university"),
            TermPattern::iri("q"),
            TermPattern::var("x"),
        ));
        assert_eq!(gp.variables(), vec!["uri", "university", "x"]);
    }

    #[test]
    fn expr_variables() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Gt,
                Box::new(Expr::StrLen(Box::new(Expr::Var("o".into())))),
                Box::new(Expr::Const(Term::literal("80"))),
            )),
            Box::new(Expr::Bound("s".into())),
        );
        assert_eq!(e.variables(), vec!["o", "s"]);
    }

    #[test]
    fn display_forms() {
        let tp = TriplePattern::new(
            TermPattern::var("s"),
            TermPattern::iri("http://x/p"),
            TermPattern::Term(Term::en("v")),
        );
        assert_eq!(tp.to_string(), "?s <http://x/p> \"v\"@en .");
        assert_eq!(CmpOp::Ge.to_string(), ">=");
    }

    #[test]
    fn select_item_names() {
        assert_eq!(SelectItem::Var("x".into()).name(), "x");
        let agg = SelectItem::Agg {
            agg: Aggregate::Count {
                distinct: true,
                var: Some("uri".into()),
            },
            alias: "c".into(),
        };
        assert_eq!(agg.name(), "c");
    }
}
