//! The front-end's per-session state machine.
//!
//! A session at the evented tier is *data*, not a parked thread: a FIFO
//! queue of not-yet-executed requests plus a phase tag saying where the
//! session currently lives. Exactly one worker operates on a session at a
//! time (the phase tag enforces it), so per-session request order is the
//! submission order — the property the oracle test pins against the
//! thread-per-request tier.

use std::collections::VecDeque;
use std::time::Instant;

use sapphire_core::qcm::CompletionResult;
use sapphire_core::session::{Modifiers, TripleInput};
use sapphire_sparql::{Query, QueryResult};

use crate::admission::AdmissionTicket;
use crate::error::ServerError;
use crate::server::RunOutput;
use sapphire_core::AnswerTable;

/// One request submitted to the evented front-end.
#[derive(Debug)]
pub enum FrontRequest {
    /// QCM: complete the term being typed (admission-controlled).
    Complete {
        /// The text typed so far.
        typed: String,
    },
    /// QSM + execution: press "Run" (admission-controlled).
    Run,
    /// Replace one triple-pattern row (immediate; no admission).
    SetRow {
        /// Row index.
        idx: usize,
        /// The new row content.
        input: TripleInput,
    },
    /// Replace the session's query modifiers (immediate; no admission).
    SetModifiers {
        /// The new modifiers.
        modifiers: Modifiers,
    },
    /// Accept a "did you mean" alternative from the last run (immediate).
    ApplyAlternative {
        /// Index into the last run's alternatives.
        index: usize,
    },
    /// Execute a raw parsed query on the front-end's raw
    /// [`QueryService`](sapphire_endpoint::QueryService) target, billed to
    /// this session's tenant. Admission-controlled when the target is the
    /// session server itself.
    Query {
        /// The parsed query.
        query: Query,
    },
    /// Close the session. Requests already queued behind the close still
    /// execute (and answer `UnknownSession`); the front-end forgets the
    /// session once its queue drains.
    Close,
}

impl FrontRequest {
    /// Stable label for traces and stage metrics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            FrontRequest::Complete { .. } => "complete",
            FrontRequest::Run => "run",
            FrontRequest::SetRow { .. } => "set_row",
            FrontRequest::SetModifiers { .. } => "set_modifiers",
            FrontRequest::ApplyAlternative { .. } => "apply_alternative",
            FrontRequest::Query { .. } => "query",
            FrontRequest::Close => "close",
        }
    }
}

/// The response paired with each [`FrontRequest`] variant.
#[derive(Debug)]
pub enum FrontResponse {
    /// Answer to [`FrontRequest::Complete`].
    Completion(CompletionResult),
    /// Answer to [`FrontRequest::Run`].
    Run(RunOutput),
    /// Answer to [`FrontRequest::ApplyAlternative`].
    Table(AnswerTable),
    /// Answer to [`FrontRequest::Query`].
    Query(QueryResult),
    /// Answer to the state edits ([`SetRow`](FrontRequest::SetRow),
    /// [`SetModifiers`](FrontRequest::SetModifiers)).
    Ack,
    /// Answer to [`FrontRequest::Close`].
    Closed,
}

/// Completion callback: fires exactly once per submitted request, with the
/// response or a typed error. Runs on a front-end worker thread (or, for
/// submissions rejected synchronously, on the submitting thread) — it must
/// not block for long, but it may submit follow-up requests (the closed-loop
/// bench drives itself this way).
pub type ResponseCallback = Box<dyn FnOnce(Result<FrontResponse, ServerError>) + Send>;

/// Where a session currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// No queued work; not scheduled anywhere.
    Idle,
    /// In the reactor's ready queue, waiting for a worker.
    Queued,
    /// A worker is operating on it right now.
    Running,
    /// The head request holds an [`AdmissionTicket`]; the session re-enters
    /// the ready queue when the grant callback (or the deadline sweep)
    /// fires.
    AwaitingGrant,
}

/// A request parked mid-execution on a queued admission ticket.
pub(crate) struct PendingAdmission {
    pub(crate) ticket: AdmissionTicket,
    pub(crate) request: FrontRequest,
    pub(crate) respond: ResponseCallback,
    pub(crate) since: Instant,
    /// The sampled trace following this request across its park (None when
    /// the request is untraced).
    pub(crate) trace: Option<sapphire_obs::Trace>,
}

/// One submission waiting in a session's FIFO queue.
pub(crate) struct QueuedRequest {
    pub(crate) request: FrontRequest,
    pub(crate) respond: ResponseCallback,
    /// When [`Frontend::submit`](super::Frontend::submit) accepted it — the
    /// origin of the `frontend_queue` and `end_to_end` stage measurements.
    pub(crate) enqueued: Instant,
    /// The sampled trace begun at submission (None when untraced).
    pub(crate) trace: Option<sapphire_obs::Trace>,
}

/// The front-end's view of one session.
pub(crate) struct SessionState {
    pub(crate) queue: VecDeque<QueuedRequest>,
    pub(crate) phase: Phase,
    pub(crate) pending: Option<PendingAdmission>,
    pub(crate) closed: bool,
}

impl SessionState {
    pub(crate) fn new() -> Self {
        SessionState {
            queue: VecDeque::new(),
            phase: Phase::Idle,
            pending: None,
            closed: false,
        }
    }

    /// Queued requests plus the one parked on admission (the session's
    /// whole backlog).
    pub(crate) fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.pending.is_some())
    }
}
