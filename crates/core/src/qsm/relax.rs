//! Query structure relaxation (Algorithm 3, §6.2.2).
//!
//! When the query's *structure* doesn't match the data (Figure 6: the user
//! connects "Jack Kerouac" and "Viking Press" directly to `?book`, but the
//! data routes them through author/publisher entities), the QSM connects the
//! query's literals through actual paths in the remote graph. Each literal
//! plus its JW-alternatives forms a *seed group*; groups are connected with a
//! budgeted, memoized, bidirectional-Dijkstra Steiner-tree approximation
//! whose edge weights favour predicates from the query (w_q < w_default).
//! The resulting tree — induced subgraph → MST → prune degree-1
//! non-terminals — becomes a suggested SPARQL query. Approximation ratio:
//! 2 − 2/s for s seeds \[16\].
//!
//! Everything the algorithm learns about the graph arrives through SPARQL
//! queries against the federated processor, never direct graph access: the
//! paper's endpoints are remote, and the 100-query budget exists precisely
//! because each expansion costs a round trip.
//!
//! Those round trips amortize across requests: a relaxer built
//! [`with_cache`](StructureRelaxer::with_cache) consults the shared
//! [`NeighborhoodCache`] before issuing expansion
//! queries, charging the budget identically either way so warm results stay
//! byte-identical to a cold run (see that module's docs), and a relaxer
//! built [`at_tier`](StructureRelaxer::at_tier) runs with a reduced budget
//! from the [`SteinerConfig`] ladder — the serving tier's degraded mode.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use sapphire_endpoint::FederatedProcessor;
use sapphire_rdf::Term;
use sapphire_sparql::{GraphPattern, Query, QueryResult, SelectQuery, TermPattern, TriplePattern};

use super::neighborhood::{Neighbor, NeighborhoodCache};
use crate::config::SteinerConfig;

/// A directed RDF edge discovered during expansion.
pub type Edge = (Term, Term, Term);

/// The outcome of a relaxation attempt.
#[derive(Debug, Clone)]
pub struct RelaxedQuery {
    /// The suggested query: the Steiner tree with non-terminal vertices
    /// generalized to variables.
    pub query: SelectQuery,
    /// The tree's edges as directed triples.
    pub tree: Vec<Edge>,
    /// Terminal literals that the tree connects (one per connected group).
    pub terminals: Vec<Term>,
    /// Expansion budget consumed — the SPARQL queries a *cold* run issues.
    /// A warm [`NeighborhoodCache`] serves some expansions without their
    /// round trips but still charges them here, so this number (and the
    /// whole relaxation) is identical warm or cold; the actual savings are
    /// visible in
    /// [`NeighborhoodStats::queries_saved`](super::NeighborhoodStats::queries_saved).
    pub queries_used: usize,
    /// True if every seed group was connected; false if the budget ran out
    /// after connecting only a subset.
    pub complete: bool,
}

/// Runs Algorithm 3.
pub struct StructureRelaxer<'a> {
    fed: &'a FederatedProcessor,
    config: SteinerConfig,
    /// Predicates from the user's query (and their QSM alternatives), whose
    /// edges get the favourable weight `w_q`.
    preferred_predicates: HashSet<String>,
    /// Shared cross-request expansion cache, if the caller has one.
    cache: Option<Arc<NeighborhoodCache>>,
    /// Budget-ladder tier this relaxer runs at (0 = full budget).
    tier: usize,
}

struct Explorer<'a> {
    fed: &'a FederatedProcessor,
    budget_left: usize,
    queries_used: usize,
    /// Per-request memo: `Arc`'d so a repeat expansion within one relaxation
    /// is a pointer bump, never a deep clone of the neighbor list.
    memo: HashMap<Term, Arc<Vec<Neighbor>>>,
    union_edges: HashSet<Edge>,
    shared: Option<&'a NeighborhoodCache>,
}

impl<'a> Explorer<'a> {
    /// True for schema-level predicates whose edges are excluded from the
    /// expansion: class vertices are super-hubs (every Person connects to
    /// every other Person through `rdf:type dbo:Person`), so paths through
    /// them are semantically vacuous and — on real DBpedia — expanding them
    /// would exhaust the query budget instantly.
    fn is_schema_edge(p: &Term) -> bool {
        matches!(
            p.as_iri(),
            Some(sapphire_rdf::vocab::rdf::TYPE) | Some(sapphire_rdf::vocab::rdfs::SUB_CLASS_OF)
        )
    }

    /// Reconstruct the union-graph edges a neighbor list contributes — the
    /// same inserts the cold path performs as it parses each solution row.
    fn record_union_edges(&mut self, v: &Term, neighbors: &[Neighbor]) {
        for (other, pred, outgoing) in neighbors {
            let edge = if *outgoing {
                (v.clone(), pred.clone(), other.clone())
            } else {
                (other.clone(), pred.clone(), v.clone())
            };
            self.union_edges.insert(edge);
        }
    }

    fn expand(&mut self, v: &Term) -> Option<Arc<Vec<Neighbor>>> {
        if let Some(n) = self.memo.get(v) {
            return Some(Arc::clone(n));
        }
        let needed = if v.is_literal() { 1 } else { 2 };
        if self.budget_left < needed {
            return None;
        }
        // What a cold expansion of `v` actually charges: the incoming-edge
        // query always runs, the outgoing-edge query only for IRIs.
        let charge = 1 + usize::from(v.is_iri());
        if let Some(cache) = self.shared {
            if let Some(neighbors) = cache.get(v) {
                // Charge the budget exactly as the cold path below would —
                // the search frontier must be byte-identical warm or cold —
                // but skip the SPARQL round trips.
                self.budget_left -= charge;
                self.queries_used += charge;
                cache.note_saved(charge as u64);
                self.record_union_edges(v, &neighbors);
                self.memo.insert(v.clone(), Arc::clone(&neighbors));
                return Some(neighbors);
            }
        }
        let mut neighbors: Vec<Neighbor> = Vec::new();
        // True only if every expansion query actually answered — a failed
        // round trip (endpoint timeout, shed federation hop) yields a
        // *partial* neighbor list that must never be published to the
        // shared cache, where it would poison every later relaxation; the
        // per-request memo keeps it, preserving the old intra-request
        // behavior.
        let mut complete = true;
        // Incoming edges: ?s ?p v — valid for both literals and IRIs.
        self.budget_left -= 1;
        self.queries_used += 1;
        match self.run_pattern(
            TermPattern::var("s"),
            TermPattern::var("p"),
            TermPattern::Term(v.clone()),
        ) {
            Some(sols) => {
                for r in 0..sols.len() {
                    if let (Some(s), Some(p)) = (sols.get(r, "s"), sols.get(r, "p")) {
                        if Self::is_schema_edge(p) {
                            continue;
                        }
                        neighbors.push((s.clone(), p.clone(), false));
                        self.union_edges.insert((s.clone(), p.clone(), v.clone()));
                    }
                }
            }
            None => complete = false,
        }
        // Outgoing edges: v ?p ?o — IRIs only (literals are never subjects).
        if v.is_iri() {
            self.budget_left -= 1;
            self.queries_used += 1;
            match self.run_pattern(
                TermPattern::Term(v.clone()),
                TermPattern::var("p"),
                TermPattern::var("o"),
            ) {
                Some(sols) => {
                    for r in 0..sols.len() {
                        if let (Some(p), Some(o)) = (sols.get(r, "p"), sols.get(r, "o")) {
                            if Self::is_schema_edge(p) {
                                continue;
                            }
                            neighbors.push((o.clone(), p.clone(), true));
                            self.union_edges.insert((v.clone(), p.clone(), o.clone()));
                        }
                    }
                }
                None => complete = false,
            }
        }
        let neighbors = Arc::new(neighbors);
        if let Some(cache) = self.shared {
            cache.note_executed(charge as u64);
            if complete {
                cache.fill(v.clone(), Arc::clone(&neighbors));
            }
        }
        self.memo.insert(v.clone(), Arc::clone(&neighbors));
        Some(neighbors)
    }

    fn run_pattern(
        &self,
        s: TermPattern,
        p: TermPattern,
        o: TermPattern,
    ) -> Option<sapphire_sparql::Solutions> {
        let query = Query::Select(SelectQuery::star(GraphPattern {
            triples: vec![TriplePattern::new(s, p, o)],
            filters: Vec::new(),
        }));
        match self.fed.execute_parsed(&query) {
            Ok(QueryResult::Solutions(sols)) => Some(sols),
            _ => None,
        }
    }
}

/// Per-group Dijkstra state.
struct GroupSearch {
    dist: HashMap<Term, u64>,
    /// child → (parent, predicate, outgoing-from-parent?)
    parent: HashMap<Term, (Term, Term, bool)>,
    heap: BinaryHeap<Reverse<(u64, Term, usize)>>,
    seed_of: HashMap<Term, Term>,
}

impl GroupSearch {
    fn new(seeds: &[Term]) -> Self {
        let mut g = GroupSearch {
            dist: HashMap::new(),
            parent: HashMap::new(),
            heap: BinaryHeap::new(),
            seed_of: HashMap::new(),
        };
        for s in seeds {
            g.dist.insert(s.clone(), 0);
            g.seed_of.insert(s.clone(), s.clone());
            g.heap.push(Reverse((0, s.clone(), 0)));
        }
        g
    }

    /// The directed edges on the path from `v` back to its seed.
    fn path_edges(&self, v: &Term) -> Vec<Edge> {
        let mut edges = Vec::new();
        let mut cur = v.clone();
        while let Some((parent, pred, outgoing)) = self.parent.get(&cur) {
            let edge = if *outgoing {
                (parent.clone(), pred.clone(), cur.clone())
            } else {
                (cur.clone(), pred.clone(), parent.clone())
            };
            edges.push(edge);
            cur = parent.clone();
        }
        edges
    }

    /// The seed vertex this path originates from.
    fn seed_for(&self, v: &Term) -> Option<Term> {
        let mut cur = v.clone();
        loop {
            if let Some(seed) = self.seed_of.get(&cur) {
                return Some(seed.clone());
            }
            match self.parent.get(&cur) {
                Some((p, _, _)) => cur = p.clone(),
                None => return None,
            }
        }
    }
}

/// Simple union-find over group indices.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra] = rb;
        true
    }

    fn all_connected(&mut self, n: usize) -> bool {
        if n == 0 {
            return true;
        }
        let r = self.find(0);
        (1..n).all(|i| self.find(i) == r)
    }
}

impl<'a> StructureRelaxer<'a> {
    /// Build a relaxer. `preferred_predicates` are the IRIs of the query's
    /// predicates plus their Algorithm-2 alternatives.
    pub fn new(
        fed: &'a FederatedProcessor,
        config: SteinerConfig,
        preferred_predicates: HashSet<String>,
    ) -> Self {
        StructureRelaxer {
            fed,
            config,
            preferred_predicates,
            cache: None,
            tier: 0,
        }
    }

    /// Consult (and feed) a shared cross-request [`NeighborhoodCache`].
    /// Results stay byte-identical to an uncached run — see the cache docs.
    pub fn with_cache(mut self, cache: Arc<NeighborhoodCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Relax at a budget-ladder tier (0 = the full
    /// [`query_budget`](SteinerConfig::query_budget); higher tiers use the
    /// reduced [`shed_budgets`](SteinerConfig::shed_budgets)).
    pub fn at_tier(mut self, tier: usize) -> Self {
        self.tier = tier;
        self
    }

    fn weight(&self, predicate: &Term) -> u64 {
        let preferred = predicate
            .as_iri()
            .is_some_and(|iri| self.preferred_predicates.contains(iri));
        let w = if preferred {
            self.config.weight_query_predicate
        } else {
            self.config.weight_default
        };
        (w * 1000.0).round() as u64
    }

    /// Run Algorithm 3 over the given seed groups (each group: a query
    /// literal plus its top alternatives, as ground terms).
    pub fn relax(&self, groups: &[Vec<Term>]) -> Option<RelaxedQuery> {
        let groups: Vec<&Vec<Term>> = groups.iter().filter(|g| !g.is_empty()).collect();
        if groups.len() < 2 {
            return None;
        }
        let mut explorer = Explorer {
            fed: self.fed,
            budget_left: self.config.budget_for(self.tier),
            queries_used: 0,
            memo: HashMap::new(),
            union_edges: HashSet::new(),
            shared: self.cache.as_deref(),
        };
        let mut searches: Vec<GroupSearch> = groups.iter().map(|g| GroupSearch::new(g)).collect();
        // settled vertex → owning group.
        let mut owner: HashMap<Term, usize> = HashMap::new();
        let mut uf = UnionFind::new(groups.len());
        // Connection records: (group a, group b, meeting vertex).
        let mut connections: Vec<(usize, usize, Term)> = Vec::new();

        // Groups "take turns in expansion" — round-robin over live heaps.
        let mut active = true;
        while active && !uf.all_connected(groups.len()) {
            active = false;
            for (gi, search) in searches.iter_mut().enumerate() {
                let Some(Reverse((d, v, siblings))) = search.heap.pop() else {
                    continue;
                };
                active = true;
                match owner.get(&v) {
                    Some(&other) if other == gi => continue, // already settled by us
                    Some(&other) => {
                        // Meeting point: a path between two groups' seeds.
                        if uf.union(gi, other) {
                            connections.push((gi, other, v.clone()));
                        }
                        continue;
                    }
                    None => {}
                }
                owner.insert(v.clone(), gi);
                // Budget heuristic: skip expanding vertices whose sibling
                // fan-out exceeds the remaining budget — hope another group
                // reaches this region instead.
                if siblings > explorer.budget_left {
                    continue;
                }
                let Some(neighbors) = explorer.expand(&v) else {
                    continue;
                };
                let fanout = neighbors.len();
                for (other, pred, outgoing) in neighbors.iter() {
                    let nd = d + self.weight(pred);
                    let better = search.dist.get(other).is_none_or(|&old| nd < old);
                    if better {
                        search.dist.insert(other.clone(), nd);
                        search
                            .parent
                            .insert(other.clone(), (v.clone(), pred.clone(), *outgoing));
                        search.heap.push(Reverse((nd, other.clone(), fanout)));
                    }
                }
            }
        }

        if connections.is_empty() {
            return None;
        }
        let complete = uf.all_connected(groups.len());

        // Step 1 result: g = union of the connecting paths.
        let mut g_edges: HashSet<Edge> = HashSet::new();
        let mut terminals: Vec<Term> = Vec::new();
        for (ga, gb, v) in &connections {
            for &gi in &[*ga, *gb] {
                for e in searches[gi].path_edges(v) {
                    g_edges.insert(e);
                }
                if let Some(seed) = searches[gi].seed_for(v) {
                    if !terminals.contains(&seed) {
                        terminals.push(seed);
                    }
                }
            }
        }
        let mut g_vertices: HashSet<Term> = HashSet::new();
        for (s, _, o) in &g_edges {
            g_vertices.insert(s.clone());
            g_vertices.insert(o.clone());
        }
        for t in &terminals {
            g_vertices.insert(t.clone());
        }

        // Step 2: induced subgraph g′ of g in the full explored union graph.
        let induced: Vec<Edge> = explorer
            .union_edges
            .iter()
            .filter(|(s, _, o)| g_vertices.contains(s) && g_vertices.contains(o))
            .cloned()
            .collect();

        // Minimum spanning tree of g′ (Kruskal).
        let tree = self.mst(&g_vertices, &induced);

        // Prune non-terminal degree-1 vertices repeatedly.
        let tree = prune(tree, &terminals);
        if tree.is_empty() {
            return None;
        }

        let query = tree_to_query(&tree, &terminals);
        Some(RelaxedQuery {
            query,
            tree,
            terminals,
            queries_used: explorer.queries_used,
            complete,
        })
    }

    fn mst(&self, vertices: &HashSet<Term>, edges: &[Edge]) -> Vec<Edge> {
        let verts: Vec<&Term> = vertices.iter().collect();
        let index: HashMap<&Term, usize> = verts.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        let mut sorted: Vec<&Edge> = edges.iter().collect();
        sorted.sort_by_key(|(s, p, o)| (self.weight(p), s.clone(), p.clone(), o.clone()));
        let mut uf = UnionFind::new(verts.len());
        let mut out = Vec::new();
        for e in sorted {
            let (s, _, o) = e;
            let (a, b) = (index[s], index[o]);
            if uf.union(a, b) {
                out.push(e.clone());
            }
        }
        out
    }
}

/// Repeatedly delete degree-1 vertices that are not terminals (Algorithm 3
/// lines 17–19).
fn prune(mut tree: Vec<Edge>, terminals: &[Term]) -> Vec<Edge> {
    loop {
        let mut degree: HashMap<&Term, usize> = HashMap::new();
        for (s, _, o) in &tree {
            *degree.entry(s).or_default() += 1;
            *degree.entry(o).or_default() += 1;
        }
        let removable: HashSet<Term> = degree
            .iter()
            .filter(|(v, &d)| d == 1 && !terminals.contains(v))
            .map(|(v, _)| (*v).clone())
            .collect();
        if removable.is_empty() {
            return tree;
        }
        tree.retain(|(s, _, o)| !removable.contains(s) && !removable.contains(o));
        if tree.is_empty() {
            return tree;
        }
    }
}

/// Convert the tree into a SPARQL query: terminals stay ground, every other
/// vertex is generalized to a fresh variable, predicates stay ground.
fn tree_to_query(tree: &[Edge], terminals: &[Term]) -> SelectQuery {
    let mut var_names: HashMap<Term, String> = HashMap::new();
    let mut next = 0usize;
    let mut pattern_of = |t: &Term| -> TermPattern {
        if terminals.contains(t) {
            return TermPattern::Term(t.clone());
        }
        let name = var_names.entry(t.clone()).or_insert_with(|| {
            let n = format!("x{next}");
            next += 1;
            n
        });
        TermPattern::Var(name.clone())
    };
    let mut gp = GraphPattern::default();
    // Deterministic order for reproducibility.
    let mut edges: Vec<&Edge> = tree.iter().collect();
    edges.sort();
    for (s, p, o) in edges {
        gp.triples.push(TriplePattern::new(
            pattern_of(s),
            TermPattern::Term(p.clone()),
            pattern_of(o),
        ));
    }
    let mut q = SelectQuery::star(gp);
    q.distinct = true;
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{Endpoint, EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;
    use sapphire_sparql::evaluate_select;
    use std::sync::Arc;

    /// The Figure 6 dataset: books connect to "Jack Kerouac" and
    /// "Viking Press" through author/publisher entities, not directly.
    const KEROUAC: &str = r#"
res:Kerouac a dbo:Writer ; dbo:name "Jack Kerouac"@en .
res:VikingPress a dbo:Publisher ; rdfs:label "Viking Press"@en .
res:GrovePress a dbo:Publisher ; rdfs:label "Grove Press"@en .
res:OnTheRoad a dbo:Book ; dbo:name "On The Road"@en ; dbo:author res:Kerouac ; dbo:publisher res:VikingPress .
res:DoorWideOpen a dbo:Book ; dbo:name "Door Wide Open"@en ; dbo:author res:Kerouac ; dbo:publisher res:VikingPress .
res:DoctorSax a dbo:Book ; dbo:name "Doctor Sax"@en ; dbo:author res:Kerouac ; dbo:publisher res:GrovePress .
res:BigSur a dbo:Film ; dbo:name "Big Sur"@en ; dbo:writer res:Kerouac .
"#;

    fn setup() -> (FederatedProcessor, Arc<LocalEndpoint>) {
        let graph = turtle::parse(KEROUAC).unwrap();
        let ep = Arc::new(LocalEndpoint::new(
            "books",
            graph,
            EndpointLimits::warehouse(),
        ));
        (
            FederatedProcessor::single(ep.clone() as Arc<dyn Endpoint>),
            ep,
        )
    }

    fn preferred() -> HashSet<String> {
        [
            "http://dbpedia.org/ontology/writer",
            "http://dbpedia.org/ontology/publisher",
            "http://dbpedia.org/ontology/author",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    }

    #[test]
    fn kerouac_viking_press_connects_through_entities() {
        let (fed, ep) = setup();
        let relaxer = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred());
        let groups = vec![
            vec![Term::en("Jack Kerouac")],
            vec![Term::en("Viking Press")],
        ];
        let relaxed = relaxer.relax(&groups).expect("groups must connect");
        assert!(relaxed.complete);
        assert_eq!(relaxed.terminals.len(), 2);
        // The suggested query must find the two Viking Press books.
        let sols = evaluate_select(
            ep.graph(),
            &relaxed.query,
            &mut sapphire_sparql::WorkBudget::unlimited(),
        )
        .unwrap();
        assert!(!sols.is_empty(), "suggested query must have answers");
        // Some variable binds to the two books.
        let book_col = sols
            .vars
            .iter()
            .position(|v| sols.values(v).any(|t| t.lexical().ends_with("OnTheRoad")));
        assert!(
            book_col.is_some(),
            "tree should route through the book entity: {}",
            sols.to_table()
        );
        assert!(relaxed.queries_used <= 100);
    }

    #[test]
    fn single_group_returns_none() {
        let (fed, _) = setup();
        let relaxer = StructureRelaxer::new(&fed, SteinerConfig::default(), HashSet::new());
        assert!(relaxer.relax(&[vec![Term::en("Jack Kerouac")]]).is_none());
        assert!(relaxer.relax(&[]).is_none());
    }

    #[test]
    fn disconnected_literals_return_none() {
        let graph =
            turtle::parse(r#"res:A dbo:name "Alpha"@en . res:B dbo:name "Beta"@en ."#).unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "iso",
            graph,
            EndpointLimits::warehouse(),
        ));
        let fed = FederatedProcessor::single(ep);
        let relaxer = StructureRelaxer::new(&fed, SteinerConfig::default(), HashSet::new());
        let out = relaxer.relax(&[vec![Term::en("Alpha")], vec![Term::en("Beta")]]);
        assert!(out.is_none());
    }

    #[test]
    fn budget_is_respected() {
        let (fed, _) = setup();
        let config = SteinerConfig {
            query_budget: 3,
            ..SteinerConfig::default()
        };
        let relaxer = StructureRelaxer::new(&fed, config, preferred());
        let groups = vec![
            vec![Term::en("Jack Kerouac")],
            vec![Term::en("Viking Press")],
        ];
        if let Some(r) = relaxer.relax(&groups) {
            assert!(r.queries_used <= 3);
        }
    }

    #[test]
    fn preferred_predicates_guide_the_tree() {
        let (fed, _) = setup();
        let relaxer = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred());
        let groups = vec![
            vec![Term::en("Jack Kerouac")],
            vec![Term::en("Viking Press")],
        ];
        let relaxed = relaxer.relax(&groups).unwrap();
        // Every tree edge should use a preferred predicate or a name/label
        // edge adjacent to a terminal.
        let uses_author_or_publisher = relaxed.tree.iter().any(|(_, p, _)| {
            matches!(p.as_iri(), Some(iri) if iri.ends_with("author") || iri.ends_with("publisher") || iri.ends_with("writer"))
        });
        assert!(uses_author_or_publisher, "tree: {:?}", relaxed.tree);
    }

    #[test]
    fn warm_cache_run_is_byte_identical_to_cold_and_skips_round_trips() {
        let (fed, _) = setup();
        let groups = vec![
            vec![Term::en("Jack Kerouac")],
            vec![Term::en("Viking Press")],
        ];
        let cold = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred())
            .relax(&groups)
            .expect("cold run connects");

        let cache = Arc::new(super::super::NeighborhoodCache::new(4, 256));
        let first = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred())
            .with_cache(cache.clone())
            .relax(&groups)
            .expect("cache-filling run connects");
        let warm = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred())
            .with_cache(cache.clone())
            .relax(&groups)
            .expect("warm run connects");

        for relaxed in [&first, &warm] {
            assert_eq!(relaxed.tree, cold.tree);
            assert_eq!(relaxed.terminals, cold.terminals);
            assert_eq!(relaxed.complete, cold.complete);
            assert_eq!(
                relaxed.queries_used, cold.queries_used,
                "budget charged identically warm or cold"
            );
            assert_eq!(format!("{:?}", relaxed.query), format!("{:?}", cold.query));
        }
        let stats = cache.stats();
        assert!(stats.fills > 0, "first run published neighbor lists");
        assert!(stats.hits > 0, "warm run was served from the cache");
        assert_eq!(
            stats.queries_saved, warm.queries_used as u64,
            "every budget unit of the warm run was a skipped round trip"
        );
    }

    #[test]
    fn degraded_tiers_use_the_ladder_budget() {
        let (fed, _) = setup();
        let config = SteinerConfig {
            shed_budgets: [3, 1],
            ..SteinerConfig::default()
        };
        let groups = vec![
            vec![Term::en("Jack Kerouac")],
            vec![Term::en("Viking Press")],
        ];
        // Tier 1 gets exactly the first rung's budget.
        if let Some(r) = StructureRelaxer::new(&fed, config, preferred())
            .at_tier(1)
            .relax(&groups)
        {
            assert!(r.queries_used <= 3);
        }
        // Tier 2's single query cannot connect anything.
        assert!(StructureRelaxer::new(&fed, config, preferred())
            .at_tier(2)
            .relax(&groups)
            .is_none());
        // Tier 0 is the untouched full budget.
        let full = StructureRelaxer::new(&fed, config, preferred())
            .at_tier(0)
            .relax(&groups)
            .expect("full tier connects");
        assert!(full.complete);
    }

    #[test]
    fn seed_groups_with_alternatives_connect_via_any_member() {
        let (fed, _) = setup();
        let relaxer = StructureRelaxer::new(&fed, SteinerConfig::default(), preferred());
        // Group contains a bogus seed plus the real one.
        let groups = vec![
            vec![Term::en("No Such Person"), Term::en("Jack Kerouac")],
            vec![Term::en("The Viking"), Term::en("Viking Press")],
        ];
        let relaxed = relaxer
            .relax(&groups)
            .expect("must connect via real members");
        assert!(relaxed.terminals.contains(&Term::en("Jack Kerouac")));
        assert!(relaxed.terminals.contains(&Term::en("Viking Press")));
    }
}
