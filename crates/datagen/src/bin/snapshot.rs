//! `snapshot build` — write per-shard graph snapshots for a dataset scale.
//!
//! Generates the deterministic dataset for a scale, partitions it with the
//! same subject-hash [`Partitioner`] every serving tier uses, and writes one
//! [`sapphire_rdf::snapshot`] file per shard, so process-mode shards (and
//! anything else) can bring up a partition with one sequential read instead
//! of regenerating it.
//!
//! ```text
//! snapshot build --scale tiny --shards 2 [--seed 42] [--out DIR]
//! ```
//!
//! Files land in `--out` (default `.`) under the canonical name
//! `<scale>-s<shard>of<shards>.snap`. An unrecognized `--scale` is a hard
//! error: a snapshot written under the wrong label would poison every report
//! downstream.
//!
//! [`Partitioner`]: sapphire_rdf::Partitioner

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use sapphire_datagen::{generate, DatasetConfig};
use sapphire_rdf::{snapshot, Partitioner};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("build") => {}
        other => {
            eprintln!(
                "usage: snapshot build --scale <{}> [--shards N] [--seed S] [--out DIR] (got {other:?})",
                DatasetConfig::SCALE_NAMES.join("|")
            );
            exit(2);
        }
    }
    let scale = arg_value("--scale").unwrap_or_else(|| "tiny".to_string());
    let shards: usize = arg_value("--shards")
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(2);
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(42);
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| ".".to_string()));

    let Some(config) = DatasetConfig::for_scale(&scale, seed) else {
        eprintln!(
            "error: unknown --scale {scale:?}; expected one of: {}",
            DatasetConfig::SCALE_NAMES.join(", ")
        );
        exit(2);
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create --out {}: {e}", out_dir.display());
        exit(1);
    }

    let started = Instant::now();
    let graph = generate(config);
    let generated = started.elapsed();
    let partition = Partitioner::new(shards).split(&graph);
    let partitioned = started.elapsed() - generated;
    eprintln!(
        "(generated {} triples in {:.1?}, partitioned into {} shards in {:.1?})",
        graph.len(),
        generated,
        shards,
        partitioned
    );

    for (i, shard_graph) in partition.shards.iter().enumerate() {
        let path = out_dir.join(snapshot::shard_file_name(&scale, i, shards));
        let wrote = Instant::now();
        match snapshot::write(shard_graph, &path) {
            Ok(bytes) => println!(
                "SNAPSHOT {} shard={i}/{shards} triples={} bytes={bytes} write_us={}",
                path.display(),
                shard_graph.len(),
                wrote.elapsed().as_micros()
            ),
            Err(e) => {
                eprintln!("error: writing {}: {e}", path.display());
                exit(1);
            }
        }
    }
}
