//! Closed-loop load generator for the `sapphire-server` serving tier.
//!
//! Drives N concurrent simulated users against ONE shared `SapphireServer`
//! (one `Arc`'d graph + Predictive User Model — no per-session copies), then
//! a duplicate-burst phase where K users fire the *same* cold request at the
//! same instant (the single-flight coalescing showcase). Reports throughput,
//! p50/p95/p99 latency per request class, and coalescing counters as JSON,
//! and writes the same report to `BENCH_serve.json` as the baseline the
//! `serve_check` CI gate enforces.
//!
//! Usage: `cargo run --release -p sapphire-bench --bin serve_load
//!         [--users 32] [--rounds 3] [--scale tiny|small|medium]
//!         [--inflight N] [--queue N] [--burst-users 16] [--burst-rounds 8]
//!         [--coalesce N]` (waiter cap per key; `--coalesce 0` disables
//! single-flight to measure the pre-coalescing baseline)
//!         `[--smoke N]` sets the cold scatters per arm of the
//! `medium`-scale smoke phase (`0` skips it)
//!
//! Cluster mode: `serve_load -- --cluster [--shards 2] [--replicas 2]` runs
//! the same workload against a sharded topology behind a `ClusterRouter`
//! (see [`sapphire_bench::cluster`]); it reports routing metrics plus a
//! determinism self-check and never touches `BENCH_serve.json`.
//!
//! Wire mode: `serve_load -- --cluster --wire [--processes]
//! [--kill-replica]` puts a real socket (and optionally a real OS process)
//! under every edge↔shard call — see [`sapphire_bench::wire`].
//!
//! Overload mode: `serve_load -- --overload` switches from closed-loop to
//! an **open-loop** Poisson arrival sweep past saturation (see
//! [`sapphire_bench::overload`]) and reports the degradation curve; it
//! never touches `BENCH_serve.json` either.
//!
//! The dataset seed and workload are fixed, so request *streams* are
//! reproducible; only latencies vary run to run. All load-shed requests
//! surface as typed errors and are counted, never panicked on.
//!
//! The workload itself lives in [`sapphire_bench::serve`] so the CI gate
//! (`serve_check`) runs exactly the same code without overwriting the
//! committed baseline.

use sapphire_bench::cluster::{self, ClusterLoadOptions};
use sapphire_bench::frontend::{self, FrontendPhaseOptions};
use sapphire_bench::overload::{self, OverloadOptions};
use sapphire_bench::serve::{self, arg_string, arg_usize, ServeLoadOptions};
use sapphire_bench::wire::{self, WireLoadOptions};

fn main() {
    // Overload mode: an OPEN-loop offered-load sweep past saturation
    // (`--overload [--shards 2] [--replicas 2] [--launchers 64]
    // [--step-ms 2000] [--calibration 256] [--seed 42] [--deadline-ms 250]`).
    // Deterministic Poisson arrivals at multiples of the calibrated
    // capacity; reports the degradation curve (goodput, typed rejections,
    // shed tiers, stage p99s per step) in an `overload` section. Never
    // touches `BENCH_serve.json` — the graceful-degradation gate runs
    // in-process in `serve_check`.
    if std::env::args().any(|a| a == "--overload") {
        let defaults = OverloadOptions::default();
        let opts = OverloadOptions {
            scale: arg_string("--scale").unwrap_or(defaults.scale.clone()),
            shards: arg_usize("--shards", defaults.shards),
            replicas: arg_usize("--replicas", defaults.replicas),
            launchers: arg_usize("--launchers", defaults.launchers),
            step: std::time::Duration::from_millis(arg_usize(
                "--step-ms",
                defaults.step.as_millis() as usize,
            ) as u64),
            calibration_requests: arg_usize("--calibration", defaults.calibration_requests),
            seed: arg_usize("--seed", defaults.seed as usize) as u64,
            deadline: std::time::Duration::from_millis(arg_usize(
                "--deadline-ms",
                defaults.deadline.as_millis() as usize,
            ) as u64),
            ..defaults
        };
        println!("{}", overload::run(&opts));
        return;
    }
    // Front-end mode: ONLY the evented-front-end phase, at full scale
    // (`--frontend [--sessions 2000] [--workers 8] [--think 100]
    // [--hold 1500]`). Reports think-time latencies, hot-loop throughput,
    // and the process thread/RSS peaks; never touches the baseline file.
    if std::env::args().any(|a| a == "--frontend") {
        let defaults = FrontendPhaseOptions::default();
        let opts = FrontendPhaseOptions {
            sessions: arg_usize("--sessions", defaults.sessions),
            workers: arg_usize("--workers", defaults.workers),
            think_ms: arg_usize("--think", defaults.think_ms as usize) as u64,
            hold_ms: arg_usize("--hold", defaults.hold_ms as usize) as u64,
            hot_sessions: arg_usize("--hot-sessions", defaults.hot_sessions),
            hot_rounds: arg_usize("--hot-rounds", defaults.hot_rounds),
            queue_wait_ms: 0,
        };
        let scale = arg_string("--scale").unwrap_or_else(|| "tiny".to_string());
        println!("{}", frontend::run(&opts, &scale));
        return;
    }
    // Cluster mode: the same closed-loop workload against a sharded,
    // replicated topology behind a `ClusterRouter` (`--cluster [--shards N]
    // [--replicas N]`). Reports routing metrics and the determinism
    // self-check; never touches the single-server baseline file.
    // Tracing: `--trace` samples every request into the flight recorder
    // (slowest traces dump to stderr after the run); `--trace-sample N`
    // picks a 1-in-N rate instead. Stage histograms are on regardless.
    let trace_default = usize::from(std::env::args().any(|a| a == "--trace"));
    let trace_sample = arg_usize("--trace-sample", trace_default) as u32;

    if std::env::args().any(|a| a == "--cluster") {
        // Wire mode: the same workload, but every edge↔shard call crosses
        // a real socket (`--cluster --wire [--processes] [--kill-replica]
        // [--snapshot]`). `--processes` runs each replica as a separate
        // `wire_shard` OS process; `--kill-replica` crashes one replica
        // mid-run and demands the router's failover absorbs it (the CI
        // smoke posture); `--snapshot` (with `--processes`) writes per-shard
        // columnar snapshots first and brings the children up from them,
        // reporting load-vs-generate timings in a `bringup` section.
        // Reports transport counters plus the in-process-oracle byte check;
        // never touches the baseline file.
        if std::env::args().any(|a| a == "--wire") {
            let defaults = WireLoadOptions::default();
            let opts = WireLoadOptions {
                users: arg_usize("--users", defaults.users),
                rounds: arg_usize("--rounds", defaults.rounds),
                scale: arg_string("--scale").unwrap_or(defaults.scale.clone()),
                shards: arg_usize("--shards", defaults.shards),
                replicas: arg_usize("--replicas", defaults.replicas),
                determinism_sample: arg_usize("--determinism-sample", defaults.determinism_sample),
                processes: std::env::args().any(|a| a == "--processes"),
                kill_replica: std::env::args().any(|a| a == "--kill-replica"),
                snapshot: std::env::args().any(|a| a == "--snapshot"),
            };
            println!("{}", wire::run(&opts));
            return;
        }
        let defaults = ClusterLoadOptions::default();
        let opts = ClusterLoadOptions {
            users: arg_usize("--users", defaults.users),
            rounds: arg_usize("--rounds", defaults.rounds),
            scale: arg_string("--scale").unwrap_or(defaults.scale.clone()),
            shards: arg_usize("--shards", defaults.shards),
            replicas: arg_usize("--replicas", defaults.replicas),
            determinism_sample: arg_usize("--determinism-sample", defaults.determinism_sample),
            trace_sample,
        };
        println!("{}", cluster::run(&opts));
        return;
    }

    let defaults = ServeLoadOptions::default();
    let opts = ServeLoadOptions {
        users: arg_usize("--users", defaults.users),
        rounds: arg_usize("--rounds", defaults.rounds),
        scale: arg_string("--scale").unwrap_or(defaults.scale.clone()),
        max_in_flight: arg_usize("--inflight", 0),
        max_queue_depth: arg_usize("--queue", 0),
        burst_users: arg_usize("--burst-users", defaults.burst_users),
        burst_rounds: arg_usize("--burst-rounds", defaults.burst_rounds),
        coalesce_waiters: arg_usize("--coalesce", defaults.coalesce_waiters),
        queue_wait_ms: 0,
        frontend_sessions: arg_usize("--frontend-sessions", defaults.frontend_sessions),
        frontend_workers: arg_usize("--frontend-workers", defaults.frontend_workers),
        trace_sample,
        cluster_shards: arg_usize("--cluster-shards", defaults.cluster_shards),
        medium_smoke_requests: arg_usize("--smoke", defaults.medium_smoke_requests),
    };
    let report = serve::run(&opts);
    println!("{report}");
    if let Err(e) = std::fs::write("BENCH_serve.json", format!("{report}\n")) {
        eprintln!("warning: could not write BENCH_serve.json: {e}");
    } else {
        eprintln!("(wrote BENCH_serve.json)");
    }
}
